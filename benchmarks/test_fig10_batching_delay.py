"""Fig 10: batching scheme convergence delay.

See ``src/repro/figures/fig10.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig10_batching_delay(benchmark):
    run_figure_benchmark(benchmark, "fig10")
