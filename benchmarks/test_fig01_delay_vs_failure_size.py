"""Fig 1: convergence delay vs failure size for three MRAIs.

See ``src/repro/figures/fig01.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig01_delay_vs_failure_size(benchmark):
    run_figure_benchmark(benchmark, "fig01")
