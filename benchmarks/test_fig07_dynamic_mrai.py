"""Fig 7: dynamic MRAI tracks the per-failure-size optimum.

See ``src/repro/figures/fig07.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig07_dynamic_mrai(benchmark):
    run_figure_benchmark(benchmark, "fig07")
