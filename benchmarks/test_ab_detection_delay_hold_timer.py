"""Ablation: instantaneous vs hold-timer failure detection.

See ``src/repro/figures/ablations.py``.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_detection_delay_hold_timer(benchmark):
    run_figure_benchmark(benchmark, "ab_detection_delay")
