"""Ablation: FIFO vs router-style TCP batching vs per-destination batching (paper Sec 4.4).

See ``src/repro/figures/ablations.py`` for the experiment definition.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_tcp_batch_tcp_batching(benchmark):
    run_figure_benchmark(benchmark, "ab_tcp_batch")
