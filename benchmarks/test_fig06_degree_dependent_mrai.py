"""Fig 6: degree-dependent MRAI vs constants.

See ``src/repro/figures/fig06.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig06_degree_dependent_mrai(benchmark):
    run_figure_benchmark(benchmark, "fig06")
