"""Ablation: geographically contiguous vs scattered random failures (paper Sec 3.1).

See ``src/repro/figures/ablations.py`` for the experiment definition.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_failure_geometry_failure_geometry(benchmark):
    run_figure_benchmark(benchmark, "ab_failure_geometry")
