"""Ablation: dynamic-MRAI overload monitors - queue / utilization / msgcount (paper Sec 4.3).

See ``src/repro/figures/ablations.py`` for the experiment definition.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_monitors_dynamic_monitors(benchmark):
    run_figure_benchmark(benchmark, "ab_monitors")
