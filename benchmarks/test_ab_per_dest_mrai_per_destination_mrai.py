"""Ablation: per-peer vs per-destination MRAI timers (paper Sec 2).

See ``src/repro/figures/ablations.py`` for the experiment definition.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_per_dest_mrai_per_destination_mrai(benchmark):
    run_figure_benchmark(benchmark, "ab_per_dest_mrai")
