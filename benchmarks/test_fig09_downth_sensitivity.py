"""Fig 9: dynamic MRAI sensitivity to downTh (upTh=0.65).

See ``src/repro/figures/fig09.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig09_downth_sensitivity(benchmark):
    run_figure_benchmark(benchmark, "fig09")
