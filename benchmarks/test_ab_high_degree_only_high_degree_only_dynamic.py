"""Ablation: dynamic MRAI at all nodes vs high-degree nodes only (paper Sec 4.3).

See ``src/repro/figures/ablations.py`` for the experiment definition.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_high_degree_only_high_degree_only_dynamic(benchmark):
    run_figure_benchmark(benchmark, "ab_high_degree_only")
