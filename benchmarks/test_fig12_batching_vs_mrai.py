"""Fig 12: batching helps only below the optimal MRAI.

See ``src/repro/figures/fig12.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig12_batching_vs_mrai(benchmark):
    run_figure_benchmark(benchmark, "fig12")
