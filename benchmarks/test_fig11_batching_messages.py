"""Fig 11: batching scheme message counts.

See ``src/repro/figures/fig11.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig11_batching_messages(benchmark):
    run_figure_benchmark(benchmark, "fig11")
