"""Ablation: Gao-Rexford policy routing vs the paper's unrestricted setting.

See ``src/repro/figures/ablations.py``.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_policy_routing_gao_rexford(benchmark):
    run_figure_benchmark(benchmark, "ab_policy_routing")
