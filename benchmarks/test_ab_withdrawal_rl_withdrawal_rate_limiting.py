"""Ablation: immediate vs rate-limited withdrawals (RFC 1771 default vs option).

See ``src/repro/figures/ablations.py`` for the experiment definition.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_withdrawal_rl_withdrawal_rate_limiting(benchmark):
    run_figure_benchmark(benchmark, "ab_withdrawal_rl")
