"""Ablation: processing overhead is the mechanism the schemes fix (paper Sec 5).

See ``src/repro/figures/ablations.py`` for the experiment definition.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_processing_processing_overhead(benchmark):
    run_figure_benchmark(benchmark, "ab_processing")
