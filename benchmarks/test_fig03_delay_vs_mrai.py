"""Fig 3: V-shaped delay-vs-MRAI curves; optimum grows with failure size.

See ``src/repro/figures/fig03.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig03_delay_vs_mrai(benchmark):
    run_figure_benchmark(benchmark, "fig03")
