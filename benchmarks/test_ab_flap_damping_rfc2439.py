"""Ablation: RFC-2439 route flap damping vs the paper's schemes.

See ``src/repro/figures/ablations.py``.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_flap_damping_rfc2439(benchmark):
    run_figure_benchmark(benchmark, "ab_flap_damping")
