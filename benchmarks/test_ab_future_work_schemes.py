"""Ablation: the paper's Sec-5 future-work schemes, implemented and measured.

Adaptive failure-extent MRAI, withdrawal-first batching, and the
analytically derived MRAI ladder.  See ``src/repro/figures/ablations.py``.
"""

from repro.figures.bench import run_figure_benchmark


def test_ab_future_work_schemes(benchmark):
    run_figure_benchmark(benchmark, "ab_future_work")
