"""Fig 5: higher average degree -> larger optimal MRAI and delay.

See ``src/repro/figures/fig05.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig05_average_degree(benchmark):
    run_figure_benchmark(benchmark, "fig05")
