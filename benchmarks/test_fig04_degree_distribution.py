"""Fig 4: optimal MRAI tracks the high-degree nodes (50-50/70-30/85-15).

See ``src/repro/figures/fig04.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig04_degree_distribution(benchmark):
    run_figure_benchmark(benchmark, "fig04")
