"""Micro-benchmarks of the simulation substrate itself.

Unlike the figure benchmarks (one long deterministic computation each),
these are classic multi-round pytest benchmarks: event-queue throughput,
timer churn, and a complete small convergence experiment.  They track the
cost of the machinery every figure rests on.
"""

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.sim.engine import Simulator
from repro.sim.timers import Jitter, Timer
from repro.topology.skewed import skewed_topology


def test_engine_event_throughput(benchmark):
    """Schedule-and-run cost for 10k chained events."""

    def run():
        sim = Simulator()
        remaining = [10_000]

        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(0.001, tick)

        sim.schedule(0.001, tick)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events == 10_000


def test_engine_cancellation_heavy(benchmark):
    """Cost of a cancel-heavy workload (MRAI restarts look like this)."""

    def run():
        sim = Simulator()
        for i in range(5_000):
            event = sim.schedule(1.0 + i, lambda: None)
            sim.cancel(event)
        keep = sim.schedule(2.0, lambda: None)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 1


def test_timer_restart_churn(benchmark):
    """Repeated Timer.start() — the dominant per-update control cost."""

    def run():
        sim = Simulator(seed=3)
        timer = Timer(sim, lambda: None, jitter=Jitter(), rng=sim.rng.get("j"))
        for __ in range(2_000):
            timer.start(1.0)
        timer.stop()
        sim.run()
        return True

    assert benchmark(run)


def test_small_convergence_experiment(benchmark):
    """A complete 20-node warm-up + failure + reconvergence cycle."""

    topo = skewed_topology(20, seed=2)

    def run():
        net = BGPNetwork(topo, BGPConfig(mrai_policy=ConstantMRAI(0.5)), seed=1)
        net.start()
        net.run_until_quiet()
        net.fail_nodes([topo.nodes_by_distance(500, 500)[0]])
        net.run_until_quiet()
        return net.sim.events_executed

    events = benchmark(run)
    assert events > 0
