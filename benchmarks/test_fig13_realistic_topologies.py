"""Fig 13: schemes on multi-router / Internet-derived topologies.

See ``src/repro/figures/fig13.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig13_realistic_topologies(benchmark):
    run_figure_benchmark(benchmark, "fig13")
