"""Fig 8: dynamic MRAI sensitivity to upTh (downTh=0).

See ``src/repro/figures/fig08.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig08_upth_sensitivity(benchmark):
    run_figure_benchmark(benchmark, "fig08")
