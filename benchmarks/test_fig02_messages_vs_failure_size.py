"""Fig 2: update-message count vs failure size for three MRAIs.

See ``src/repro/figures/fig02.py`` for the experiment definition and
DESIGN.md for the experiment index entry.
"""

from repro.figures.bench import run_figure_benchmark


def test_fig02_messages_vs_failure_size(benchmark):
    run_figure_benchmark(benchmark, "fig02")
