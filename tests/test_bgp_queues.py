"""Unit tests for the update-queue disciplines."""

import pytest

from repro.bgp.messages import Update
from repro.bgp.queues import (
    DestinationBatchQueue,
    FIFOQueue,
    TCPBatchQueue,
    make_queue,
)


def msg(dest, sender, path=(1,), t=0.0):
    return Update(dest, path, sender, t)


def wd(dest, sender, t=0.0):
    return Update(dest, None, sender, t)


# ---------------------------------------------------------------------------
# FIFO
# ---------------------------------------------------------------------------
def test_fifo_order_one_at_a_time():
    q = FIFOQueue()
    messages = [msg(1, 10), msg(2, 11), msg(1, 12)]
    for m in messages:
        q.push(m)
    assert len(q) == 3
    out = []
    while len(q):
        batch, dropped = q.pop_batch()
        assert dropped == 0
        assert len(batch) == 1
        out.append(batch[0])
    assert out == messages


def test_fifo_clear():
    q = FIFOQueue()
    q.push(msg(1, 10))
    q.clear()
    assert len(q) == 0


# ---------------------------------------------------------------------------
# Destination batching (the paper's scheme)
# ---------------------------------------------------------------------------
def test_dest_batch_drains_whole_destination():
    q = DestinationBatchQueue()
    q.push(msg(1, 10))
    q.push(msg(2, 11))
    q.push(msg(1, 12))
    batch, dropped = q.pop_batch()
    assert dropped == 0
    assert [m.dest for m in batch] == [1, 1]
    assert {m.sender for m in batch} == {10, 12}
    assert len(q) == 1
    batch2, __ = q.pop_batch()
    assert [m.dest for m in batch2] == [2]


def test_dest_batch_serves_destinations_in_arrival_order():
    q = DestinationBatchQueue()
    q.push(msg(5, 1))
    q.push(msg(3, 1))
    q.push(msg(5, 2))
    first, __ = q.pop_batch()
    assert first[0].dest == 5
    second, __ = q.pop_batch()
    assert second[0].dest == 3


def test_dest_batch_drops_stale_from_same_neighbor():
    q = DestinationBatchQueue()
    old = msg(1, 10, path=(9, 8), t=1.0)
    newer = msg(1, 10, path=(7,), t=2.0)
    other = msg(1, 11, path=(5,), t=1.5)
    q.push(old)
    q.push(other)
    q.push(newer)
    batch, dropped = q.pop_batch()
    assert dropped == 1
    assert newer in batch
    assert other in batch
    assert old not in batch


def test_dest_batch_withdrawal_supersedes_announcement():
    q = DestinationBatchQueue()
    q.push(msg(1, 10, path=(2,)))
    q.push(wd(1, 10))
    batch, dropped = q.pop_batch()
    assert dropped == 1
    assert len(batch) == 1
    assert batch[0].is_withdrawal


def test_dest_batch_len_counts_messages():
    q = DestinationBatchQueue()
    for i in range(5):
        q.push(msg(i % 2, sender=i))
    assert len(q) == 5
    q.pop_batch()
    assert len(q) == 2


def test_dest_batch_clear():
    q = DestinationBatchQueue()
    q.push(msg(1, 10))
    q.push(msg(2, 10))
    q.clear()
    assert len(q) == 0


def test_dest_batch_reuse_destination_after_drain():
    q = DestinationBatchQueue()
    q.push(msg(1, 10))
    q.pop_batch()
    q.push(msg(1, 11))
    batch, __ = q.pop_batch()
    assert batch[0].sender == 11


# ---------------------------------------------------------------------------
# TCP-style batching (the Sec 4.4 baseline)
# ---------------------------------------------------------------------------
def test_tcp_batch_takes_fixed_size():
    q = TCPBatchQueue(batch_size=3)
    for i in range(5):
        q.push(msg(i, sender=i))
    batch, dropped = q.pop_batch()
    assert dropped == 0
    assert [m.dest for m in batch] == [0, 1, 2]
    assert len(q) == 2


def test_tcp_batch_dedups_within_batch_only():
    q = TCPBatchQueue(batch_size=2)
    first = msg(1, 10, path=(2,))
    second = msg(1, 10, path=(3,))
    third = msg(1, 10, path=(4,))
    q.push(first)
    q.push(second)
    q.push(third)
    batch, dropped = q.pop_batch()
    # first and second fall in the same batch -> dedup to second.
    assert dropped == 1
    assert batch == [second]
    batch2, dropped2 = q.pop_batch()
    # third is alone in the next batch: no chance to dedup.
    assert dropped2 == 0
    assert batch2 == [third]


def test_tcp_batch_different_senders_not_dedupped():
    q = TCPBatchQueue(batch_size=4)
    q.push(msg(1, 10))
    q.push(msg(1, 11))
    batch, dropped = q.pop_batch()
    assert dropped == 0
    assert len(batch) == 2


def test_tcp_batch_size_validation():
    with pytest.raises(ValueError):
        TCPBatchQueue(batch_size=0)


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------
def test_make_queue():
    assert isinstance(make_queue("fifo"), FIFOQueue)
    assert isinstance(make_queue("dest_batch"), DestinationBatchQueue)
    tcp = make_queue("tcp_batch", tcp_batch_size=5)
    assert isinstance(tcp, TCPBatchQueue)
    assert tcp.batch_size == 5
    with pytest.raises(ValueError):
        make_queue("bogus")
