"""Tests for topology serialization."""

import json

import pytest

from repro.topology.multirouter import MultiRouterSpec, multi_router_topology
from repro.topology.serialize import (
    degree_sequence_from_file,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.skewed import skewed_topology


def equivalent(a, b):
    return (
        {n: (r.asn, r.x, r.y) for n, r in a.routers.items()}
        == {n: (r.asn, r.x, r.y) for n, r in b.routers.items()}
        and sorted((l.a, l.b, l.delay, l.kind) for l in a.links)
        == sorted((l.a, l.b, l.delay, l.kind) for l in b.links)
    )


def test_dict_round_trip_flat():
    topo = skewed_topology(30, seed=5)
    rebuilt = topology_from_dict(topology_to_dict(topo))
    assert equivalent(topo, rebuilt)
    assert rebuilt.name == topo.name


def test_dict_round_trip_multirouter():
    topo = multi_router_topology(MultiRouterSpec(num_ases=10), seed=2)
    rebuilt = topology_from_dict(topology_to_dict(topo))
    assert equivalent(topo, rebuilt)
    rebuilt.validate()


def test_file_round_trip(tmp_path):
    topo = skewed_topology(20, seed=1)
    path = tmp_path / "topo.json"
    save_topology(topo, path)
    loaded = load_topology(path)
    assert equivalent(topo, loaded)
    # The file is plain JSON.
    data = json.loads(path.read_text())
    assert data["format"] == "repro-topology"


def test_from_dict_rejects_wrong_format():
    with pytest.raises(ValueError):
        topology_from_dict({"format": "something-else", "version": 1})


def test_from_dict_rejects_wrong_version():
    topo = skewed_topology(10, seed=1)
    data = topology_to_dict(topo)
    data["version"] = 999
    with pytest.raises(ValueError):
        topology_from_dict(data)


def test_loaded_topology_is_validated(tmp_path):
    topo = skewed_topology(10, seed=1)
    data = topology_to_dict(topo)
    data["links"] = data["links"][:1]  # disconnect it
    path = tmp_path / "broken.json"
    path.write_text(json.dumps(data))
    with pytest.raises(Exception):
        load_topology(path)


def test_degree_sequence_from_file(tmp_path):
    path = tmp_path / "degrees.txt"
    path.write_text("# measured AS degrees\n3\n1\n\n2  # trailing comment\n8\n")
    assert degree_sequence_from_file(path) == [3, 1, 2, 8]


def test_degree_sequence_file_errors(tmp_path):
    bad = tmp_path / "bad.txt"
    bad.write_text("3\nx\n")
    with pytest.raises(ValueError, match="not an integer"):
        degree_sequence_from_file(bad)
    negative = tmp_path / "neg.txt"
    negative.write_text("3\n-1\n")
    with pytest.raises(ValueError, match="negative"):
        degree_sequence_from_file(negative)
    short = tmp_path / "short.txt"
    short.write_text("3\n")
    with pytest.raises(ValueError, match="at least 2"):
        degree_sequence_from_file(short)


def test_degree_sequence_file_feeds_realization(tmp_path):
    import random

    from repro.topology.degree import realize_degree_sequence

    path = tmp_path / "degrees.txt"
    path.write_text("\n".join(["3"] * 6 + ["1"] * 6))
    seq = degree_sequence_from_file(path)
    edges = realize_degree_sequence(seq, random.Random(1), connected=True)
    assert edges
