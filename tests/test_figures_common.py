"""Tests for the shared figure-harness infrastructure."""

import pytest

from repro.core.sweep import Series
from repro.figures.common import (
    QUICK,
    ScaleProfile,
    batching_scheme_sweep,
    series_for_mrai_grid,
    skewed_factory,
    three_mrai_failure_sweep,
)


def tiny_profile(**overrides):
    defaults = dict(
        name="tiny-common",
        nodes=16,
        seeds=(1,),
        fractions=(0.125, 0.25),
        mrai_grid=(0.5, 2.25),
        mrai_three=(0.5, 1.25, 2.25),
        dynamic_levels=(0.5, 2.25),
        fig3_fractions=(0.125, 0.25),
        multirouter_ases=6,
    )
    defaults.update(overrides)
    return ScaleProfile(**defaults)


def test_three_mrai_sweep_is_memoized():
    profile = tiny_profile(name="memo-test")
    first = three_mrai_failure_sweep(profile)
    second = three_mrai_failure_sweep(profile)
    assert first is second  # same tuple object: cache hit
    assert len(first) == 3
    labels = [s.label for s in first]
    assert labels == ["MRAI=0.5s", "MRAI=1.25s", "MRAI=2.25s"]


def test_three_mrai_sweep_covers_all_fractions():
    profile = tiny_profile(name="fraction-cover")
    series = three_mrai_failure_sweep(profile)
    for s in series:
        assert s.xs == list(profile.fractions)
        assert all(d > 0 for d in s.delays)


def test_batching_scheme_sweep_layout():
    profile = tiny_profile(name="batching-layout")
    series = batching_scheme_sweep(profile)
    labels = [s.label for s in series]
    assert labels == [
        "MRAI=0.5s",
        "MRAI=2.25s",
        "dynamic",
        "batching",
        "batch+dynamic",
    ]
    assert all(isinstance(s, Series) for s in series)


def test_series_for_mrai_grid_uses_profile_grid_by_default():
    profile = tiny_profile(name="grid-default")
    factory = skewed_factory(profile)
    series = series_for_mrai_grid(profile, factory, 0.25, label="x")
    assert series.xs == list(profile.mrai_grid)
    custom = series_for_mrai_grid(
        profile, factory, 0.25, label="y", grid=(1.0,)
    )
    assert custom.xs == [1.0]


def test_skewed_factory_deterministic_per_seed():
    factory = skewed_factory(QUICK)
    a = factory(3)
    b = factory(3)
    assert sorted(l.endpoints() for l in a.links) == sorted(
        l.endpoints() for l in b.links
    )


def test_profile_is_hashable_and_frozen():
    profile = tiny_profile(name="frozen")
    hash(profile)
    with pytest.raises(AttributeError):
        profile.nodes = 99
