"""Tests for the campaign service (repro.service).

Headline properties: a submission splits into cache hits and queued
cold trials whose keys agree with the batch runner's; the executor
drains the queue through the standard trial path and banks results
bit-identical to :func:`run_trials`; trial failures retry with backoff
and park after ``max_attempts``; payload/key drift fails permanently;
and the daemon serves the whole cycle over HTTP — cold submit, poll,
fold, then a warm resubmit answered entirely from the store.
"""

import json
import sqlite3

import pytest

from repro.core.experiment import run_trials
from repro.service import (
    CampaignService,
    ExecutorConfig,
    QueueExecutor,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    plan_submission,
    submission_campaign,
    ticket_results,
    ticket_status,
)
from repro.store import (
    Campaign,
    ResultStore,
    campaign_keys,
    load_campaign_results,
    run_campaign,
)

CAMPAIGN = {
    "name": "svc",
    "topology": {"kind": "skewed", "nodes": 24, "distribution": "70-30"},
    "schemes": {
        "fifo-0.5": {"mrai": 0.5},
        "dynamic": {"mrai_scheme": "dynamic", "levels": [0.5, 1.25, 2.25]},
    },
    "axis": {"name": "failure_fraction", "values": [0.1]},
    "seeds": [1, 2],
}


def make_campaign(**overrides):
    data = dict(CAMPAIGN)
    data.update(overrides)
    return Campaign.from_dict(data)


def small_campaign(seeds=None):
    """One scheme, one axis value: one trial per seed."""
    overrides = {"schemes": {"fifo-0.5": {"mrai": 0.5}}}
    if seeds is not None:
        overrides["seeds"] = seeds
    return make_campaign(**overrides)


def folded_signature(series_list):
    """Hashable fold of Series objects (in-process results)."""
    return sorted(
        (
            s.label,
            tuple(
                (p.x, p.delay, p.messages, p.unreachable)
                for p in s.points
            ),
        )
        for s in series_list
    )


def json_signature(series_payload):
    """The same fold from the service's JSON ``/result`` payload."""
    return sorted(
        (
            s["label"],
            tuple(
                (p["x"], p["delay"], p["messages"], p["unreachable"])
                for p in s["points"]
            ),
        )
        for s in series_payload
    )


def drain_fully(executor):
    while executor.drain_once():
        pass


@pytest.fixture()
def store(tmp_path):
    with ResultStore(tmp_path / "store.db") as s:
        yield s


# ----------------------------------------------------------------------
# Submission normalization
# ----------------------------------------------------------------------
def test_submission_campaign_parses_grid():
    campaign = submission_campaign(CAMPAIGN)
    assert campaign.name == "svc"
    assert campaign.total_trials == 4


def test_single_spec_wraps_into_equivalent_campaign_cell():
    data = {
        "topology": dict(CAMPAIGN["topology"]),
        "scheme": {"mrai": 0.5, "failure_fraction": 0.2},
        "seed": 3,
    }
    wrapped = submission_campaign(data)
    assert wrapped.values == [0.2]
    assert wrapped.seeds == [3]
    grid = make_campaign(
        schemes={"spec": {"mrai": 0.5, "failure_fraction": 0.2}},
        axis={"name": "failure_fraction", "values": [0.2]},
        seeds=[3],
        name="adhoc",
    )
    [(_, wrapped_key, _t)] = campaign_keys(wrapped)
    [(_, grid_key, _t)] = campaign_keys(grid)
    assert wrapped_key == grid_key


def test_single_spec_defaults_failure_fraction():
    campaign = submission_campaign(
        {
            "topology": dict(CAMPAIGN["topology"]),
            "scheme": {"mrai": 0.5},
            "seeds": [1, 2],
        }
    )
    assert campaign.values == [0.05]
    assert campaign.total_trials == 2


@pytest.mark.parametrize(
    "body, match",
    [
        ({}, "must carry either"),
        ({"scheme": {"mrai": 0.5}}, "requires 'topology'"),
        (
            {
                "scheme": {"mrai": 0.5},
                "topology": {"kind": "skewed", "nodes": 24},
            },
            "requires 'seed'",
        ),
    ],
)
def test_submission_validation(body, match):
    with pytest.raises(ValueError, match=match):
        submission_campaign(body)


# ----------------------------------------------------------------------
# Planning: cache hits vs queued cold trials
# ----------------------------------------------------------------------
def test_plan_submission_cold_then_duplicate(store):
    campaign = make_campaign()
    first = plan_submission(campaign, store)
    assert (first.total, first.cached, first.enqueued) == (4, 0, 4)
    assert not first.complete
    assert store.queue_counts()["pending"] == 4
    # An identical submission while the first is open queues nothing.
    second = plan_submission(campaign, store)
    assert (second.enqueued, second.deduplicated) == (0, 4)
    assert second.ticket != first.ticket
    assert store.ticket_info(first.ticket)["keys"] == first.keys


def test_ticket_status_tracks_queue_and_store(store):
    campaign = small_campaign()
    receipt = plan_submission(campaign, store)
    assert ticket_status(receipt.ticket, store)["state"] == "pending"

    [task] = store.lease_tasks("w", 1, lease_seconds=30)
    status = ticket_status(receipt.ticket, store)
    assert (status["running"], status["pending"]) == (1, 1)
    assert status["state"] == "running"

    store.fail_task(task.id, "boom")  # terminal
    status = ticket_status(receipt.ticket, store)
    assert status["state"] == "failed"
    assert status["failures"][0]["error"] == "boom"

    with pytest.raises(KeyError):
        ticket_status("nope", store)


def test_ticket_results_gates_on_completion(store):
    receipt = plan_submission(small_campaign(), store)
    with pytest.raises(KeyError):
        ticket_results("nope", store)
    with pytest.raises(ValueError, match="missing"):
        ticket_results(receipt.ticket, store)


# ----------------------------------------------------------------------
# Executor: drain, bank, retry
# ----------------------------------------------------------------------
def test_executor_banks_bit_identical_to_run_trials(store):
    campaign = small_campaign()
    receipt = plan_submission(campaign, store)
    executor = QueueExecutor(
        store, ExecutorConfig(jobs=1, batch_size=8)
    )
    drain_fully(executor)
    assert executor.executed == receipt.total == 2
    assert ticket_status(receipt.ticket, store)["state"] == "done"

    # The exact trials run_trials would produce for the same cell.
    keyed = campaign_keys(campaign)
    serial = run_trials(
        campaign.topology_factory(), keyed[0][0].spec, campaign.seeds
    )
    by_seed = {t.seed: t for t in serial.trials}
    for task, key, _topology in keyed:
        assert store.get(key) == by_seed[task.seed]

    folded = ticket_results(receipt.ticket, store)
    assert json_signature(folded["series"]) == folded_signature(
        load_campaign_results(campaign, store)[0]
    )


def test_executor_retries_with_backoff_then_succeeds(store, monkeypatch):
    import repro.service.executor as executor_mod

    receipt = plan_submission(small_campaign(), store)
    real = executor_mod._guarded
    calls = {"n": 0}

    def flaky(task):
        calls["n"] += 1
        if calls["n"] == 1:
            return task.index, None, None, "RuntimeError: injected"
        return real(task)

    monkeypatch.setattr(executor_mod, "_guarded", flaky)
    executor = QueueExecutor(
        store,
        ExecutorConfig(
            jobs=1, batch_size=8, max_attempts=3, backoff_seconds=0.0
        ),
    )
    drain_fully(executor)
    assert executor.retried == 1
    assert executor.failed_attempts == 1
    assert executor.executed == 2
    assert executor.failed_terminal == 0
    assert ticket_status(receipt.ticket, store)["state"] == "done"


def test_executor_parks_task_after_max_attempts(store, monkeypatch):
    import repro.service.executor as executor_mod

    receipt = plan_submission(
        small_campaign(), store
    )

    def always_fails(task):
        return task.index, None, None, "RuntimeError: injected"

    monkeypatch.setattr(executor_mod, "_guarded", always_fails)
    executor = QueueExecutor(
        store,
        ExecutorConfig(
            jobs=1, batch_size=8, max_attempts=2, backoff_seconds=0.0
        ),
    )
    drain_fully(executor)
    assert executor.executed == 0
    assert executor.failed_terminal == 2
    assert store.queue_counts()["failed"] == 2
    status = ticket_status(receipt.ticket, store)
    assert status["state"] == "failed"
    assert all(
        f["error"] == "RuntimeError: injected" for f in status["failures"]
    )


def test_executor_fails_permanently_on_key_drift(store):
    receipt = plan_submission(
        small_campaign(seeds=[1]), store
    )
    # Corrupt the queued payload so it rebuilds to a different hash.
    conn = sqlite3.connect(str(store.path))
    [(raw,)] = conn.execute("SELECT payload FROM queue").fetchall()
    payload = json.loads(raw)
    payload["seed"] = payload["seed"] + 1
    conn.execute("UPDATE queue SET payload=?", (json.dumps(payload),))
    conn.commit()
    conn.close()

    executor = QueueExecutor(store, ExecutorConfig(jobs=1))
    drain_fully(executor)
    assert executor.executed == 0
    assert executor.failed_terminal == 1
    status = ticket_status(receipt.ticket, store)
    assert status["state"] == "failed"
    assert "materialize" in status["failures"][0]["error"]


# ----------------------------------------------------------------------
# Daemon over HTTP
# ----------------------------------------------------------------------
@pytest.fixture()
def service(tmp_path):
    config = ServiceConfig(
        store=str(tmp_path / "svc.db"),
        port=0,
        jobs=1,
        batch_size=8,
        poll_interval=0.05,
        quiet=True,
    )
    svc = CampaignService(config)
    svc.start()
    try:
        yield svc
    finally:
        svc.shutdown()


def test_service_cold_then_warm_over_http(service):
    client = ServiceClient(f"http://127.0.0.1:{service.port}")
    assert client.health()["status"] == "ok"

    receipt = client.submit(CAMPAIGN)
    assert (receipt["total"], receipt["enqueued"]) == (4, 4)
    assert not receipt["complete"]
    client.wait(receipt["ticket"], timeout=120.0, poll_interval=0.05)

    folded = client.result(receipt["ticket"])
    assert {s["label"] for s in folded["series"]} == {
        "fifo-0.5",
        "dynamic",
    }

    # Warm resubmission: answered entirely from the store.
    again = client.submit(CAMPAIGN)
    assert again["complete"]
    assert (again["cached"], again["enqueued"]) == (4, 0)
    assert client.result(again["ticket"])["series"] == folded["series"]
    assert client.queue_status()["executor"]["executed"] == 4

    # Matches a from-scratch serial fold of the same campaign.
    serial_sig = folded_signature(
        load_campaign_results(make_campaign(), service.backend)[0]
    )
    assert json_signature(folded["series"]) == serial_sig

    # Single banked trial with provenance, by content key.
    key = receipt["keys"][0]
    trial = client.trial(key)
    assert trial["trial"]["seed"] in CAMPAIGN["seeds"]
    assert trial["provenance"]["schema_version"] >= 2


def test_service_http_error_mapping(service):
    client = ServiceClient(f"http://127.0.0.1:{service.port}")
    with pytest.raises(ServiceError) as err:
        client.status("not-a-ticket")
    assert err.value.status == 404
    with pytest.raises(ServiceError) as err:
        client.submit({"bogus": True})
    assert err.value.status == 400
    with pytest.raises(ServiceError) as err:
        client.trial("0" * 32)
    assert err.value.status == 404


def test_service_rejects_submissions_while_draining(service):
    client = ServiceClient(f"http://127.0.0.1:{service.port}")
    service.request_shutdown()
    with pytest.raises(ServiceError) as err:
        client.submit(CAMPAIGN)
    assert err.value.status == 503
    assert client.health()["status"] == "draining"
