"""Tests for explicit BGP session management (OPEN/KEEPALIVE/hold)."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.session import ESTABLISHED, IDLE, SessionConfig
from repro.core.validation import validate_routing
from repro.sim.timers import Jitter
from repro.topology.skewed import skewed_topology
from tests.conftest import line_topology, ring_topology


def explicit_network(topo, seed=1, hold=3.0, keepalive=1.0, mrai=0.5):
    config = BGPConfig(
        mrai_policy=ConstantMRAI(mrai),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        session=SessionConfig(hold_time=hold, keepalive_time=keepalive),
    )
    return BGPNetwork(topo, config, seed=seed)


def test_session_config_validation():
    with pytest.raises(ValueError):
        SessionConfig(hold_time=0.0)
    with pytest.raises(ValueError):
        SessionConfig(hold_time=3.0, keepalive_time=3.0)
    with pytest.raises(ValueError):
        SessionConfig(retry_time=-1.0)


def test_sessions_start_down_and_establish():
    net = explicit_network(line_topology(3))
    for speaker in net.speakers.values():
        for ps in speaker.peers.values():
            assert not ps.session_up
    net.start()
    net.run_until_converged(idle_window=2.0, max_time=60.0)
    for speaker in net.speakers.values():
        for session in speaker.sessions.values():
            assert session.state == ESTABLISHED
        for ps in speaker.peers.values():
            assert ps.session_up
    assert net.counters["sessions_established"] > 0
    assert net.counters["session_messages_sent"] > 0


def test_routes_propagate_after_establishment():
    net = explicit_network(ring_topology(5))
    net.start()
    net.run_until_converged(idle_window=2.0, max_time=120.0)
    for speaker in net.speakers.values():
        assert speaker.loc_rib.destinations() == {0, 1, 2, 3, 4}


def test_keepalives_sustain_sessions_indefinitely():
    net = explicit_network(line_topology(3))
    net.start()
    net.run_until_converged(idle_window=2.0, max_time=60.0)
    sent_before = net.counters["session_messages_sent"]
    # Run 20 more simulated seconds: keepalives flow, nothing breaks.
    net.sim.run(until=net.sim.now + 20.0)
    assert net.counters["session_messages_sent"] > sent_before
    for speaker in net.speakers.values():
        for session in speaker.sessions.values():
            assert session.state == ESTABLISHED
    assert net.counters["sessions_hold_expired"] == 0


def test_hold_timer_detects_silent_failure():
    """The headline: failure detection *emerges* from keepalive silence."""
    net = explicit_network(line_topology(4), hold=3.0, keepalive=1.0)
    net.start()
    net.run_until_converged(idle_window=2.0, max_time=120.0)
    t0 = net.fail_nodes([3])  # no notification in explicit mode
    net.run_until_converged(idle_window=4.0, max_time=t0 + 120.0)
    # Node 2 noticed via hold expiry, then withdrew prefix 3 upstream.
    assert net.counters["sessions_hold_expired"] >= 1
    for speaker in net.alive_speakers():
        assert 3 not in speaker.loc_rib.destinations()
    # Detection cannot be faster than the remaining hold time but must
    # happen within one full hold interval plus propagation.
    detection_latency = net.last_activity - t0
    assert 0.0 < detection_latency <= 3.0 + 2.0


def test_explicit_mode_full_cycle_validates():
    topo = skewed_topology(24, seed=3)
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        session=SessionConfig(hold_time=3.0, keepalive_time=1.0),
    )
    net = BGPNetwork(topo, config, seed=1)
    net.start()
    net.run_until_converged(idle_window=2.0, max_time=300.0)
    assert net.routing_quiet()
    t0 = net.fail_nodes(topo.nodes_by_distance(500, 500)[:3])
    net.run_until_converged(idle_window=4.0, max_time=t0 + 300.0)
    assert net.routing_quiet()
    # Routing invariants hold; quiescence is session-aware.
    try:
        validate_routing(net)
    except AssertionError as exc:
        if "quiescent" not in str(exc):
            raise


def test_session_reestablishment_after_peer_recovers():
    # Our model has no node resurrection, but a session dropped by an
    # external peer_down (not a failure) must re-establish via retry.
    net = explicit_network(line_topology(3), hold=3.0, keepalive=1.0)
    net.start()
    net.run_until_converged(idle_window=2.0, max_time=60.0)
    established_before = net.counters["sessions_established"]
    # Drop the 1-2 session administratively on both sides.
    net.speakers[1].peer_down(2)
    net.speakers[2].peer_down(1)
    net.run_until_converged(idle_window=3.0, max_time=net.sim.now + 60.0)
    # The retry timers brought it back up and routes returned.
    assert net.counters["sessions_established"] > established_before
    assert 2 in net.speakers[0].loc_rib.destinations()


def test_run_until_converged_validates_input():
    net = explicit_network(line_topology(3))
    with pytest.raises(ValueError):
        net.run_until_converged(idle_window=0.0)


def test_implicit_mode_unaffected():
    """No session config -> no session machinery, exact old behaviour."""
    topo = line_topology(3)
    net = BGPNetwork(topo, BGPConfig(mrai_policy=ConstantMRAI(0.5)), seed=1)
    net.start()
    net.run_until_quiet()
    assert not net.speakers[0].sessions
    assert net.counters["session_messages_sent"] == 0
    assert net.is_quiescent()
    # run_until_converged also works in implicit mode (returns at quiet).
    assert net.run_until_converged(idle_window=1.0) == net.last_activity