"""Coverage for cross-cutting behaviours not owned by one module's suite."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp.config import BGPConfig
from repro.bgp.messages import Update
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.queues import WithdrawalFirstBatchQueue
from repro.cli import main
from repro.figures.bench import results_dir
from repro.sim.engine import Simulator
from tests.conftest import converged_network, line_topology, ring_topology


# ---------------------------------------------------------------------------
# Engine odds and ends
# ---------------------------------------------------------------------------
def test_peek_next_time():
    sim = Simulator()
    assert sim.peek_next_time() is None
    sim.schedule(2.5, lambda: None)
    assert sim.peek_next_time() == 2.5


def test_pending_events_counts_live_only():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(event)
    assert sim.pending_events == 1


# ---------------------------------------------------------------------------
# Network internals
# ---------------------------------------------------------------------------
def test_in_flight_update_accounting():
    net = converged_network(line_topology(3))
    assert net.routing_quiet()
    net.transmit(0, 1, Update(99, (0, 99), 0, net.sim.now), 0.025)
    assert not net.routing_quiet()
    net.run_until_quiet()
    assert net.routing_quiet()


def test_routing_quiet_vs_is_quiescent_implicit_mode():
    net = converged_network(ring_topology(4))
    assert net.is_quiescent()
    assert net.routing_quiet()
    # A non-protocol event blocks is_quiescent but not routing_quiet.
    net.sim.schedule(5.0, lambda: None)
    assert not net.is_quiescent()
    assert net.routing_quiet()


def test_session_counters_absent_in_implicit_mode():
    net = converged_network(line_topology(3))
    assert net.counters["session_messages_sent"] == 0
    assert net.counters["sessions_established"] == 0


# ---------------------------------------------------------------------------
# Withdrawal-first queue: message conservation under random workloads
# ---------------------------------------------------------------------------
updates = st.lists(
    st.builds(
        Update,
        dest=st.integers(min_value=0, max_value=5),
        path=st.one_of(
            st.none(),
            st.lists(st.integers(min_value=0, max_value=9), max_size=3).map(
                tuple
            ),
        ),
        sender=st.integers(min_value=0, max_value=4),
        sent_at=st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
    max_size=60,
)


@given(updates)
def test_wf_queue_conserves_messages(messages):
    q = WithdrawalFirstBatchQueue()
    for m in messages:
        q.push(m)
    drained = 0
    dropped = 0
    while len(q):
        batch, d = q.pop_batch()
        drained += len(batch)
        dropped += d
        assert len({m.dest for m in batch}) == 1
        assert len({m.sender for m in batch}) == len(batch)
    assert drained + dropped == len(messages)


@given(updates)
def test_wf_queue_withdrawal_destinations_served_no_later(messages):
    """Any destination with a queued withdrawal is served before any
    destination without one (among those present at the same time)."""
    q = WithdrawalFirstBatchQueue()
    for m in messages:
        q.push(m)
    has_withdrawal = {
        m.dest for m in messages if m.is_withdrawal
    }
    service_order = []
    while len(q):
        batch, __ = q.pop_batch()
        service_order.append(batch[0].dest)
    urgent_positions = [
        i for i, d in enumerate(service_order) if d in has_withdrawal
    ]
    normal_positions = [
        i for i, d in enumerate(service_order) if d not in has_withdrawal
    ]
    if urgent_positions and normal_positions:
        assert max(urgent_positions) < min(normal_positions) + len(
            urgent_positions
        )


# ---------------------------------------------------------------------------
# CLI: export and list paths
# ---------------------------------------------------------------------------
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig01" in out
    assert "ab_flap_damping" in out


def test_cli_run_new_schemes(capsys):
    assert (
        main(
            [
                "run",
                "--nodes",
                "20",
                "--mrai-scheme",
                "theory",
                "--failure",
                "0.1",
            ]
        )
        == 0
    )
    assert "convergence delay" in capsys.readouterr().out


def test_results_dir_is_repo_root():
    path = results_dir()
    assert path.name == "results"
    assert (path.parent / "pyproject.toml").exists()


# ---------------------------------------------------------------------------
# Config cross-validation
# ---------------------------------------------------------------------------
def test_config_accepts_all_queue_disciplines():
    for discipline in ("fifo", "dest_batch", "dest_batch_wf", "tcp_batch"):
        BGPConfig(queue_discipline=discipline)


def test_experiment_spec_detection_validation():
    from repro.core.experiment import ExperimentSpec

    with pytest.raises(ValueError):
        ExperimentSpec(detection_delay=-1.0)
    with pytest.raises(ValueError):
        ExperimentSpec(detection_jitter=-0.5)


def test_experiment_spec_detection_delay_applied():
    from repro.core.experiment import ExperimentSpec, run_experiment
    from repro.topology.skewed import skewed_topology

    topo = skewed_topology(20, seed=1)
    fast = run_experiment(
        topo, ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1), seed=1
    )
    slow = run_experiment(
        topo,
        ExperimentSpec(
            mrai=ConstantMRAI(0.5),
            failure_fraction=0.1,
            detection_delay=5.0,
        ),
        seed=1,
    )
    assert slow.convergence_delay > fast.convergence_delay + 4.0
