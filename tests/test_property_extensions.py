"""Property-based tests for the extension modules (damping, sessions,
adaptive controller, theory heuristics)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.damping import DampingConfig, DampingState
from repro.bgp.session import (
    ESTABLISHED,
    IDLE,
    KEEPALIVE,
    NOTIFICATION,
    OPEN,
    OPEN_CONFIRM,
    OPEN_SENT,
    SessionConfig,
    SessionMessage,
)
from repro.core.adaptive import PAPER_CALIBRATION, FailureExtentController
from repro.core.theory import recommend_mrai
from repro.topology.skewed import skewed_topology


# ---------------------------------------------------------------------------
# Damping invariants
# ---------------------------------------------------------------------------
flap_sequences = st.lists(
    st.tuples(
        st.sampled_from(["withdraw", "readvertise"]),
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    ),
    max_size=40,
)


@given(flap_sequences)
def test_damping_penalty_always_bounded_and_nonnegative(events):
    config = DampingConfig(half_life=5.0)
    state = DampingState(config)
    now = 0.0
    for kind, gap in events:
        now += gap
        if kind == "withdraw":
            state.record_withdrawal(now)
        else:
            state.record_readvertisement(now)
        assert 0.0 <= state.penalty <= config.max_penalty
        # Suppression implies the penalty once exceeded the cut threshold.
        if state.suppressed:
            assert state.penalty > config.reuse_threshold


@given(
    st.floats(min_value=1.0, max_value=11_999.0),
    st.floats(min_value=0.1, max_value=60.0),
)
def test_damping_decay_is_exponential(initial_penalty, half_life):
    config = DampingConfig(half_life=half_life)
    state = DampingState(config)
    state.penalty = initial_penalty
    state.last_update = 0.0
    assert state.current_penalty(half_life) == (
        __import__("pytest").approx(initial_penalty / 2.0, rel=1e-9)
    )
    # Monotone decay.
    assert state.current_penalty(1.0) >= state.current_penalty(2.0)


@given(st.floats(min_value=751.0, max_value=12_000.0))
def test_damping_reuse_delay_lands_exactly_on_threshold(penalty):
    config = DampingConfig(half_life=7.0)
    delay = config.reuse_delay(penalty)
    decayed = penalty * math.exp(-config.decay_rate * delay)
    assert abs(decayed - config.reuse_threshold) < 1e-6


# ---------------------------------------------------------------------------
# Session FSM: never crashes, never reaches an invalid state
# ---------------------------------------------------------------------------
class _FakeTimerHost:
    """Minimal speaker stand-in for FSM-only fuzzing."""

    def __init__(self, sim):
        self.sim = sim
        self.alive = True
        self.node_id = 0
        self.sent = []
        self.down_events = 0

        class _Net:
            class counters:
                @staticmethod
                def incr(name, amount=1):
                    pass

        self.network = _Net()

    def send_session_message(self, peer_id, kind):
        self.sent.append(kind)

    def session_established(self, peer_id):
        pass

    def peer_down(self, peer_id):
        self.down_events += 1


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.sampled_from([OPEN, KEEPALIVE, NOTIFICATION, "tick"]),
        max_size=30,
    )
)
def test_session_fsm_fuzzing_never_leaves_valid_states(script):
    from repro.bgp.session import Session
    from repro.sim.engine import Simulator

    sim = Simulator(seed=1)
    host = _FakeTimerHost(sim)
    session = Session(host, peer_id=1, config=SessionConfig())
    session.start()
    valid = {IDLE, OPEN_SENT, OPEN_CONFIRM, ESTABLISHED}
    for action in script:
        if action == "tick":
            sim.run(until=sim.now + 1.0)
        else:
            session.handle(SessionMessage(action, 1))
        assert session.state in valid
        # Keepalives only flow in ESTABLISHED; the hold timer only runs
        # outside IDLE.
        if session.state == IDLE:
            assert not session.hold_timer.running
    # Long silence from any state must land us back in IDLE/retry cycles,
    # never a stuck half-open state.
    sim.run(until=sim.now + 100.0)
    assert session.state in (IDLE, OPEN_SENT)


# ---------------------------------------------------------------------------
# Adaptive controller invariants
# ---------------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=50),
            st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        ),
        max_size=60,
    )
)
def test_adaptive_extent_bounded_and_value_in_calibration(events):
    ctl = FailureExtentController(
        PAPER_CALIBRATION, window=5.0, total_destinations=50
    )
    now = 0.0
    ladder = {mrai for __, mrai in PAPER_CALIBRATION}
    for dest, gap in events:
        now += gap
        ctl.on_destination_changed(dest, now)
        assert 0.0 <= ctl.extent(now) <= 1.0
        assert ctl.value() in ladder


# ---------------------------------------------------------------------------
# Theory heuristic monotonicity
# ---------------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=500),
    st.floats(min_value=0.01, max_value=0.2),
    st.floats(min_value=0.01, max_value=0.2),
)
def test_recommended_mrai_monotone_in_failure_size(seed, f1, f2):
    topo = skewed_topology(30, seed=seed)
    lo, hi = sorted((f1, f2))
    assert recommend_mrai(topo, lo) <= recommend_mrai(topo, hi) + 1e-9
