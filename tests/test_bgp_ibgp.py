"""iBGP behaviour on multi-router-per-AS topologies."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.sim.timers import Jitter
from repro.topology.graph import Link, Router, Topology


def two_as_topology():
    """AS 0 = routers {0, 1, 2} (line), AS 1 = router {3}; eBGP 2-3."""
    topo = Topology(name="two-as")
    for node_id, asn in ((0, 0), (1, 0), (2, 0), (3, 1)):
        topo.add_router(Router(node_id, asn, float(node_id), 0.0))
    topo.add_link(Link(0, 1, 0.025, "intra_as"))
    topo.add_link(Link(1, 2, 0.025, "intra_as"))
    topo.add_link(Link(2, 3, 0.025, "inter_as"))
    topo.validate()
    return topo


def three_as_topology():
    """AS0={0,1}, AS1={2,3}, AS2={4}; eBGP 1-2 and 3-4."""
    topo = Topology(name="three-as")
    for node_id, asn in ((0, 0), (1, 0), (2, 1), (3, 1), (4, 2)):
        topo.add_router(Router(node_id, asn, float(node_id), 0.0))
    topo.add_link(Link(0, 1, 0.025, "intra_as"))
    topo.add_link(Link(2, 3, 0.025, "intra_as"))
    topo.add_link(Link(1, 2, 0.025, "inter_as"))
    topo.add_link(Link(3, 4, 0.025, "inter_as"))
    topo.validate()
    return topo


def build(topo, seed=1):
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    net = BGPNetwork(topo, config, seed=seed)
    net.start()
    net.run_until_quiet()
    assert net.is_quiescent()
    return net


def test_ibgp_full_mesh_sessions():
    net = BGPNetwork(two_as_topology())
    # Routers 0,1,2 are fully meshed over iBGP even though the physical
    # intra-AS graph is a line.
    assert set(net.speakers[0].peers) == {1, 2}
    assert not net.speakers[0].peers[1].ebgp
    assert not net.speakers[0].peers[2].ebgp
    assert net.speakers[2].peers[3].ebgp


def test_every_router_reaches_every_prefix():
    net = build(two_as_topology())
    for speaker in net.speakers.values():
        assert speaker.loc_rib.destinations() == {0, 1}


def test_as_path_not_extended_over_ibgp():
    net = build(two_as_topology())
    # Router 0 learns prefix 1 (AS 1) via iBGP from border router 2; the
    # path must be exactly (1,), not lengthened by internal hops.
    route = net.speakers[0].best_route(1)
    assert route is not None
    assert route.path == (1,)
    assert not route.ebgp
    assert route.peer == 2


def test_as_path_prepended_once_per_as():
    net = build(three_as_topology())
    # AS2's router 4 sees AS0's prefix with path (1, 0): one hop per AS.
    route = net.speakers[4].best_route(0)
    assert route is not None
    assert route.path == (1, 0)


def test_ibgp_learned_routes_not_reflected():
    net = build(three_as_topology())
    # Router 2 learns prefix 0 over eBGP and tells iBGP peer 3; router 3
    # must NOT re-advertise it to other iBGP peers (there are none here,
    # so check the export rule directly).
    speaker3 = net.speakers[3]
    route = speaker3.best_route(0)
    assert route is not None and not route.ebgp
    export_to_ibgp = speaker3.export_route(speaker3.peers[2], 0)
    assert export_to_ibgp is None
    # But it IS advertised over eBGP to AS 2 (with own AS prepended).
    export_to_ebgp = speaker3.export_route(speaker3.peers[4], 0)
    assert export_to_ebgp == (1, 0)


def test_ebgp_preferred_over_ibgp_on_tie():
    # Square: AS0={0,1} fully meshed internally; both 0 and 1 have eBGP
    # links to AS1's single router 2.
    topo = Topology(name="tie")
    topo.add_router(Router(0, 0, 0.0, 0.0))
    topo.add_router(Router(1, 0, 1.0, 0.0))
    topo.add_router(Router(2, 1, 2.0, 0.0))
    topo.add_link(Link(0, 1, 0.025, "intra_as"))
    topo.add_link(Link(0, 2, 0.025, "inter_as"))
    topo.add_link(Link(1, 2, 0.025, "inter_as"))
    topo.validate()
    net = build(topo)
    # Router 0 hears prefix 1 over eBGP (from 2) and over iBGP (from 1,
    # which also heard it from 2).  Both paths are (1,): eBGP must win.
    route = net.speakers[0].best_route(1)
    assert route is not None
    assert route.ebgp
    assert route.peer == 2


def test_border_router_failure_reroutes_as():
    net = build(three_as_topology())
    # Kill border router 3 of AS1: router 4 (AS2) loses everything (3 was
    # its only neighbor); AS0 and router 2 keep each other.
    net.fail_nodes([3])
    net.run_until_quiet()
    assert net.speakers[4].loc_rib.destinations() == {2}
    assert net.speakers[0].loc_rib.destinations() == {0, 1}
    assert net.speakers[2].loc_rib.destinations() == {0, 1}


def test_partial_as_failure_keeps_prefix_alive():
    net = build(two_as_topology())
    # Kill router 0 (interior of AS 0); prefix 0 stays alive because every
    # router of the AS originates it.
    net.fail_nodes([0])
    net.run_until_quiet()
    assert net.speakers[3].best_route(0) is not None
    assert 0 in net.speakers[3].loc_rib.destinations()


def test_ibgp_delay_configurable():
    net = BGPNetwork(two_as_topology(), ibgp_delay=0.1)
    assert net.speakers[0].peers[2].delay == pytest.approx(0.1)
