"""Unit tests for the simulation engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.events_executed == 0


def test_schedule_and_run_to_quiescence():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    end = sim.run()
    assert fired == ["a", "b"]
    assert end == 2.0
    assert sim.now == 2.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(5.0, fired.append, 5)
    sim.run()
    assert fired == [5]
    assert sim.now == 5.0


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(0.5, lambda: None)


def test_run_until_horizon_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(10.0, fired.append, 10)
    end = sim.run(until=5.0)
    assert fired == [1]
    assert end == 5.0
    assert sim.pending_events == 1
    # Resuming picks up where we left off.
    sim.run()
    assert fired == [1, 10]


def test_run_on_empty_queue_keeps_clock():
    # Draining (or starting empty) must NOT advance the clock to the
    # horizon: convergence times are read straight off sim.now.
    sim = Simulator()
    end = sim.run(until=3.0)
    assert end == 0.0
    assert sim.now == 0.0
    sim.schedule(1.0, lambda: None)
    assert sim.run(until=3.0) == 1.0


def test_run_stopping_on_horizon_advances_clock():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    assert sim.run(until=3.0) == 3.0
    assert sim.now == 3.0


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), fired.append, i)
    sim.run(max_events=4)
    assert fired == [0, 1, 2, 3]
    assert sim.pending_events == 6


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)
    assert sim.pending_events == 0


def test_step_executes_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_reset_clears_events_and_clock():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    sim.schedule(5.0, lambda: None)
    sim.reset()
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.events_executed == 0


def test_determinism_same_seed_same_trace():
    def run_once(seed):
        sim = Simulator(seed=seed)
        rng = sim.rng.get("x")
        values = []

        def draw():
            values.append(rng.random())
            if len(values) < 5:
                sim.schedule(rng.random(), draw)

        sim.schedule(0.1, draw)
        sim.run()
        return values, sim.now

    assert run_once(7) == run_once(7)
    assert run_once(7) != run_once(8)


def test_priority_orders_simultaneous_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "late", priority=1)
    sim.schedule(1.0, fired.append, "early", priority=-1)
    sim.run()
    assert fired == ["early", "late"]
