"""Tests for run manifests and the export writers."""

import csv
import json

from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.obs.export import (
    AGGREGATE_FIELDS,
    TIMESERIES_FIELDS,
    metrics_records,
    write_jsonl,
    write_metrics_jsonl,
)
from repro.obs.manifest import (
    PhaseTiming,
    RunManifest,
    host_fingerprint,
    jsonable,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.session import ObsSession
from repro.topology.skewed import skewed_topology


# ----------------------------------------------------------------------
# jsonable
# ----------------------------------------------------------------------
def test_jsonable_passthrough_and_containers():
    assert jsonable(None) is None
    assert jsonable(3) == 3
    assert jsonable("x") == "x"
    assert jsonable((1, 2)) == [1, 2]
    assert jsonable({"a": (1,)}) == {"a": [1]}
    assert sorted(jsonable({1, 2})) == [1, 2]


def test_jsonable_dataclass_and_fallback():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    data = jsonable(spec)
    assert data["failure_fraction"] == 0.1
    assert data["queue_discipline"] == "fifo"
    # Non-JSON leaves degrade to repr, never raise.
    assert isinstance(jsonable(object()), str)
    json.dumps(data)  # the whole tree must serialize


def test_host_fingerprint_keys():
    host = host_fingerprint()
    assert set(host) == {
        "python", "implementation", "platform", "machine", "hostname"
    }


# ----------------------------------------------------------------------
# PhaseTiming / RunManifest round-trip
# ----------------------------------------------------------------------
def test_phase_timing_round_trip():
    timing = PhaseTiming("warmup", 1.5, sim_seconds=30.0, events=1000)
    assert PhaseTiming.from_dict(timing.to_dict()) == timing


def test_manifest_round_trip(tmp_path):
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    manifest = RunManifest.create(
        kind="repro-run",
        command="run --nodes 30",
        spec=spec,
        seeds=[1, 2],
        topology="skewed(30)",
        counters={"updates_sent": 100},
        extra={"note": "test"},
    )
    manifest.add_phase("warmup", 1.0, sim_seconds=20.0, events=500)
    manifest.add_phase("convergence", 2.0, sim_seconds=10.0, events=700)

    path = manifest.save(tmp_path / "manifest.json")
    loaded = RunManifest.load(path)
    assert loaded == manifest
    assert loaded.phase("warmup").events == 500
    assert loaded.phase("missing") is None
    assert loaded.total_wall_seconds == 3.0
    assert loaded.package_version
    assert loaded.created_utc
    assert loaded.spec["failure_fraction"] == 0.1


def test_manifest_from_partial_dict():
    manifest = RunManifest.from_dict({"kind": "x"})
    assert manifest.kind == "x"
    assert manifest.phases == []
    assert manifest.total_wall_seconds == 0.0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_write_jsonl(tmp_path):
    path = write_jsonl([{"a": 1}, {"b": 2}], tmp_path / "x.jsonl")
    lines = path.read_text().splitlines()
    assert [json.loads(line) for line in lines] == [{"a": 1}, {"b": 2}]


def test_metrics_records_appends_extras():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    records = metrics_records(reg, [{"kind": "trial", "trial": 0}])
    assert records[0]["name"] == "c"
    assert records[-1]["kind"] == "trial"


def test_write_metrics_jsonl(tmp_path):
    reg = MetricsRegistry()
    reg.counter("msgs").inc(7)
    reg.histogram("svc", buckets=(1.0,)).observe(0.5)
    path = write_metrics_jsonl(reg, tmp_path / "metrics.jsonl")
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    kinds = {row["kind"] for row in rows}
    assert kinds == {"counter", "histogram"}


# ----------------------------------------------------------------------
# Session end-to-end export
# ----------------------------------------------------------------------
def test_session_export_writes_all_artifacts(tmp_path):
    obs = ObsSession(sample_interval=0.5, profile=True)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    run_experiment(skewed_topology(30, seed=3), spec, seed=1, obs=obs)

    written = obs.export(tmp_path, command="test")
    names = {p.name for p in written}
    assert names == {
        "manifest.json",
        "metrics.jsonl",
        "timeseries.csv",
        "aggregates.csv",
        "profile.txt",
    }

    manifest = RunManifest.load(tmp_path / "manifest.json")
    phase_names = [p.name for p in manifest.phases]
    assert phase_names == ["warmup", "failure", "convergence"]
    assert manifest.seeds == [1]
    assert manifest.extra["trials"] == 1
    assert manifest.extra["profiled_events"] > 0
    assert manifest.counters["updates_sent"] > 0

    rows = [
        json.loads(line)
        for line in (tmp_path / "metrics.jsonl").read_text().splitlines()
    ]
    kinds = {row["kind"] for row in rows}
    assert {"counter", "gauge", "histogram", "trial", "profile"} <= kinds

    with (tmp_path / "timeseries.csv").open() as fh:
        ts = list(csv.reader(fh))
    assert ts[0] == TIMESERIES_FIELDS
    assert len(ts) > 1

    with (tmp_path / "aggregates.csv").open() as fh:
        agg = list(csv.reader(fh))
    assert agg[0] == AGGREGATE_FIELDS
    assert len(agg) > 1

    assert "event-loop profile" in (tmp_path / "profile.txt").read_text()


def test_session_export_without_probe_or_profiler(tmp_path):
    obs = ObsSession()  # metrics only
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    run_experiment(skewed_topology(30, seed=3), spec, seed=1, obs=obs)
    written = obs.export(tmp_path)
    names = {p.name for p in written}
    assert "profile.txt" not in names
    # Empty CSVs still carry their header row.
    assert (tmp_path / "timeseries.csv").read_text().splitlines()[0]


def test_session_phase_labels_multi_trial():
    obs = ObsSession()
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    topo = skewed_topology(30, seed=3)
    run_experiment(topo, spec, seed=1, obs=obs)
    run_experiment(topo, spec, seed=2, obs=obs)
    labels = [p.name for p in obs.phases]
    assert labels[:3] == ["warmup", "failure", "convergence"]
    assert labels[3:] == ["warmup[1]", "failure[1]", "convergence[1]"]
    assert obs.trial_index == 1
