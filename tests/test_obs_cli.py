"""End-to-end tests for the CLI observability flags."""

import csv
import json

from repro.cli import main
from repro.obs.manifest import RunManifest
from repro.obs.session import active_session


def run_cli(tmp_path, *extra):
    argv = [
        "run",
        "--nodes", "20",
        "--mrai", "0.5",
        "--failure", "0.1",
        "--seed", "1",
        *extra,
    ]
    return main(argv)


def test_metrics_out_writes_artifacts(tmp_path, capsys):
    out = tmp_path / "out"
    code = run_cli(
        tmp_path,
        "--metrics-out", str(out),
        "--sample-interval", "0.5",
        "--profile",
    )
    captured = capsys.readouterr()
    assert code == 0
    for name in (
        "manifest.json",
        "metrics.jsonl",
        "timeseries.csv",
        "aggregates.csv",
        "profile.txt",
    ):
        assert (out / name).exists(), name
        assert f"wrote {out / name}" in captured.err
    assert "event-loop profile" in captured.out
    assert "wall clock" in captured.out

    manifest = RunManifest.load(out / "manifest.json")
    assert manifest.command == "run"
    assert [p.name for p in manifest.phases] == [
        "warmup", "failure", "convergence",
    ]
    assert manifest.seeds == [1]

    with (out / "timeseries.csv").open() as fh:
        rows = list(csv.reader(fh))
    assert len(rows) > 1  # header + samples

    metric_names = {
        json.loads(line).get("name")
        for line in (out / "metrics.jsonl").read_text().splitlines()
    }
    assert "updates_processed" in metric_names
    assert "updates_sent" in metric_names


def test_profile_without_metrics_out(capsys):
    code = main(
        ["run", "--nodes", "20", "--failure", "0.1", "--seed", "1", "--profile"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "event-loop profile" in captured.out
    assert "wrote" not in captured.err


def test_run_without_obs_flags_writes_nothing(tmp_path, capsys):
    code = run_cli(tmp_path)
    captured = capsys.readouterr()
    assert code == 0
    assert "event-loop profile" not in captured.out
    assert "wrote" not in captured.err
    assert list(tmp_path.iterdir()) == []


def test_trace_out_writes_complete_jsonl(tmp_path, capsys):
    """--trace-out must close the sink before the command returns, so the
    final line is never truncated."""
    trace = tmp_path / "trace.jsonl"
    code = run_cli(tmp_path, "--trace-out", str(trace))
    captured = capsys.readouterr()
    assert code == 0
    assert f"wrote {trace}" in captured.err
    assert "path exploration" in captured.out
    assert "settle times" in captured.out
    lines = trace.read_text().splitlines()
    assert lines
    for line in lines:  # every line parses: nothing was cut short
        json.loads(line)
    categories = {json.loads(line)["category"] for line in lines}
    assert categories == {"causality", "route_change"}


def test_trace_analyze_reports_on_cli_trace(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert run_cli(tmp_path, "--trace-out", str(trace)) == 0
    capsys.readouterr()
    code = main(["trace", "analyze", str(trace)])
    captured = capsys.readouterr()
    assert code == 0
    assert "causal trace analysis" in captured.out
    assert "failure-injection" in captured.out
    assert "paths explored" in captured.out


def test_trace_analyze_json_and_report_out(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert run_cli(tmp_path, "--trace-out", str(trace)) == 0
    capsys.readouterr()
    report_path = tmp_path / "report.json"
    code = main(
        ["trace", "analyze", str(trace), "--json", "--out", str(report_path)]
    )
    captured = capsys.readouterr()
    assert code == 0
    printed = json.loads(captured.out)
    saved = json.loads(report_path.read_text())
    assert printed == saved
    assert saved["causality"]["failure_roots"]
    assert saved["convergence"]["paths_explored_total"] >= 0


def test_trace_analyze_missing_file_fails_cleanly(tmp_path, capsys):
    code = main(["trace", "analyze", str(tmp_path / "nope.jsonl")])
    captured = capsys.readouterr()
    assert code == 2
    assert "cannot analyze" in captured.err


def test_sweep_with_metrics_out(tmp_path, capsys):
    out = tmp_path / "sweep-out"
    code = main(
        [
            "sweep",
            "--figure", "fig03",
            "--scale", "quick",
            "--metrics-out", str(out),
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert (out / "manifest.json").exists()
    manifest = RunManifest.load(out / "manifest.json")
    assert manifest.kind == "repro-sweep"
    assert manifest.extra["figure"] == "fig03"
    assert manifest.extra["trials"] > 1
    # Trial snapshots from deep inside the figure harness made it out
    # through the active-session mechanism.
    trials = [
        json.loads(line)
        for line in (out / "metrics.jsonl").read_text().splitlines()
        if json.loads(line).get("kind") == "trial"
    ]
    assert len(trials) == manifest.extra["trials"]
    # The observe() block restored the previous (empty) session state.
    assert active_session() is None
