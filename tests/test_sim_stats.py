"""Unit tests for online statistics."""

import math

import pytest

from repro.sim.stats import OnlineStats, SlidingWindowUtilization


def test_online_stats_empty():
    stats = OnlineStats()
    assert stats.n == 0
    assert stats.mean == 0.0
    assert stats.variance == 0.0
    assert stats.minimum == 0.0
    assert stats.maximum == 0.0


def test_online_stats_single_value():
    stats = OnlineStats()
    stats.add(5.0)
    assert stats.mean == 5.0
    assert stats.variance == 0.0
    assert stats.minimum == 5.0
    assert stats.maximum == 5.0


def test_online_stats_matches_closed_form():
    data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    stats = OnlineStats()
    stats.extend(data)
    mean = sum(data) / len(data)
    var = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
    assert stats.mean == pytest.approx(mean)
    assert stats.variance == pytest.approx(var)
    assert stats.stdev == pytest.approx(math.sqrt(var))
    assert stats.minimum == 2.0
    assert stats.maximum == 9.0


def test_confidence_interval_contains_mean():
    stats = OnlineStats()
    stats.extend([1.0, 2.0, 3.0, 4.0, 5.0])
    lo, hi = stats.confidence_interval95()
    assert lo < stats.mean < hi


def test_confidence_interval_degenerate_below_two_points():
    stats = OnlineStats()
    stats.add(3.0)
    assert stats.confidence_interval95() == (3.0, 3.0)


def test_merge_matches_single_stream():
    data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
    whole = OnlineStats()
    whole.extend(data)
    left, right = OnlineStats(), OnlineStats()
    left.extend(data[:3])
    right.extend(data[3:])
    merged = left.merge(right)
    assert merged.n == whole.n
    assert merged.mean == pytest.approx(whole.mean)
    assert merged.variance == pytest.approx(whole.variance)
    assert merged.minimum == whole.minimum
    assert merged.maximum == whole.maximum


def test_merge_leaves_operands_untouched():
    left, right = OnlineStats(), OnlineStats()
    left.extend([1.0, 2.0])
    right.extend([10.0])
    left.merge(right)
    assert left.n == 2
    assert right.n == 1
    assert left.maximum == 2.0


def test_merge_with_empty():
    stats = OnlineStats()
    stats.extend([1.0, 2.0, 3.0])
    empty = OnlineStats()
    for merged in (stats.merge(empty), empty.merge(stats)):
        assert merged.n == 3
        assert merged.mean == pytest.approx(2.0)
        assert merged.minimum == 1.0
        assert merged.maximum == 3.0
    both_empty = empty.merge(OnlineStats())
    assert both_empty.n == 0
    assert both_empty.mean == 0.0
    assert both_empty.minimum == 0.0


def test_utilization_empty_is_zero():
    util = SlidingWindowUtilization(window=1.0)
    assert util.utilization(10.0) == 0.0


def test_utilization_fully_busy():
    util = SlidingWindowUtilization(window=1.0)
    util.add_busy(9.0, 10.0)
    assert util.utilization(10.0) == pytest.approx(1.0)


def test_utilization_half_busy():
    util = SlidingWindowUtilization(window=2.0)
    util.add_busy(9.0, 10.0)
    assert util.utilization(10.0) == pytest.approx(0.5)


def test_utilization_evicts_old_intervals():
    util = SlidingWindowUtilization(window=1.0)
    util.add_busy(0.0, 0.5)
    assert util.utilization(10.0) == 0.0


def test_utilization_clips_interval_to_window():
    util = SlidingWindowUtilization(window=1.0)
    util.add_busy(8.0, 9.5)  # Only [9.0, 9.5] is inside the window at t=10.
    assert util.utilization(10.0) == pytest.approx(0.5)


def test_utilization_rejects_bad_interval():
    util = SlidingWindowUtilization(window=1.0)
    with pytest.raises(ValueError):
        util.add_busy(5.0, 4.0)


def test_utilization_rejects_bad_window():
    with pytest.raises(ValueError):
        SlidingWindowUtilization(window=0.0)


def test_utilization_clear():
    util = SlidingWindowUtilization(window=1.0)
    util.add_busy(9.0, 10.0)
    util.clear()
    assert util.utilization(10.0) == 0.0
