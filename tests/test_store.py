"""Tests for the persistent result store (repro.store.result_store).

Headline properties: put/get round-trips the full TrialResult; a
store-backed sweep is bit-identical to an uncached one whether the
trials come cold, warm, serial or from a process pool; and a store
created under another schema version refuses to open.
"""

import sqlite3

import pytest

from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import ExperimentSpec, run_trials
from repro.obs.session import ObsSession
from repro.store import (
    ResultStore,
    default_store,
    spec_fingerprint,
    spec_hash,
    use_store,
)
from repro.store.hashing import SCHEMA_VERSION
from repro.topology.skewed import skewed_topology

SEEDS = (1, 2, 3)


def factory(seed):
    return skewed_topology(24, seed=seed)


def spec_05():
    return ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)


def result_signature(result):
    """Every measured number, per trial (wall-clock fields excluded)."""
    return [
        (
            t.seed,
            t.convergence_delay,
            t.messages_sent,
            t.route_changes,
            t.events_executed,
        )
        for t in result.trials
    ]


@pytest.fixture()
def store(tmp_path):
    with ResultStore(tmp_path / "store.db") as s:
        yield s


def one_trial():
    result = run_trials(factory, spec_05(), (1,))
    return result.trials[0]


# ----------------------------------------------------------------------
# Round trip + provenance
# ----------------------------------------------------------------------
def test_put_get_roundtrip(store):
    trial = one_trial()
    key = spec_hash(spec_05(), factory(1), 1)
    assert store.get(key) is None
    assert key not in store

    store.put(key, trial, fingerprint=spec_fingerprint(spec_05(), factory(1), 1))
    assert store.has(key)
    assert key in store
    assert len(store) == 1

    cached = store.get(key)
    # TrialResult equality excludes wall-clock fields, so the cached
    # trial compares equal to a freshly simulated one.
    assert cached == trial
    assert store.hits == 1 and store.misses == 1


def test_provenance_records_writer(store):
    trial = one_trial()
    key = spec_hash(spec_05(), factory(1), 1)
    store.put(key, trial, fingerprint=spec_fingerprint(spec_05(), factory(1), 1))

    prov = store.provenance(key)
    assert prov["seed"] == trial.seed
    assert prov["run_id"] == store.run_id
    assert prov["schema_version"] == SCHEMA_VERSION
    assert prov["wall_seconds"] == trial.warmup_wall + trial.convergence_wall
    assert prov["fingerprint"]["schema"] == SCHEMA_VERSION
    assert store.provenance("no-such-key") is None
    assert store.banked_wall_seconds() == pytest.approx(prov["wall_seconds"])


def test_iter_trials_yields_stored_rows(store):
    trial = one_trial()
    key = spec_hash(spec_05(), factory(1), 1)
    store.put(key, trial)
    rows = list(store.iter_trials())
    assert rows == [(key, trial)]


def test_reopen_persists(tmp_path):
    path = tmp_path / "store.db"
    trial = one_trial()
    key = spec_hash(spec_05(), factory(1), 1)
    with ResultStore(path) as store:
        store.put(key, trial)
    with ResultStore(path) as store:
        assert store.get(key) == trial


def test_schema_version_mismatch_refused(tmp_path):
    path = tmp_path / "store.db"
    ResultStore(path).close()
    conn = sqlite3.connect(str(path))
    conn.execute(
        "UPDATE meta SET value=? WHERE key='schema_version'",
        (str(SCHEMA_VERSION + 1),),
    )
    conn.commit()
    conn.close()
    with pytest.raises(ValueError, match="schema version"):
        ResultStore(path)


def test_campaign_manifest_rows(store):
    first = store.record_campaign("demo", {"executed": 4})
    second = store.record_campaign("demo", {"executed": 0})
    store.record_campaign("other", {"executed": 1})
    assert second > first
    runs = list(store.iter_campaigns("demo"))
    assert [r["manifest"]["executed"] for r in runs] == [4, 0]
    assert len(list(store.iter_campaigns())) == 3


# ----------------------------------------------------------------------
# The default-store scope (sweep --store plumbing)
# ----------------------------------------------------------------------
def test_use_store_scopes_default(tmp_path):
    assert default_store() is None
    with use_store(tmp_path / "store.db") as store:
        assert default_store() is store
        with use_store(store) as inner:
            assert inner is store
        assert default_store() is store
    assert default_store() is None


def test_use_store_closes_only_what_it_opened(tmp_path):
    store = ResultStore(tmp_path / "store.db")
    with use_store(store):
        pass
    # Passed-in instance stays open ...
    assert len(store) == 0
    store.close()
    # ... while a path argument is closed on exit.
    with use_store(tmp_path / "other.db") as opened:
        pass
    with pytest.raises(sqlite3.ProgrammingError):
        len(opened)


# ----------------------------------------------------------------------
# run_trials caching: cold == warm, serial == parallel, bit for bit
# ----------------------------------------------------------------------
def test_cached_run_bitwise_identical(store):
    spec = spec_05()
    cold = run_trials(factory, spec, SEEDS, store=store)
    assert store.misses == len(SEEDS) and store.hits == 0
    assert len(store) == len(SEEDS)

    warm = run_trials(factory, spec, SEEDS, store=store)
    assert store.hits == len(SEEDS)
    assert len(store) == len(SEEDS)

    uncached = run_trials(factory, spec, SEEDS)
    assert result_signature(cold) == result_signature(warm)
    assert result_signature(cold) == result_signature(uncached)
    assert warm.mean_delay == uncached.mean_delay
    assert warm.mean_messages == uncached.mean_messages


def test_parallel_run_populates_and_hits_store(store):
    spec = spec_05()
    cold = run_trials(factory, spec, SEEDS, jobs=2, store=store)
    assert len(store) == len(SEEDS)
    warm = run_trials(factory, spec, SEEDS, jobs=2, store=store)
    assert store.hits == len(SEEDS)
    serial = run_trials(factory, spec, SEEDS)
    assert result_signature(cold) == result_signature(warm)
    assert result_signature(cold) == result_signature(serial)


def test_partial_cache_mixes_cached_and_fresh(store):
    spec = spec_05()
    run_trials(factory, spec, SEEDS[:2], store=store)
    assert len(store) == 2
    mixed = run_trials(factory, spec, SEEDS, store=store)
    assert len(store) == len(SEEDS)
    assert result_signature(mixed) == result_signature(
        run_trials(factory, spec, SEEDS)
    )


def test_default_store_reaches_run_trials(tmp_path):
    spec = spec_05()
    with use_store(tmp_path / "store.db") as store:
        run_trials(factory, spec, SEEDS)
        assert len(store) == len(SEEDS)
        run_trials(factory, spec, SEEDS)
        assert store.hits == len(SEEDS)


def test_obs_session_counts_cache_lookups(store):
    spec = spec_05()
    obs = ObsSession()
    run_trials(factory, spec, SEEDS, store=store, obs=obs)
    assert obs.cache_hits == 0 and obs.cache_misses == len(SEEDS)
    run_trials(factory, spec, SEEDS, store=store, obs=obs)
    assert obs.cache_hits == len(SEEDS)
    manifest = obs.finalize()
    assert manifest.extra["store_cache"] == {
        "hits": len(SEEDS),
        "misses": len(SEEDS),
    }
