"""Integration tests: full convergence cycles on generated topologies.

Every test warms up a real network, injects a failure, runs to quiescence
and validates the resulting routing state against the path-vector
invariants — across generators, schemes and failure types.
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.validation import validate_routing
from repro.failures.scenarios import geographic_failure, random_failure
from repro.topology.barabasi_albert import barabasi_albert_topology
from repro.topology.internet import internet_like_topology
from repro.topology.multirouter import MultiRouterSpec, multi_router_topology
from repro.topology.skewed import skewed_topology
from repro.topology.waxman import waxman_topology
from repro.sim.rng import RandomStreams


def cycle(topology, config=None, fraction=0.1, seed=1, scenario=None):
    """Warm up, fail, reconverge, validate.  Returns the network."""
    net = BGPNetwork(
        topology,
        config or BGPConfig(mrai_policy=ConstantMRAI(0.5)),
        seed=seed,
    )
    net.start()
    net.run_until_quiet(max_time=3600)
    assert net.is_quiescent()
    validate_routing(net)
    if scenario is None:
        scenario = geographic_failure(topology, fraction)
    net.fail_nodes(scenario.nodes)
    net.run_until_quiet(max_time=3600)
    assert net.is_quiescent()
    validate_routing(net)
    return net


@pytest.mark.parametrize(
    "generator",
    [
        lambda: skewed_topology(40, seed=2),
        lambda: internet_like_topology(40, seed=2),
        lambda: waxman_topology(30, seed=2),
        lambda: barabasi_albert_topology(30, seed=2),
    ],
)
def test_failure_cycle_across_generators(generator):
    cycle(generator())


def test_failure_cycle_multirouter():
    topo = multi_router_topology(MultiRouterSpec(num_ases=12), seed=3)
    cycle(topo)


@pytest.mark.parametrize("fraction", [0.05, 0.2, 0.5])
def test_failure_cycle_various_sizes(fraction):
    cycle(skewed_topology(40, seed=5), fraction=fraction)


def test_failure_cycle_random_scattered():
    topo = skewed_topology(40, seed=7)
    scenario = random_failure(topo, 0.15, RandomStreams(3).get("pick"))
    cycle(topo, scenario=scenario)


@pytest.mark.parametrize(
    "config",
    [
        BGPConfig(mrai_policy=ConstantMRAI(0.0)),
        BGPConfig(mrai_policy=ConstantMRAI(2.25)),
        BGPConfig(mrai_policy=DynamicMRAI()),
        BGPConfig(mrai_policy=ConstantMRAI(0.5), queue_discipline="dest_batch"),
        BGPConfig(mrai_policy=ConstantMRAI(0.5), queue_discipline="tcp_batch"),
        BGPConfig(mrai_policy=ConstantMRAI(0.5), per_destination_mrai=True),
        BGPConfig(mrai_policy=ConstantMRAI(0.5), withdrawal_rate_limiting=True),
        BGPConfig(
            mrai_policy=ConstantMRAI(0.5), sender_side_loop_detection=False
        ),
        BGPConfig(
            mrai_policy=DynamicMRAI(), queue_discipline="dest_batch"
        ),
        BGPConfig(
            mrai_policy=ConstantMRAI(0.5), processing_delay_range=(0.0, 0.0)
        ),
    ],
    ids=[
        "mrai0",
        "mrai2.25",
        "dynamic",
        "dest_batch",
        "tcp_batch",
        "per_dest_mrai",
        "wrate",
        "no_sender_side",
        "batch+dynamic",
        "no_processing",
    ],
)
def test_failure_cycle_across_configs(config):
    cycle(skewed_topology(36, seed=4), config=config)


def test_successive_failures():
    """Two failure waves, validating after each."""
    topo = skewed_topology(40, seed=9)
    net = cycle(topo, fraction=0.1)
    # Second wave hits another region.
    survivors = [n for n in topo.node_ids() if net.speakers[n].alive]
    second = set(survivors[:4])
    net.fail_nodes(second)
    net.run_until_quiet(max_time=3600)
    validate_routing(net)


def test_all_schemes_agree_on_final_reachability():
    """Routing outcomes (who reaches whom) are scheme-independent."""
    topo = skewed_topology(36, seed=11)
    outcomes = []
    for config in (
        BGPConfig(mrai_policy=ConstantMRAI(0.5)),
        BGPConfig(mrai_policy=ConstantMRAI(2.25)),
        BGPConfig(mrai_policy=DynamicMRAI()),
        BGPConfig(mrai_policy=ConstantMRAI(0.5), queue_discipline="dest_batch"),
    ):
        net = cycle(topo, config=config, fraction=0.15)
        outcomes.append(
            {
                n: frozenset(s.loc_rib.destinations())
                for n, s in net.speakers.items()
                if s.alive
            }
        )
    assert all(o == outcomes[0] for o in outcomes[1:])


def test_large_failure_half_the_network():
    cycle(skewed_topology(30, seed=13), fraction=0.5)
