"""Tests for the convergence timeline, path-exploration analytics and the
trace-analysis report — including the trajectory-neutrality guarantees the
golden regression suite relies on."""

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.analysis.convergence import (
    ConvergenceTimeline,
    analyze_trace,
    analyze_trace_file,
    render_report,
)
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.obs.session import ObsSession
from repro.sim.timers import Jitter
from repro.sim.trace import JsonlSink, Tracer
from repro.topology.skewed import skewed_topology
from tests.conftest import clique_topology, line_topology


def traced_run(topology, fail_node):
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    tracer = Tracer()
    net = BGPNetwork(topology, config, seed=1, tracer=tracer)
    net.start()
    net.run_until_quiet()
    t0 = net.fail_nodes([fail_node])
    net.run_until_quiet()
    return net, tracer, t0


# ----------------------------------------------------------------------
# Golden small scenarios
# ----------------------------------------------------------------------
def test_line_failure_explores_no_paths():
    """A dead-end line failure is pure withdrawal: zero path exploration."""
    net, tracer, t0 = traced_run(line_topology(4), 3)
    timeline = ConvergenceTimeline.from_records(tracer.records)
    assert timeline.t0 == t0
    # Nodes 0, 1, 2 each lose dest 3 with no alternative.
    assert set(timeline.histories) == {(0, 3), (1, 3), (2, 3)}
    assert timeline.total_paths_explored() == 0
    assert timeline.exploration_histogram() == {0: 3}
    assert all(
        h.final_path is None for h in timeline.histories.values()
    )
    assert set(timeline.settle_times()) == {3}


def test_clique_failure_explores_stored_backups():
    """A 4-clique failure walks the classic transient-path sequence."""
    net, tracer, t0 = traced_run(clique_topology(4), 0)
    timeline = ConvergenceTimeline.from_records(tracer.records)
    # The three survivors each explore backup paths for dest 0 before
    # concluding it is unreachable.
    assert set(timeline.histories) == {(1, 0), (2, 0), (3, 0)}
    assert timeline.total_paths_explored() == 11
    assert timeline.exploration_histogram() == {3: 1, 4: 2}
    assert timeline.max_exploration() == 4
    assert all(
        h.final_path is None for h in timeline.histories.values()
    )
    stats = timeline.settle_stats()
    assert 0.0 < stats["p50"] <= stats["p95"] <= stats["max"]


def test_settle_timeline_measures_from_t0():
    net, tracer, t0 = traced_run(clique_topology(4), 0)
    timeline = ConvergenceTimeline.from_records(tracer.records)
    ordering = timeline.destination_timeline()
    assert ordering == sorted(ordering, key=lambda kv: kv[1])
    assert all(settle >= 0.0 for _, settle in ordering)
    # Settling never outlasts the measured convergence window.
    assert max(s for _, s in ordering) <= net.last_activity - t0 + 1e-9


def test_explicit_t0_overrides_detection():
    net, tracer, t0 = traced_run(clique_topology(4), 0)
    # Analyzing from t=0 counts the warm-up churn too.
    full = ConvergenceTimeline.from_records(tracer.records, t0=0.0)
    post = ConvergenceTimeline.from_records(tracer.records)
    assert len(full) > len(post)
    assert full.t0 == 0.0


def test_timeline_jsonl_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    with JsonlSink(path) as sink:
        tracer = Tracer(sink=sink)
        net = BGPNetwork(clique_topology(4), config, seed=1, tracer=tracer)
        net.start()
        net.run_until_quiet()
        net.fail_nodes([0])
        net.run_until_quiet()
    assert (
        ConvergenceTimeline.from_jsonl(path).summary()
        == ConvergenceTimeline.from_records(tracer.records).summary()
    )
    report = analyze_trace_file(path)
    assert report == analyze_trace(tracer.records)


def test_report_structure_and_rendering():
    net, tracer, _ = traced_run(clique_topology(4), 0)
    report = analyze_trace(tracer.records)
    assert report["causality"]["failure_roots"][0]["scope"] == [0]
    assert report["convergence"]["paths_explored_total"] == 11
    text = render_report(report)
    assert "causal trace analysis" in text
    assert "FAILURE" in text
    assert "paths explored" in text
    assert "slowest destinations" in text


# ----------------------------------------------------------------------
# The explanatory claim: dynamic MRAI shrinks path exploration
# ----------------------------------------------------------------------
def test_dynamic_mrai_explores_fewer_paths_than_static():
    """Same topology, same seed: the dynamic scheme must settle on fewer
    distinct transient paths than constant-0.5 — the mechanism behind the
    fig07 delay gap."""
    totals = {}
    for label, mrai in (
        ("static", ConstantMRAI(0.5)),
        ("dynamic", DynamicMRAI()),
    ):
        obs = ObsSession(trace=True)
        spec = ExperimentSpec(mrai=mrai, failure_fraction=0.1)
        run_experiment(skewed_topology(40, seed=3), spec, seed=1, obs=obs)
        totals[label] = obs.last_exploration["paths_explored_total"]
    assert totals["dynamic"] < totals["static"]


# ----------------------------------------------------------------------
# Trajectory neutrality (the golden-regression guarantee)
# ----------------------------------------------------------------------
def test_tracing_keeps_golden_counters_identical():
    """The zero-service 5-clique warm-up from test_regression_golden must
    produce byte-identical counters with causal tracing enabled."""
    config = BGPConfig(
        mrai_policy=ConstantMRAI(1.0),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )

    def outcome(tracer):
        net = BGPNetwork(clique_topology(5), config, seed=1, tracer=tracer)
        net.start()
        net.run_until_quiet()
        return (
            net.counters.snapshot(),
            net.total_loc_rib_routes(),
            net.last_activity,
            net.sim.events_executed,
        )

    untraced = outcome(None)
    traced = outcome(Tracer())
    assert untraced == traced
    assert untraced[0]["updates_sent"] == 80
    assert untraced[0]["route_changes"] == 25


def test_traced_experiment_equals_untraced_experiment():
    """Full run_experiment equality: tracing must not perturb the
    trajectory (delay, messages, events) on a realistic topology."""
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    plain = run_experiment(skewed_topology(30, seed=7), spec, seed=3)
    obs = ObsSession(trace=True)
    traced = run_experiment(
        skewed_topology(30, seed=7), spec, seed=3, obs=obs
    )
    assert plain == traced
    assert obs.last_exploration is not None
    assert obs.last_exploration["trace_dropped"] == 0
