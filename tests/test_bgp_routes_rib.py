"""Unit tests for routes, route comparison and the RIBs."""

import pytest

from repro.bgp.rib import AdjRibIn, LocRib, run_decision
from repro.bgp.routes import Route, local_route


# ---------------------------------------------------------------------------
# Route preference
# ---------------------------------------------------------------------------
def test_shorter_path_preferred():
    short = Route(1, (2, 1), peer=5)
    long = Route(1, (3, 4, 1), peer=6)
    assert short.better_than(long)
    assert not long.better_than(short)


def test_local_route_beats_learned():
    local = local_route(1)
    learned = Route(1, (2,), peer=5)
    assert local.better_than(learned)
    assert local.is_local
    assert local.path_length == 0


def test_ebgp_preferred_over_ibgp_on_equal_length():
    ebgp = Route(1, (2, 1), peer=9, ebgp=True)
    ibgp = Route(1, (3, 1), peer=5, ebgp=False)
    assert ebgp.better_than(ibgp)


def test_lowest_peer_breaks_full_ties():
    a = Route(1, (2, 1), peer=3)
    b = Route(1, (4, 1), peer=7)
    assert a.better_than(b)


def test_better_than_none():
    assert Route(1, (2,), peer=3).better_than(None)


def test_same_selection():
    a = Route(1, (2, 1), peer=3)
    b = Route(1, (2, 1), peer=3)
    c = Route(1, (2, 1), peer=4)
    assert a.same_selection(b)
    assert not a.same_selection(c)
    assert not a.same_selection(None)


def test_contains_as():
    route = Route(1, (2, 3, 4), peer=9)
    assert route.contains_as(3)
    assert not route.contains_as(9)


# ---------------------------------------------------------------------------
# Adj-RIB-In
# ---------------------------------------------------------------------------
def test_adj_rib_in_store_and_replace():
    rib = AdjRibIn()
    rib.store(Route(1, (2,), peer=5))
    rib.store(Route(1, (3, 2), peer=5))  # same peer: replaces
    assert rib.get(1, 5).path == (3, 2)
    assert rib.route_count() == 1


def test_adj_rib_in_rejects_local_routes():
    rib = AdjRibIn()
    with pytest.raises(ValueError):
        rib.store(local_route(1))


def test_adj_rib_in_withdraw():
    rib = AdjRibIn()
    rib.store(Route(1, (2,), peer=5))
    assert rib.withdraw(1, 5)
    assert not rib.withdraw(1, 5)  # already gone
    assert rib.get(1, 5) is None
    assert rib.destinations() == set()


def test_adj_rib_in_drop_peer():
    rib = AdjRibIn()
    rib.store(Route(1, (2,), peer=5))
    rib.store(Route(2, (3,), peer=5))
    rib.store(Route(1, (4,), peer=6))
    affected = rib.drop_peer(5)
    assert sorted(affected) == [1, 2]
    assert rib.get(1, 6) is not None
    assert rib.route_count() == 1


def test_adj_rib_in_candidates():
    rib = AdjRibIn()
    rib.store(Route(1, (2,), peer=5))
    rib.store(Route(1, (3,), peer=6))
    assert len(list(rib.candidates(1))) == 2
    assert list(rib.candidates(99)) == []


# ---------------------------------------------------------------------------
# Loc-RIB
# ---------------------------------------------------------------------------
def test_loc_rib_set_get_delete():
    rib = LocRib()
    route = Route(1, (2,), peer=5)
    rib.set(1, route)
    assert rib.get(1) is route
    assert len(rib) == 1
    rib.set(1, None)
    assert rib.get(1) is None
    assert len(rib) == 0


# ---------------------------------------------------------------------------
# Decision process
# ---------------------------------------------------------------------------
def test_decision_picks_best_candidate():
    rib = AdjRibIn()
    rib.store(Route(1, (2, 3, 1), peer=5))
    rib.store(Route(1, (4, 1), peer=6))
    best = run_decision(rib, 1, own_prefixes=set())
    assert best.peer == 6


def test_decision_prefers_local_origin():
    rib = AdjRibIn()
    rib.store(Route(1, (2,), peer=5))
    best = run_decision(rib, 1, own_prefixes={1})
    assert best.is_local


def test_decision_none_when_no_candidates():
    assert run_decision(AdjRibIn(), 1, own_prefixes=set()) is None
