"""Tests for the failure-extent-adaptive MRAI (the future-work scheme)."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.core.adaptive import (
    PAPER_CALIBRATION,
    AdaptiveExtentMRAI,
    FailureExtentController,
)
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.topology.skewed import skewed_topology


def make_controller(**kwargs):
    defaults = dict(
        calibration=PAPER_CALIBRATION, window=5.0, total_destinations=100
    )
    defaults.update(kwargs)
    return FailureExtentController(**defaults)


def test_starts_at_lowest_level():
    ctl = make_controller()
    assert ctl.value() == 0.5
    assert ctl.extent(now=0.0) == 0.0


def test_extent_counts_distinct_destinations():
    ctl = make_controller()
    for dest in (1, 2, 3, 2, 1):
        ctl.on_destination_changed(dest, now=1.0)
    assert ctl.extent(now=1.0) == pytest.approx(0.03)


def test_value_steps_with_extent():
    ctl = make_controller()
    # 5 distinct destinations = 5% extent -> middle level (>= 4%).
    for dest in range(5):
        ctl.on_destination_changed(dest, now=1.0)
    assert ctl.value() == 1.25
    # 10 distinct = 10% -> top level (>= 8%).
    for dest in range(5, 10):
        ctl.on_destination_changed(dest, now=1.0)
    assert ctl.value() == 2.25


def test_extent_decays_with_window():
    ctl = make_controller(window=2.0)
    for dest in range(10):
        ctl.on_destination_changed(dest, now=1.0)
    assert ctl.value() == 2.25
    # The churn ages out: back to the base level.
    ctl.on_destination_changed(99, now=10.0)
    assert ctl.extent(now=10.0) == pytest.approx(0.01)
    assert ctl.value() == 0.5


def test_same_destination_reappearing_keeps_single_count():
    ctl = make_controller(window=10.0)
    for t in (1.0, 2.0, 3.0):
        ctl.on_destination_changed(7, now=t)
    assert ctl.extent(now=3.0) == pytest.approx(0.01)


def test_controller_validation():
    with pytest.raises(ValueError):
        make_controller(calibration=())
    with pytest.raises(ValueError):
        make_controller(calibration=((0.05, 0.5),))  # must start at 0.0
    with pytest.raises(ValueError):
        make_controller(calibration=((0.0, 0.5), (0.5, 1.0), (0.2, 2.0)))
    with pytest.raises(ValueError):
        make_controller(window=0.0)
    with pytest.raises(ValueError):
        make_controller(total_destinations=0)


def test_policy_builds_per_node_controllers():
    policy = AdaptiveExtentMRAI(total_destinations=60)
    a = policy.controller_for(0, 3)
    b = policy.controller_for(1, 8)
    assert a is not b
    assert isinstance(a, FailureExtentController)
    assert "adaptive-extent" in policy.name


def test_adaptive_beats_constant_low_for_large_failure():
    """End to end: the adaptive scheme fixes the large-failure meltdown."""
    topo = skewed_topology(60, seed=3)
    constant = run_experiment(
        topo,
        ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.2),
        seed=1,
    )
    adaptive = run_experiment(
        topo,
        ExperimentSpec(
            mrai=AdaptiveExtentMRAI(total_destinations=60),
            failure_fraction=0.2,
            validate=True,
        ),
        seed=1,
    )
    assert adaptive.convergence_delay < constant.convergence_delay
    assert adaptive.messages_sent < constant.messages_sent


def test_adaptive_converges_for_small_failures():
    topo = skewed_topology(60, seed=3)
    result = run_experiment(
        topo,
        ExperimentSpec(
            mrai=AdaptiveExtentMRAI(total_destinations=60),
            failure_fraction=1.0 / 60.0,
            validate=True,
        ),
        seed=1,
    )
    assert not result.truncated
