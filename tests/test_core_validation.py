"""Tests for routing-correctness validation."""

import pytest

from repro.bgp.routes import Route
from repro.core.validation import (
    RoutingViolation,
    count_invalid_routes,
    reachable_prefixes,
    validate_routing,
)
from tests.conftest import (
    clique_topology,
    converged_network,
    line_topology,
    ring_topology,
)


def test_validate_accepts_converged_network():
    net = converged_network(ring_topology(6))
    validate_routing(net)


def test_validate_accepts_post_failure_state():
    net = converged_network(clique_topology(5))
    net.fail_nodes([0])
    net.run_until_quiet()
    validate_routing(net)


def test_validate_accepts_partitioned_network():
    net = converged_network(line_topology(5))
    net.fail_nodes([2])
    net.run_until_quiet()
    validate_routing(net)


def test_validate_requires_quiescence():
    net = converged_network(line_topology(3))
    net.sim.schedule(1.0, lambda: None)
    with pytest.raises(RoutingViolation):
        validate_routing(net)


def test_validate_detects_missing_route():
    net = converged_network(ring_topology(5))
    net.speakers[0].loc_rib.set(2, None)
    with pytest.raises(RoutingViolation, match="no route"):
        validate_routing(net)


def test_validate_detects_route_to_dead_prefix():
    net = converged_network(ring_topology(5))
    net.fail_nodes([3])
    net.run_until_quiet()
    # Manually resurrect a stale route to the dead prefix.
    net.speakers[0].loc_rib.set(3, Route(3, (4, 3), peer=4))
    with pytest.raises(RoutingViolation):
        validate_routing(net)


def test_validate_detects_looped_path():
    net = converged_network(ring_topology(5))
    net.speakers[0].loc_rib.set(2, Route(2, (1, 1), peer=1))
    with pytest.raises(RoutingViolation):
        validate_routing(net)


def test_validate_detects_own_as_in_path():
    net = converged_network(ring_topology(5))
    net.speakers[0].loc_rib.set(2, Route(2, (1, 0, 2), peer=1))
    with pytest.raises(RoutingViolation):
        validate_routing(net)


def test_validate_detects_route_via_dead_session():
    net = converged_network(ring_topology(5))
    net.speakers[0].loc_rib.set(2, Route(2, (9, 2), peer=9))
    with pytest.raises(RoutingViolation):
        validate_routing(net)


def test_validate_detects_unrealizable_path():
    net = converged_network(ring_topology(5))
    # Node 0's neighbors are 1 and 4; path (1, 3) skips a hop (1-3 is not
    # a link on the 5-ring).
    net.speakers[0].loc_rib.set(3, Route(3, (1, 3), peer=1))
    with pytest.raises(RoutingViolation, match="unrealizable|no route|loop"):
        validate_routing(net)


def test_reachable_prefixes_full_and_partitioned():
    net = converged_network(line_topology(4))
    assert reachable_prefixes(net, 0) == {0, 1, 2, 3}
    net.fail_nodes([2])
    net.run_until_quiet()
    assert reachable_prefixes(net, 0) == {0, 1}
    assert reachable_prefixes(net, 3) == {3}
    assert reachable_prefixes(net, 2) == set()  # dead node


def test_count_invalid_routes_zero_after_convergence():
    net = converged_network(clique_topology(5))
    net.fail_nodes([0])
    net.run_until_quiet()
    assert count_invalid_routes(net) == 0


def test_count_invalid_routes_detects_stale_path():
    net = converged_network(clique_topology(5))
    net.fail_nodes([0])
    net.run_until_quiet()
    net.speakers[1].loc_rib.set(2, Route(2, (0, 2), peer=3))
    assert count_invalid_routes(net) == 1
