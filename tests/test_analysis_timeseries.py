"""Tests for the convergence-timeline probe."""

import pytest

from repro.analysis.timeseries import Probe, Sample, sparkline
from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.core.dynamic_mrai import DynamicMRAI
from repro.topology.skewed import skewed_topology
from tests.conftest import converged_network, ring_topology


def test_probe_records_samples_until_quiescence():
    net = BGPNetwork(
        ring_topology(6), BGPConfig(mrai_policy=ConstantMRAI(0.5)), seed=1
    )
    net.start()
    probe = Probe(net, interval=0.1)
    probe.start()
    net.run_until_quiet()
    assert len(probe.samples) >= 2
    times = [s.time for s in probe.samples]
    assert times == sorted(times)
    # The probe detached: no events left.
    assert net.sim.pending_events == 0


def test_probe_observes_queue_buildup_under_failure():
    net = converged_network(skewed_topology(40, seed=3), mrai=0.25)
    probe = Probe(net, interval=0.1)
    probe.start()
    net.fail_nodes(set(net.topology.nodes_by_distance(500, 500)[:8]))
    net.run_until_quiet()
    assert probe.peak("total_queued") > 0
    assert probe.peak("max_queue") > 0
    # Eventually drains.
    assert probe.samples[-1].total_queued == 0


def test_probe_tracks_invalid_routes_spike_and_decay():
    net = converged_network(skewed_topology(40, seed=3), mrai=0.25)
    probe = Probe(net, interval=0.1)
    probe.start()
    net.fail_nodes(set(net.topology.nodes_by_distance(500, 500)[:8]))
    net.run_until_quiet()
    invalid = probe.series("invalid_routes")
    assert max(invalid) > 0          # transient invalid routes existed
    assert invalid[-1] == 0          # and were all cleaned up


def test_probe_tracks_dynamic_mrai_levels():
    net = BGPNetwork(
        skewed_topology(40, seed=3),
        BGPConfig(mrai_policy=DynamicMRAI()),
        seed=1,
    )
    net.start()
    net.run_until_quiet()
    probe = Probe(net, interval=0.1, track_invalid_routes=False)
    probe.start()
    net.fail_nodes(set(net.topology.nodes_by_distance(500, 500)[:8]))
    net.run_until_quiet()
    seen_levels = set()
    for sample in probe.samples:
        seen_levels.update(sample.mrai_levels)
    assert 0 in seen_levels
    assert len(seen_levels) >= 2  # someone climbed the ladder


def test_probe_stop_is_idempotent_and_start_once():
    net = converged_network(ring_topology(4))
    probe = Probe(net, interval=0.5)
    probe.start()
    probe.start()
    probe.stop()
    probe.stop()


def test_probe_validation():
    net = converged_network(ring_topology(4))
    with pytest.raises(ValueError):
        Probe(net, interval=0.0)


def test_time_to_drain():
    net = converged_network(skewed_topology(40, seed=3), mrai=0.25)
    probe = Probe(net, interval=0.1, track_invalid_routes=False)
    probe.start()
    net.fail_nodes(set(net.topology.nodes_by_distance(500, 500)[:8]))
    net.run_until_quiet()
    drain = probe.time_to_drain("total_queued")
    assert drain is not None
    assert drain > 0


def test_sample_is_frozen():
    sample = Sample(0.0, 0, 0, None, 0, 0, 0)
    with pytest.raises(AttributeError):
        sample.time = 1.0


def test_sparkline_rendering():
    assert sparkline([]) == ""
    line = sparkline([0, 1, 2, 4, 8])
    assert len(line) == 5
    assert line[0] == " "
    assert line[-1] == "█"
    # Downsampling caps the width.
    assert len(sparkline(list(range(500)), width=50)) == 50
