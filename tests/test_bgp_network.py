"""Tests for network assembly and failure injection."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.core.dynamic_mrai import DynamicMRAI
from tests.conftest import (
    clique_topology,
    converged_network,
    line_topology,
    ring_topology,
)


def test_one_speaker_per_router():
    topo = ring_topology(5)
    net = BGPNetwork(topo)
    assert set(net.speakers) == set(topo.node_ids())
    for node_id, speaker in net.speakers.items():
        assert speaker.asn == topo.as_of(node_id)
        assert speaker.degree == topo.degree(node_id)


def test_sessions_mirror_links():
    topo = line_topology(3)
    net = BGPNetwork(topo)
    assert set(net.speakers[1].peers) == {0, 2}
    assert set(net.speakers[0].peers) == {1}
    for ps in net.speakers[1].peers.values():
        assert ps.ebgp
        assert ps.delay == pytest.approx(0.025)


def test_controller_assigned_by_degree():
    topo = clique_topology(4)
    from repro.core.degree_mrai import DegreeDependentMRAI

    config = BGPConfig(mrai_policy=DegreeDependentMRAI(0.5, 2.25, 3))
    net = BGPNetwork(topo, config)
    # All clique nodes have degree 3 -> high MRAI.
    for speaker in net.speakers.values():
        assert speaker.controller.value() == 2.25


def test_start_originates_every_prefix():
    net = BGPNetwork(line_topology(3))
    net.start()
    for speaker in net.speakers.values():
        assert speaker.asn in speaker.own_prefixes


def test_alive_prefixes_track_failures():
    net = converged_network(line_topology(4))
    assert net.alive_prefixes() == {0, 1, 2, 3}
    net.fail_nodes([0, 1])
    assert net.alive_prefixes() == {2, 3}
    assert net.failed_nodes == {0, 1}


def test_fail_nodes_returns_t0_and_is_idempotent():
    net = converged_network(line_topology(4))
    t0 = net.fail_nodes([3])
    assert t0 == net.sim.now
    net.fail_nodes([3])  # idempotent
    assert net.failed_nodes == {3}


def test_fail_link_isolates_segment():
    net = converged_network(line_topology(4))
    net.fail_link(1, 2)
    net.run_until_quiet()
    # 0 and 1 can no longer reach 2 and 3.
    assert net.speakers[0].loc_rib.destinations() == {0, 1}
    assert net.speakers[3].loc_rib.destinations() == {2, 3}
    # Everyone is still alive.
    assert len(net.alive_speakers()) == 4


def test_partition_by_node_failure():
    net = converged_network(line_topology(5))
    net.fail_nodes([2])
    net.run_until_quiet()
    assert net.speakers[0].loc_rib.destinations() == {0, 1}
    assert net.speakers[4].loc_rib.destinations() == {3, 4}


def test_network_counters_accumulate():
    net = converged_network(ring_topology(5))
    assert net.counters["updates_sent"] > 0
    assert net.counters["route_changes"] > 0


def test_is_quiescent_during_activity():
    net = BGPNetwork(line_topology(3))
    net.start()
    assert not net.is_quiescent()  # messages in flight
    net.run_until_quiet()
    assert net.is_quiescent()


def test_total_loc_rib_routes():
    net = converged_network(ring_topology(4))
    assert net.total_loc_rib_routes() == 16
    net.fail_nodes([0])
    net.run_until_quiet()
    assert net.total_loc_rib_routes() == 9


def test_last_activity_monotone():
    net = BGPNetwork(line_topology(3))
    net.start()
    checkpoints = []
    net.run_until_quiet(max_time=0.01)
    checkpoints.append(net.last_activity)
    net.run_until_quiet()
    checkpoints.append(net.last_activity)
    assert checkpoints[0] <= checkpoints[1]


def test_dynamic_policy_gives_each_node_its_own_controller():
    config = BGPConfig(mrai_policy=DynamicMRAI())
    net = BGPNetwork(ring_topology(4), config)
    controllers = [s.controller for s in net.speakers.values()]
    assert len(set(map(id, controllers))) == 4


def test_deterministic_replay():
    def run():
        net = converged_network(ring_topology(6), seed=7)
        net.fail_nodes([0])
        net.run_until_quiet()
        return (
            net.counters.snapshot(),
            net.last_activity,
            {
                n: {d: r.path for d, r in s.loc_rib.items()}
                for n, s in net.speakers.items()
                if s.alive
            },
        )

    assert run() == run()


def test_different_seed_changes_timing_but_not_outcome():
    def run(seed):
        net = converged_network(ring_topology(6), seed=seed)
        net.fail_nodes([0])
        net.run_until_quiet()
        return net.last_activity, {
            n: s.loc_rib.destinations()
            for n, s in net.speakers.items()
            if s.alive
        }

    t1, ribs1 = run(1)
    t2, ribs2 = run(2)
    assert ribs1 == ribs2  # same reachability outcome
    assert t1 != t2  # different stochastic timing
