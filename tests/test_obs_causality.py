"""Tests for causal update tracing and the CausalGraph builder."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.obs.causality import CausalGraph, load_trace
from repro.sim.timers import Jitter
from repro.sim.trace import JsonlSink, Tracer
from tests.conftest import clique_topology, line_topology


def traced_run(topology, fail_node, mrai=0.5):
    """Warm up, fail one node, run to quiescence; return (net, tracer, t0)."""
    config = BGPConfig(
        mrai_policy=ConstantMRAI(mrai),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    tracer = Tracer()
    net = BGPNetwork(topology, config, seed=1, tracer=tracer)
    net.start()
    net.run_until_quiet()
    t0 = net.fail_nodes([fail_node])
    net.run_until_quiet()
    return net, tracer, t0


def test_line_failure_has_single_failure_root():
    net, tracer, t0 = traced_run(line_topology(4), 3)
    graph = CausalGraph.from_records(tracer.records)
    roots = graph.failure_roots
    assert len(roots) == 1
    root = roots[0]
    assert root.kind == "failure"
    assert root.payload == (3,)
    assert root.time == t0
    # Every update sent after the failure chains back to that root.
    post = [e for e in graph.sends if e.time >= t0]
    assert post, "the failure must generate traffic"
    for event in post:
        assert graph.chain(event.uid)[0].uid == root.uid
    assert graph.cascade_size(root.uid) == len(post)


def test_line_warmup_roots_are_originations():
    net, tracer, _ = traced_run(line_topology(4), 3)
    graph = CausalGraph.from_records(tracer.records)
    # Line 0-1-2-3: origination sends 1+2+2+1 = 6, plus the failure root.
    origination_roots = [r for r in graph.roots if r.kind == "send"]
    assert len(origination_roots) == 6
    assert all(r.cause_uid == -1 for r in origination_roots)
    assert len(graph.roots) == 7


def test_clique_failure_cascade_matches_message_count():
    net, tracer, t0 = traced_run(clique_topology(4), 0)
    graph = CausalGraph.from_records(tracer.records)
    assert len(graph.failure_roots) == 1
    root = graph.failure_roots[0]
    assert root.payload == (0,)
    post = [e for e in graph.sends if e.time >= t0]
    assert graph.cascade_size(root.uid) == len(post) == 15
    # The whole trace agrees with the legacy counter.
    assert len(graph.sends) == net.counters["updates_sent"]


def test_uids_are_unique_and_monotonic():
    net, tracer, _ = traced_run(clique_topology(4), 0)
    uids = [
        r.detail[1] for r in tracer.records if r.category == "causality"
    ]
    assert uids == sorted(uids)
    assert len(uids) == len(set(uids))


def test_causes_always_precede_effects():
    net, tracer, _ = traced_run(clique_topology(5), 0)
    graph = CausalGraph.from_records(tracer.records)
    for event in graph.events.values():
        if event.cause_uid in graph.events:
            assert event.cause_uid < event.uid
            assert graph.events[event.cause_uid].time <= event.time


def test_depths_and_histograms():
    net, tracer, _ = traced_run(clique_topology(4), 0)
    graph = CausalGraph.from_records(tracer.records)
    depths = graph.depths()
    assert all(depths[r.uid] == 0 for r in graph.roots)
    histogram = graph.depth_histogram()
    assert sum(histogram.values()) == len(graph)
    assert max(histogram) == graph.summary()["max_chain_depth"]
    width = graph.width_histogram()
    assert sum(width.values()) == len(graph)
    # Edge count consistency: every non-root contributes one edge.
    edges = sum(count * w for w, count in width.items())
    assert edges == len(graph) - len(graph.roots)


def test_longest_chain_is_rooted_and_ordered():
    net, tracer, t0 = traced_run(clique_topology(5), 0)
    graph = CausalGraph.from_records(tracer.records)
    chains = graph.longest_chains(2)
    assert len(chains) == 2
    deepest = chains[0]
    assert len(deepest) - 1 == graph.summary()["max_chain_depth"]
    assert deepest[0].cause_uid == -1
    for parent, child in zip(deepest, deepest[1:]):
        assert child.cause_uid == parent.uid


def test_wasted_updates_counts_superseded_sends():
    net, tracer, _ = traced_run(clique_topology(4), 0)
    graph = CausalGraph.from_records(tracer.records)
    wasted = graph.wasted_updates()
    sends = graph.sends
    final = len(
        {(e.node, e.peer, e.dest) for e in sends}
    )
    assert sum(wasted.values()) == len(sends) - final


def test_amplification_identifies_fanout():
    net, tracer, _ = traced_run(clique_topology(4), 0)
    graph = CausalGraph.from_records(tracer.records)
    factors = graph.amplification()
    assert set(factors) <= {0, 1, 2, 3}
    assert all(f >= 1.0 for f in factors.values())
    top = graph.top_amplifiers(2)
    assert len(top) == 2
    assert top[0][1] >= top[1][1]


def test_jsonl_round_trip_preserves_the_graph(tmp_path):
    path = tmp_path / "trace.jsonl"
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    with JsonlSink(path) as sink:
        tracer = Tracer(sink=sink)
        net = BGPNetwork(clique_topology(4), config, seed=1, tracer=tracer)
        net.start()
        net.run_until_quiet()
        net.fail_nodes([0])
        net.run_until_quiet()
    in_memory = CausalGraph.from_records(tracer.records)
    from_file = CausalGraph.from_jsonl(path)
    assert from_file.summary() == in_memory.summary()
    # AS paths survived the JSON round trip as tuples.
    sample = max(from_file.sends, key=lambda e: e.uid)
    twin = in_memory.events[sample.uid]
    assert sample.payload == twin.payload


def test_load_trace_rejects_truncated_line(tmp_path):
    path = tmp_path / "broken.jsonl"
    path.write_text('{"time": 1.0, "category": "causality"}\n{"time": 2.')
    with pytest.raises(ValueError, match="malformed"):
        load_trace(path)


def test_untraced_messages_carry_no_uids():
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    seen = []
    net = BGPNetwork(line_topology(3), config, seed=1)
    original = net.transmit

    def spy(sender_id, receiver_id, msg, delay):
        seen.append((msg.uid, msg.cause_uid))
        original(sender_id, receiver_id, msg, delay)

    net.transmit = spy
    net.start()
    net.run_until_quiet()
    assert seen
    assert all(pair == (-1, -1) for pair in seen)
    assert net._next_uid == 0
