"""Table-driven tests of the advertisement export rules.

``BGPSpeaker.export_route`` encodes the interaction of AS prepending,
iBGP non-reflection, sender-side loop suppression and export policy; this
suite enumerates the cases explicitly.
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.policy import ASRelationships, GaoRexfordPolicy
from repro.bgp.routes import Route
from repro.bgp.speaker import PeerState
from repro.sim.timers import Jitter
from repro.topology.graph import Link, Router, Topology


def make_speaker(policy=None, sender_side=True):
    """A two-AS topology giving us one speaker with eBGP and iBGP peers."""
    topo = Topology(name="export-rules")
    topo.add_router(Router(0, 0, 0.0, 0.0))   # the speaker under test
    topo.add_router(Router(1, 0, 1.0, 0.0))   # iBGP peer
    topo.add_router(Router(2, 1, 2.0, 0.0))   # eBGP peer (AS 1)
    topo.add_link(Link(0, 1, 0.025, "intra_as"))
    topo.add_link(Link(0, 2, 0.025, "inter_as"))
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        sender_side_loop_detection=sender_side,
        policy=policy,
    )
    net = BGPNetwork(topo, config, seed=1)
    speaker = net.speakers[0]
    return speaker


def ebgp_peer(speaker) -> PeerState:
    return speaker.peers[2]


def ibgp_peer(speaker) -> PeerState:
    return speaker.peers[1]


def test_no_route_exports_nothing():
    speaker = make_speaker()
    assert speaker.export_route(ebgp_peer(speaker), 99) is None


def test_local_route_prepends_own_as_on_ebgp():
    speaker = make_speaker()
    speaker.originate(0)
    assert speaker.export_route(ebgp_peer(speaker), 0) == (0,)


def test_local_route_unmodified_on_ibgp():
    speaker = make_speaker()
    speaker.originate(0)
    assert speaker.export_route(ibgp_peer(speaker), 0) == ()


def test_learned_route_prepends_own_as_on_ebgp():
    speaker = make_speaker()
    speaker.loc_rib.set(7, Route(7, (3, 7), peer=2, ebgp=True))
    # Wait: learned from AS 1's router 2 — but exporting back to router 2
    # would loop at the receiver only if AS 1 is in the path; (3, 7) is
    # not, so the export goes out with AS 0 prepended.
    assert speaker.export_route(ebgp_peer(speaker), 7) == (0, 3, 7)


def test_sender_side_loop_suppression():
    speaker = make_speaker(sender_side=True)
    speaker.loc_rib.set(7, Route(7, (1, 7), peer=1, ebgp=False))
    # Peer 2 is AS 1, which appears in the path -> suppressed.
    assert speaker.export_route(ebgp_peer(speaker), 7) is None


def test_sender_side_suppression_can_be_disabled():
    speaker = make_speaker(sender_side=False)
    speaker.loc_rib.set(7, Route(7, (1, 7), peer=1, ebgp=False))
    assert speaker.export_route(ebgp_peer(speaker), 7) == (0, 1, 7)


def test_ibgp_route_not_reflected_to_ibgp():
    speaker = make_speaker()
    speaker.loc_rib.set(7, Route(7, (1, 7), peer=1, ebgp=False))
    assert speaker.export_route(ibgp_peer(speaker), 7) is None


def test_ebgp_route_exported_to_ibgp_unmodified():
    speaker = make_speaker()
    speaker.loc_rib.set(7, Route(7, (1, 7), peer=2, ebgp=True))
    assert speaker.export_route(ibgp_peer(speaker), 7) == (1, 7)


def test_policy_blocks_provider_route_to_peer():
    rels = ASRelationships()
    rels.set_customer(provider=5, customer=0)  # 5 is our provider
    rels.set_peers(0, 1)                       # AS 1 is our peer
    speaker = make_speaker(policy=GaoRexfordPolicy(rels))
    # Best route for 7 was learned from provider AS 5.
    speaker.loc_rib.set(7, Route(7, (5, 7), peer=2, ebgp=True, rank=2))
    assert speaker.export_route(ebgp_peer(speaker), 7) is None


def test_policy_allows_customer_route_everywhere():
    rels = ASRelationships()
    rels.set_customer(provider=0, customer=5)  # 5 is our customer
    rels.set_peers(0, 1)
    speaker = make_speaker(policy=GaoRexfordPolicy(rels))
    speaker.loc_rib.set(7, Route(7, (5, 7), peer=2, ebgp=True, rank=0))
    assert speaker.export_route(ebgp_peer(speaker), 7) == (0, 5, 7)


def test_policy_allows_own_prefix_everywhere():
    rels = ASRelationships()
    rels.set_customer(provider=1, customer=0)  # AS 1 is our provider
    speaker = make_speaker(policy=GaoRexfordPolicy(rels))
    speaker.originate(0)
    assert speaker.export_route(ebgp_peer(speaker), 0) == (0,)
