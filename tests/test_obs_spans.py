"""Span tracing: disabled cost, nesting, round-trips, exports, neutrality."""

import json

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.core.experiment import ExperimentSpec, run_experiment, run_trials
from repro.obs.session import ObsSession, observe
from repro.obs.spans import (
    NOOP_SPAN,
    SpanRecorder,
    active_recorder,
    record_spans,
    span,
    traced,
)
from repro.sim.timers import Jitter
from repro.topology.skewed import skewed_topology
from tests.conftest import clique_topology


# ----------------------------------------------------------------------
# Core mechanics
# ----------------------------------------------------------------------
def test_span_disabled_is_shared_noop():
    assert active_recorder() is None
    s = span("anything", x=1)
    assert s is NOOP_SPAN
    assert span("other") is s  # one object, no allocation per call
    with s as inner:
        assert inner is s
        assert inner.set(y=2) is s  # set() is a no-op, chainable


def test_record_spans_nesting_paths():
    with record_spans() as rec:
        with span("outer", a=1) as outer:
            with span("inner"):
                pass
            outer.set(b=2)
        with span("second"):
            pass
    paths = [r["path"] for r in rec.records]
    # Children finish (and record) before their parents.
    assert paths == ["outer/inner", "outer", "second"]
    outer_rec = rec.records[1]
    assert outer_rec["attrs"] == {"a": 1, "b": 2}
    assert all(r["dur"] >= 0.0 for r in rec.records)


def test_record_spans_restores_previous_recorder_and_path():
    with record_spans() as outer_rec:
        with span("outer"):
            with record_spans() as inner_rec:
                assert active_recorder() is inner_rec
                with span("fresh_root"):
                    pass
            assert active_recorder() is outer_rec
    # The nested block restarts paths at root (fork-inheritance guard).
    assert [r["path"] for r in inner_rec.records] == ["fresh_root"]
    assert [r["path"] for r in outer_rec.records] == ["outer"]
    assert active_recorder() is None


def test_traced_decorator():
    @traced()
    def plain():
        return 42

    @traced("custom.name", tag="t")
    def named():
        return 7

    assert plain() == 42  # disabled: no recorder, no span machinery
    with record_spans() as rec:
        assert plain() == 42
        assert named() == 7
    names = [r["name"] for r in rec.records]
    assert names[0].endswith("plain")  # qualified name of the function
    assert names[1] == "custom.name"
    assert rec.records[1]["attrs"] == {"tag": "t"}


# ----------------------------------------------------------------------
# Rollup + Chrome trace
# ----------------------------------------------------------------------
def test_rollup_shares_and_parent_denominators():
    rec = SpanRecorder()
    rec.records = [
        {"name": "root", "path": "root", "start": 0.0, "dur": 10.0,
         "pid": 1, "attrs": {}},
        {"name": "a", "path": "root/a", "start": 0.0, "dur": 4.0,
         "pid": 1, "attrs": {}},
        {"name": "a", "path": "root/a", "start": 4.0, "dur": 2.0,
         "pid": 1, "attrs": {}},
        {"name": "b", "path": "root/a/b", "start": 0.5, "dur": 3.0,
         "pid": 1, "attrs": {}},
    ]
    rows = {r.path: r for r in rec.rollup()}
    assert rows["root"].share_of_parent == pytest.approx(1.0)  # of wall
    assert rows["root/a"].count == 2
    assert rows["root/a"].total_seconds == pytest.approx(6.0)
    assert rows["root/a"].share_of_parent == pytest.approx(0.6)
    assert rows["root/a/b"].share_of_parent == pytest.approx(3.0 / 6.0)
    assert rows["root/a"].mean_ms == pytest.approx(3000.0)
    table = rec.render_rollup()
    assert "root" in table and "% parent" in table


def test_chrome_trace_structure(tmp_path):
    with record_spans() as rec:
        with span("outer", k="v"):
            with span("inner"):
                pass
    path = rec.write_chrome_trace(tmp_path / "spans.json")
    doc = json.loads(path.read_text(encoding="utf-8"))
    events = doc["traceEvents"]
    metas = [e for e in events if e["ph"] == "M"]
    xs = [e for e in events if e["ph"] == "X"]
    assert len(metas) == 1 and metas[0]["args"]["name"] == "parent"
    assert {e["name"] for e in xs} == {"outer", "inner"}
    # Timestamps are rebased to the earliest span and non-negative.
    assert min(e["ts"] for e in xs) == pytest.approx(0.0, abs=1e-3)
    outer = next(e for e in xs if e["name"] == "outer")
    assert outer["args"]["k"] == "v"
    assert outer["args"]["path"] == "outer"
    assert doc["displayTimeUnit"] == "ms"
    assert {row["path"] for row in doc["rollup"]} == {"outer", "outer/inner"}


def test_absorb_records_grafts_prefix_losslessly():
    worker = SpanRecorder()
    with record_spans(worker):
        with span("trial.execute", seed=9):
            with span("trial.warmup"):
                pass
    shipped = json.loads(json.dumps(worker.records))  # picklable/JSON-safe
    parent = SpanRecorder()
    parent.absorb_records(shipped, prefix="workers")
    assert [r["path"] for r in parent.records] == [
        "workers/trial.execute/trial.warmup",
        "workers/trial.execute",
    ]
    grafted = parent.records[1]
    original = worker.records[1]
    assert grafted["attrs"] == original["attrs"] == {"seed": 9}
    assert grafted["start"] == original["start"]
    assert grafted["dur"] == original["dur"]
    assert grafted["pid"] == original["pid"]
    assert parent.total("trial.warmup") == pytest.approx(
        worker.total("trial.warmup")
    )


# ----------------------------------------------------------------------
# Trajectory neutrality (golden pins)
# ----------------------------------------------------------------------
def test_spans_are_trajectory_neutral_golden():
    """The golden 5-clique counters hold with span recording active."""
    config = BGPConfig(
        mrai_policy=ConstantMRAI(1.0),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    with record_spans():
        with span("test.harness"):
            net = BGPNetwork(clique_topology(5), config, seed=1)
            net.start()
            net.run_until_quiet()
    assert net.counters["updates_sent"] == 80
    assert net.counters["route_changes"] == 25


def test_spans_do_not_change_experiment_results():
    topo = skewed_topology(30, seed=7)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    bare = run_experiment(topo, spec, seed=3)
    with record_spans() as rec:
        recorded = run_experiment(topo, spec, seed=3)
    assert recorded == bare
    assert rec.total("trial.warmup") > 0.0
    assert {"trial.warmup", "trial.failure", "trial.convergence"} <= {
        r["name"] for r in rec.records
    }


# ----------------------------------------------------------------------
# Worker round-trip under jobs > 1
# ----------------------------------------------------------------------
def test_span_worker_round_trip_parallel():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.2)
    factory = lambda s: skewed_topology(12, seed=s)  # noqa: E731
    seeds = [1, 2, 3, 4]
    obs = ObsSession(spans=True)
    with observe(obs):
        parallel = run_trials(factory, spec, seeds, jobs=2, obs=obs)
    serial = run_trials(factory, spec, seeds, jobs=1)
    # Observability never perturbs the simulation.
    assert parallel.trials == serial.trials

    rec = obs.span_recorder
    worker = [r for r in rec.records if r["path"].startswith("workers/")]
    # One trial.execute (with its three phases) per seed, all grafted.
    executes = [r for r in worker if r["name"] == "trial.execute"]
    assert len(executes) == len(seeds)
    assert {r["attrs"]["seed"] for r in executes} == set(seeds)
    assert all(
        r["path"] == "workers/trial.execute" for r in executes
    )
    warmups = [r for r in worker if r["name"] == "trial.warmup"]
    assert len(warmups) == len(seeds)
    assert all(
        r["path"] == "workers/trial.execute/trial.warmup" for r in warmups
    )
    # Worker spans carry worker pids; parent spans carry the parent's.
    assert all(r["pid"] != rec.pid for r in worker)
    parent_names = {
        r["name"] for r in rec.records if not r["path"].startswith("workers/")
    }
    assert {"trials.run", "pool.run", "pool.submit", "pool.collect",
            "trials.fold", "obs.absorb"} <= parent_names
    # The pool span records its spin-up cost.
    pool = next(r for r in rec.records if r["name"] == "pool.run")
    assert pool["attrs"]["jobs"] == 2
    assert pool["attrs"]["spinup_seconds"] >= 0.0
    # Everything survives a manifest/export round-trip.
    summary = obs.finalize(kind="test", command="test")
    assert summary.extra["spans"]["count"] == len(rec.records)


def test_store_spans_record_hits_and_misses(tmp_path):
    from repro.store.result_store import ResultStore

    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.2)
    factory = lambda s: skewed_topology(10, seed=s)  # noqa: E731
    with ResultStore(tmp_path / "store.db") as store:
        with record_spans() as rec:
            run_trials(factory, spec, [1, 2], jobs=1, store=store)
        gets = [r for r in rec.records if r["name"] == "store.get"]
        assert gets and all(r["attrs"]["hit"] is False for r in gets)
        assert sum(1 for r in rec.records if r["name"] == "store.put") == 2
        assert any(r["name"] == "store.spec_hash" for r in rec.records)
        with record_spans() as rec2:
            run_trials(factory, spec, [1, 2], jobs=1, store=store)
        hits = [r for r in rec2.records if r["name"] == "store.get"]
        assert hits and all(r["attrs"]["hit"] is True for r in hits)
        assert not any(r["name"] == "store.put" for r in rec2.records)
