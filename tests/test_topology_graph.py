"""Unit tests for the topology data model."""

import pytest

from repro.topology.graph import (
    GRID_SIZE,
    Link,
    Router,
    Topology,
    TopologyError,
    flat_topology_from_edges,
)


def build_square():
    """0-1-2-3-0 cycle with a 0-2 chord."""
    return flat_topology_from_edges([(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)])


def test_add_router_and_link():
    topo = Topology()
    topo.add_router(Router(0, 0, 1.0, 1.0))
    topo.add_router(Router(1, 1, 2.0, 2.0))
    link = topo.connect(0, 1)
    assert topo.num_routers == 2
    assert topo.num_links == 1
    assert topo.has_link(0, 1)
    assert topo.has_link(1, 0)
    assert topo.link_between(0, 1) is link


def test_duplicate_router_rejected():
    topo = Topology()
    topo.add_router(Router(0, 0, 0, 0))
    with pytest.raises(TopologyError):
        topo.add_router(Router(0, 0, 1, 1))


def test_duplicate_link_rejected():
    topo = Topology()
    topo.add_router(Router(0, 0, 0, 0))
    topo.add_router(Router(1, 1, 1, 1))
    topo.connect(0, 1)
    with pytest.raises(TopologyError):
        topo.connect(1, 0)


def test_self_loop_rejected():
    topo = Topology()
    topo.add_router(Router(0, 0, 0, 0))
    with pytest.raises(TopologyError):
        topo.connect(0, 0)


def test_link_to_unknown_router_rejected():
    topo = Topology()
    topo.add_router(Router(0, 0, 0, 0))
    with pytest.raises(TopologyError):
        topo.connect(0, 99)


def test_non_positive_delay_rejected():
    topo = Topology()
    topo.add_router(Router(0, 0, 0, 0))
    topo.add_router(Router(1, 1, 1, 1))
    with pytest.raises(TopologyError):
        topo.connect(0, 1, delay=0.0)


def test_degrees_and_neighbors():
    topo = build_square()
    assert topo.degree(0) == 3
    assert topo.degree(1) == 2
    assert topo.neighbors(0) == [1, 2, 3]
    assert topo.degree_sequence() == [3, 3, 2, 2]
    assert topo.average_degree() == pytest.approx(2.5)
    assert topo.degree_histogram() == {2: 2, 3: 2}


def test_link_other_endpoint():
    link = Link(3, 7)
    assert link.other(3) == 7
    assert link.other(7) == 3
    with pytest.raises(KeyError):
        link.other(5)


def test_connected_components():
    topo = Topology()
    for i in range(4):
        topo.add_router(Router(i, i, 0, 0))
    topo.connect(0, 1)
    topo.connect(2, 3)
    comps = topo.connected_components()
    assert sorted(sorted(c) for c in comps) == [[0, 1], [2, 3]]
    assert not topo.is_connected()
    topo.connect(1, 2)
    assert topo.is_connected()


def test_connectivity_with_exclusions():
    topo = flat_topology_from_edges([(0, 1), (1, 2)])
    assert topo.is_connected()
    assert not topo.is_connected(exclude={1})
    # Excluding an endpoint leaves a single (trivially connected) node pair?
    assert topo.is_connected(exclude={0, 1})


def test_nodes_within_radius():
    positions = {0: (0.0, 0.0), 1: (10.0, 0.0), 2: (100.0, 0.0)}
    topo = flat_topology_from_edges([(0, 1), (1, 2)], positions=positions)
    assert topo.nodes_within(0, 0, 15.0) == {0, 1}
    assert topo.nodes_within(0, 0, 150.0) == {0, 1, 2}


def test_nodes_by_distance_is_deterministic():
    positions = {0: (5.0, 0.0), 1: (5.0, 0.0), 2: (50.0, 0.0)}
    topo = flat_topology_from_edges([(0, 1), (1, 2)], positions=positions)
    assert topo.nodes_by_distance(0, 0) == [0, 1, 2]


def test_as_structure_flat():
    topo = build_square()
    assert topo.is_flat()
    assert topo.as_numbers() == [0, 1, 2, 3]
    assert topo.as_members(2) == [2]
    assert topo.as_of(2) == 2
    assert topo.inter_as_degree(0) == 3


def test_validate_accepts_good_topology():
    build_square().validate()


def test_validate_rejects_disconnected():
    topo = Topology()
    for i in range(4):
        topo.add_router(Router(i, i, 0, 0))
    topo.connect(0, 1)
    topo.connect(2, 3)
    with pytest.raises(TopologyError):
        topo.validate()


def test_validate_rejects_isolated_router():
    topo = Topology()
    topo.add_router(Router(0, 0, 0, 0))
    topo.add_router(Router(1, 1, 1, 1))
    topo.add_router(Router(2, 2, 2, 2))
    topo.connect(0, 1)
    with pytest.raises(TopologyError):
        topo.validate()


def test_validate_rejects_intra_as_link_across_ases():
    topo = Topology()
    topo.add_router(Router(0, 0, 0, 0))
    topo.add_router(Router(1, 1, 1, 1))
    topo.add_link(Link(0, 1, 0.025, "intra_as"))
    with pytest.raises(TopologyError):
        topo.validate()


def test_centroid_and_summary():
    positions = {0: (0.0, 0.0), 1: (10.0, 10.0)}
    topo = flat_topology_from_edges([(0, 1)], positions=positions)
    assert topo.centroid() == (5.0, 5.0)
    text = topo.summary()
    assert "2 routers" in text
    assert "1 links" in text


def test_empty_topology_centroid_is_grid_center():
    topo = Topology()
    assert topo.centroid() == (GRID_SIZE / 2, GRID_SIZE / 2)


def test_router_distance():
    a = Router(0, 0, 0.0, 0.0)
    b = Router(1, 1, 3.0, 4.0)
    assert a.distance_to(b) == pytest.approx(5.0)


def test_flat_topology_default_positions_are_distinct_diagonal():
    topo = flat_topology_from_edges([(0, 1), (1, 2)])
    xs = {r.x for r in topo.routers.values()}
    assert len(xs) == 3
