"""Tests for CSV/JSON result export."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    figure_to_files,
    save_series,
    series_to_csv,
    series_to_json,
    series_to_records,
)
from repro.core.sweep import Series
from repro.figures.common import Check, FigureOutput
from repro.sim.stats import OnlineStats


class FakeResult:
    def __init__(self, delays, messages):
        self.delay = OnlineStats()
        self.delay.extend(delays)
        self.messages = OnlineStats()
        self.messages.extend(messages)
        self.n = len(delays)
        self.mean_delay = self.delay.mean
        self.mean_messages = self.messages.mean


def make_series():
    series = Series(label="scheme-a", x_name="failure_fraction")
    series.add(0.05, FakeResult([10.0, 12.0], [100, 110]))
    series.add(0.10, FakeResult([20.0, 24.0], [200, 220]))
    return series


def test_records_structure():
    records = series_to_records([make_series()])
    assert len(records) == 2
    first = records[0]
    assert first["series"] == "scheme-a"
    assert first["x"] == 0.05
    assert first["trials"] == 2
    assert first["delay_mean"] == pytest.approx(11.0)
    assert first["delay_min"] == 10.0
    assert first["delay_max"] == 12.0
    assert first["messages_mean"] == pytest.approx(105.0)


def test_csv_round_trip():
    text = series_to_csv([make_series()])
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 2
    assert rows[1]["series"] == "scheme-a"
    assert float(rows[1]["delay_mean"]) == pytest.approx(22.0)


def test_json_round_trip():
    data = json.loads(series_to_json([make_series()]))
    assert len(data["records"]) == 2
    assert data["records"][0]["x_name"] == "failure_fraction"


def test_save_series_by_suffix(tmp_path):
    series = [make_series()]
    csv_path = tmp_path / "out.csv"
    save_series(series, csv_path)
    assert csv_path.read_text().startswith("series,")
    json_path = tmp_path / "out.json"
    save_series(series, json_path)
    assert json.loads(json_path.read_text())["records"]
    with pytest.raises(ValueError):
        save_series(series, tmp_path / "out.xml")


def test_figure_to_files(tmp_path):
    output = FigureOutput(
        figure_id="figXX",
        caption="test figure",
        series=[make_series()],
        metrics=("delay",),
        checks=[Check("ok", True)],
    )
    written = figure_to_files(output, tmp_path / "exports")
    suffixes = {p.suffix for p in written}
    assert suffixes == {".csv", ".json", ".txt"}
    for path in written:
        assert path.exists()
        assert path.stat().st_size > 0
    text = (tmp_path / "exports" / "figXX.txt").read_text()
    assert "test figure" in text
