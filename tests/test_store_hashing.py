"""Tests for content-addressed trial hashing (repro.store.hashing).

The golden vectors pin ``spec_hash`` output for representative specs.
If one of these assertions starts failing, the hash function's output
changed — which silently invalidates every existing result store (or,
if the pre-image semantics drifted, silently *reuses* stale entries).
That must be a deliberate decision: bump ``SCHEMA_VERSION`` and re-pin
the vectors in the same commit.
"""

import pytest

from repro.bgp.mrai import ConstantMRAI
from repro.core.degree_mrai import DegreeDependentMRAI
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.experiment import ExperimentSpec
from repro.store.hashing import (
    SCHEMA_VERSION,
    canonical,
    spec_fingerprint,
    spec_hash,
    topology_digest,
)
from repro.topology.skewed import skewed_topology


def topo12():
    return skewed_topology(12, seed=1)


def spec_for(label):
    return {
        "constant": ExperimentSpec(
            mrai=ConstantMRAI(0.5), failure_fraction=0.1
        ),
        "constant_2.25": ExperimentSpec(
            mrai=ConstantMRAI(2.25), failure_fraction=0.1
        ),
        "degree": ExperimentSpec(
            mrai=DegreeDependentMRAI(0.5, 2.25), failure_fraction=0.1
        ),
        "dynamic": ExperimentSpec(mrai=DynamicMRAI(), failure_fraction=0.1),
        "constant_frac_0.2": ExperimentSpec(
            mrai=ConstantMRAI(0.5), failure_fraction=0.2
        ),
    }[label]


# ----------------------------------------------------------------------
# Golden vectors (schema version 2, skewed_topology(12, seed=1), seed 1)
#
# v2 fingerprints declarative specs via spec_to_dict (repro.specs), so
# equal-meaning construction paths share cache keys; see docs/STORAGE.md
# for the migration note.
# ----------------------------------------------------------------------
GOLDEN = {
    "constant": (
        "749dd9ff806630e7280ac1eb6661eee9"
        "e62ff1015d7e770dab892361ff8420f5"
    ),
    "constant_2.25": (
        "7cc1913abaf5dbce17b79f98c0ef7402"
        "4e15c9f4260d04b536a6467e9db14142"
    ),
    "degree": (
        "57d89574d07515663d1da0ef0b32d848"
        "142c7960464660cf83cec089da7fde99"
    ),
    "dynamic": (
        "a81580ab35baa04400f3c65fedf41af7"
        "943e762054de9d7f641a6a4aedb126f0"
    ),
    "constant_frac_0.2": (
        "91218013d6856a1dffc997c715e903f1"
        "eb6d89568ebbd5c9bab2f548882b5f1b"
    ),
}
GOLDEN_TOPOLOGY_DIGEST = "3dade353fa1503001694cee6fe53b2bd"
GOLDEN_SEED2 = (
    "0c448211033998dca6b6b171f216ffa8"
    "0ffcda244c10142317351841ea4aab62"
)


def test_schema_version_is_pinned_with_the_vectors():
    # The vectors above were computed under this version; bumping it
    # must come with freshly pinned hashes.
    assert SCHEMA_VERSION == 2


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_spec_hash_golden_vectors(label):
    assert spec_hash(spec_for(label), topo12(), 1) == GOLDEN[label]


def test_topology_digest_golden_vector():
    assert topology_digest(topo12()) == GOLDEN_TOPOLOGY_DIGEST


def test_seed_changes_hash():
    spec = spec_for("constant")
    assert spec_hash(spec, topo12(), 2) == GOLDEN_SEED2
    assert GOLDEN_SEED2 != GOLDEN["constant"]


def test_all_vectors_distinct():
    values = list(GOLDEN.values()) + [GOLDEN_SEED2]
    assert len(set(values)) == len(values)


# ----------------------------------------------------------------------
# Structural properties (not pinned — must hold for any schema version)
# ----------------------------------------------------------------------
def test_hash_is_deterministic_across_instances():
    # Fresh spec/topology objects with equal content hash identically —
    # the property that lets a re-run hit the cache at all.
    a = spec_hash(spec_for("constant"), topo12(), 1)
    b = spec_hash(spec_for("constant"), topo12(), 1)
    assert a == b


def test_topology_content_not_identity_is_hashed():
    same = skewed_topology(12, seed=1)
    other = skewed_topology(12, seed=2)
    assert topology_digest(topo12()) == topology_digest(same)
    assert topology_digest(topo12()) != topology_digest(other)


def test_spec_field_change_changes_hash():
    base = spec_for("constant")
    assert spec_hash(base, topo12(), 1) != spec_hash(
        spec_for("constant_frac_0.2"), topo12(), 1
    )


def test_fingerprint_carries_schema_and_seed():
    fp = spec_fingerprint(spec_for("constant"), topo12(), 7)
    assert fp["schema"] == SCHEMA_VERSION
    assert fp["seed"] == 7
    assert fp["topology"] == GOLDEN_TOPOLOGY_DIGEST


def test_canonical_is_order_insensitive_for_mappings():
    assert canonical({"b": 2, "a": 1}) == canonical({"a": 1, "b": 2})


def test_canonical_sorts_sets():
    assert canonical({3, 1, 2}) == canonical({2, 3, 1})


def test_canonical_policy_object_includes_type_and_fields():
    enc = canonical(ConstantMRAI(0.5))
    assert enc["__type__"].endswith("ConstantMRAI")
    assert any(v == 0.5 for v in enc.values())
