"""Tests for content-addressed trial hashing (repro.store.hashing).

The golden vectors pin ``spec_hash`` output for representative specs.
If one of these assertions starts failing, the hash function's output
changed — which silently invalidates every existing result store (or,
if the pre-image semantics drifted, silently *reuses* stale entries).
That must be a deliberate decision: bump ``SCHEMA_VERSION`` and re-pin
the vectors in the same commit.
"""

import pytest

from repro.bgp.mrai import ConstantMRAI
from repro.core.degree_mrai import DegreeDependentMRAI
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.experiment import ExperimentSpec
from repro.store.hashing import (
    SCHEMA_VERSION,
    canonical,
    spec_fingerprint,
    spec_hash,
    topology_digest,
)
from repro.topology.skewed import skewed_topology


def topo12():
    return skewed_topology(12, seed=1)


def spec_for(label):
    return {
        "constant": ExperimentSpec(
            mrai=ConstantMRAI(0.5), failure_fraction=0.1
        ),
        "constant_2.25": ExperimentSpec(
            mrai=ConstantMRAI(2.25), failure_fraction=0.1
        ),
        "degree": ExperimentSpec(
            mrai=DegreeDependentMRAI(0.5, 2.25), failure_fraction=0.1
        ),
        "dynamic": ExperimentSpec(mrai=DynamicMRAI(), failure_fraction=0.1),
        "constant_frac_0.2": ExperimentSpec(
            mrai=ConstantMRAI(0.5), failure_fraction=0.2
        ),
    }[label]


# ----------------------------------------------------------------------
# Golden vectors (schema version 1, skewed_topology(12, seed=1), seed 1)
# ----------------------------------------------------------------------
GOLDEN = {
    "constant": (
        "1bb1902ab4708f9418bf415fd8e3e863"
        "1593b74fff2dbde38974c42e1d7610ee"
    ),
    "constant_2.25": (
        "ce6b8178b305ad5c994ee7c084636f00"
        "dc74918da409b4c715ee6a521da84919"
    ),
    "degree": (
        "a35872fd9c97061d657f618f12028cd6"
        "ec6ded1802ec083c8617ddd617df7dc2"
    ),
    "dynamic": (
        "15dc70e300904217a4f654d7181504c5"
        "1f2917e3f96f7a979bb5b7d42adb19be"
    ),
    "constant_frac_0.2": (
        "9e269dc0cfccdfa5274762f91c8db3e6"
        "8fdd15d047f1bc8c28bf146a9ba882f7"
    ),
}
GOLDEN_TOPOLOGY_DIGEST = "3dade353fa1503001694cee6fe53b2bd"
GOLDEN_SEED2 = (
    "3b38e18b3038c0245711dfc0896c9116"
    "6022c4e61f9050f3c2ed671fd3c3d052"
)


def test_schema_version_is_pinned_with_the_vectors():
    # The vectors above were computed under this version; bumping it
    # must come with freshly pinned hashes.
    assert SCHEMA_VERSION == 1


@pytest.mark.parametrize("label", sorted(GOLDEN))
def test_spec_hash_golden_vectors(label):
    assert spec_hash(spec_for(label), topo12(), 1) == GOLDEN[label]


def test_topology_digest_golden_vector():
    assert topology_digest(topo12()) == GOLDEN_TOPOLOGY_DIGEST


def test_seed_changes_hash():
    spec = spec_for("constant")
    assert spec_hash(spec, topo12(), 2) == GOLDEN_SEED2
    assert GOLDEN_SEED2 != GOLDEN["constant"]


def test_all_vectors_distinct():
    values = list(GOLDEN.values()) + [GOLDEN_SEED2]
    assert len(set(values)) == len(values)


# ----------------------------------------------------------------------
# Structural properties (not pinned — must hold for any schema version)
# ----------------------------------------------------------------------
def test_hash_is_deterministic_across_instances():
    # Fresh spec/topology objects with equal content hash identically —
    # the property that lets a re-run hit the cache at all.
    a = spec_hash(spec_for("constant"), topo12(), 1)
    b = spec_hash(spec_for("constant"), topo12(), 1)
    assert a == b


def test_topology_content_not_identity_is_hashed():
    same = skewed_topology(12, seed=1)
    other = skewed_topology(12, seed=2)
    assert topology_digest(topo12()) == topology_digest(same)
    assert topology_digest(topo12()) != topology_digest(other)


def test_spec_field_change_changes_hash():
    base = spec_for("constant")
    assert spec_hash(base, topo12(), 1) != spec_hash(
        spec_for("constant_frac_0.2"), topo12(), 1
    )


def test_fingerprint_carries_schema_and_seed():
    fp = spec_fingerprint(spec_for("constant"), topo12(), 7)
    assert fp["schema"] == SCHEMA_VERSION
    assert fp["seed"] == 7
    assert fp["topology"] == GOLDEN_TOPOLOGY_DIGEST


def test_canonical_is_order_insensitive_for_mappings():
    assert canonical({"b": 2, "a": 1}) == canonical({"a": 1, "b": 2})


def test_canonical_sorts_sets():
    assert canonical({3, 1, 2}) == canonical({2, 3, 1})


def test_canonical_policy_object_includes_type_and_fields():
    enc = canonical(ConstantMRAI(0.5))
    assert enc["__type__"].endswith("ConstantMRAI")
    assert any(v == 0.5 for v in enc.values())
