"""Tests for the withdrawal-first queue and hold-timer failure detection."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.messages import Update
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.queues import WithdrawalFirstBatchQueue, make_queue
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.core.validation import validate_routing
from repro.topology.skewed import skewed_topology
from tests.conftest import converged_network, line_topology


def msg(dest, sender, path=(1,)):
    return Update(dest, path, sender)


def wd(dest, sender):
    return Update(dest, None, sender)


# ---------------------------------------------------------------------------
# Withdrawal-first batching
# ---------------------------------------------------------------------------
def test_wf_serves_withdrawal_destination_first():
    q = WithdrawalFirstBatchQueue()
    q.push(msg(1, 10))
    q.push(msg(2, 10))
    q.push(wd(3, 10))
    batch, __ = q.pop_batch()
    assert batch[0].dest == 3
    assert batch[0].is_withdrawal
    # Then falls back to arrival order.
    assert q.pop_batch()[0][0].dest == 1
    assert q.pop_batch()[0][0].dest == 2


def test_wf_withdrawal_promotes_existing_destination():
    q = WithdrawalFirstBatchQueue()
    q.push(msg(1, 10))
    q.push(msg(2, 10))
    q.push(wd(2, 11))
    batch, __ = q.pop_batch()
    assert {m.dest for m in batch} == {2}
    assert len(batch) == 2  # announcement from 10 and withdrawal from 11


def test_wf_urgent_order_is_fifo_among_withdrawals():
    q = WithdrawalFirstBatchQueue()
    q.push(wd(5, 1))
    q.push(wd(3, 1))
    assert q.pop_batch()[0][0].dest == 5
    assert q.pop_batch()[0][0].dest == 3


def test_wf_stale_withdrawal_entry_skipped_after_normal_service():
    q = WithdrawalFirstBatchQueue()
    q.push(wd(1, 10))
    q.pop_batch()  # dest 1 served via urgent path
    q.push(msg(2, 10))
    batch, __ = q.pop_batch()  # must not crash on the stale urgent entry
    assert batch[0].dest == 2


def test_wf_same_neighbor_coalescing_still_applies():
    q = WithdrawalFirstBatchQueue()
    q.push(msg(1, 10, path=(5,)))
    q.push(wd(1, 10))
    batch, dropped = q.pop_batch()
    assert dropped == 1
    assert batch[0].is_withdrawal


def test_wf_clear_resets_urgent_state():
    q = WithdrawalFirstBatchQueue()
    q.push(wd(1, 10))
    q.clear()
    assert len(q) == 0
    q.push(msg(2, 10))
    assert q.pop_batch()[0][0].dest == 2


def test_wf_factory_and_config():
    assert isinstance(make_queue("dest_batch_wf"), WithdrawalFirstBatchQueue)
    BGPConfig(queue_discipline="dest_batch_wf")  # accepted


def test_wf_end_to_end_converges_and_validates():
    topo = skewed_topology(36, seed=4)
    result = run_experiment(
        topo,
        ExperimentSpec(
            mrai=ConstantMRAI(0.5),
            queue_discipline="dest_batch_wf",
            failure_fraction=0.2,
            validate=True,
        ),
        seed=1,
    )
    assert not result.truncated
    assert result.stale_dropped > 0


def test_wf_competitive_with_plain_batching_under_overload():
    topo = skewed_topology(60, seed=3)
    plain = run_experiment(
        topo,
        ExperimentSpec(
            mrai=ConstantMRAI(0.5),
            queue_discipline="dest_batch",
            failure_fraction=0.2,
        ),
        seed=1,
    )
    wf = run_experiment(
        topo,
        ExperimentSpec(
            mrai=ConstantMRAI(0.5),
            queue_discipline="dest_batch_wf",
            failure_fraction=0.2,
        ),
        seed=1,
    )
    # Both fix the meltdown; withdrawal-first must be in the same class.
    assert wf.convergence_delay <= plain.convergence_delay * 1.5


# ---------------------------------------------------------------------------
# Hold-timer failure detection
# ---------------------------------------------------------------------------
def test_detection_delay_shifts_convergence():
    def delay_with(detection):
        net = converged_network(line_topology(4))
        t0 = net.fail_nodes([3], detection_delay=detection)
        net.run_until_quiet()
        return net.last_activity - t0

    instant = delay_with(0.0)
    held = delay_with(3.0)
    assert held == pytest.approx(instant + 3.0, abs=0.2)


def test_detection_jitter_staggers_neighbors():
    net = converged_network(skewed_topology(30, seed=2))
    t0 = net.fail_nodes(
        net.topology.nodes_by_distance(500, 500)[:3],
        detection_delay=1.0,
        detection_jitter=2.0,
    )
    net.run_until_quiet()
    validate_routing(net)
    assert net.last_activity - t0 >= 1.0


def test_detection_delay_validation():
    net = converged_network(line_topology(3))
    with pytest.raises(ValueError):
        net.fail_nodes([2], detection_delay=-1.0)
    with pytest.raises(ValueError):
        net.fail_nodes([2], detection_jitter=-1.0)


def test_delayed_detection_still_converges_correctly():
    net = converged_network(skewed_topology(30, seed=2))
    net.fail_nodes(
        net.topology.nodes_by_distance(500, 500)[:5], detection_delay=2.0
    )
    net.run_until_quiet()
    validate_routing(net)
