"""Tests for reporting and shape predicates."""

import pytest

from repro.analysis.report import (
    format_figure,
    format_series_table,
    series_to_rows,
)
from repro.analysis.shapes import (
    crossover_point,
    is_v_shaped,
    monotone_increasing,
    optimal_x,
    ratio_at,
)
from repro.core.sweep import Series


class FakeResult:
    def __init__(self, delay, msgs):
        self.mean_delay = delay
        self.mean_messages = msgs


def make_series(label, points):
    series = Series(label=label, x_name="mrai")
    for x, delay, msgs in points:
        series.add(x, FakeResult(delay, msgs))
    return series


# ---------------------------------------------------------------------------
# Shapes
# ---------------------------------------------------------------------------
def test_optimal_x():
    assert optimal_x([1, 2, 3], [5.0, 2.0, 4.0]) == 2
    # Ties resolve to the smallest x.
    assert optimal_x([1, 2], [3.0, 3.0]) == 1
    with pytest.raises(ValueError):
        optimal_x([], [])
    with pytest.raises(ValueError):
        optimal_x([1], [1.0, 2.0])


def test_is_v_shaped_true():
    assert is_v_shaped([1, 2, 3, 4], [10, 4, 6, 12])


def test_is_v_shaped_tolerates_noise():
    assert is_v_shaped([1, 2, 3, 4, 5], [10, 9.5, 4, 4.2, 9], tolerance=0.1)


def test_is_v_shaped_rejects_monotone():
    assert not is_v_shaped([1, 2, 3], [1, 2, 3])
    assert not is_v_shaped([1, 2, 3], [3, 2, 1])


def test_is_v_shaped_rejects_w_shape():
    assert not is_v_shaped([1, 2, 3, 4, 5], [10, 2, 8, 1.5, 9])


def test_is_v_shaped_unsorted_input():
    assert is_v_shaped([3, 1, 2], [6, 10, 4])


def test_is_v_shaped_validation():
    with pytest.raises(ValueError):
        is_v_shaped([1, 2], [1, 2])


def test_monotone_increasing():
    assert monotone_increasing([1, 2, 3])
    assert monotone_increasing([1, 1, 1])
    assert monotone_increasing([10, 9.5, 12], tolerance=0.1)
    assert not monotone_increasing([10, 5, 12], tolerance=0.1)
    with pytest.raises(ValueError):
        monotone_increasing([])


def test_crossover_point():
    xs = [1, 2, 3, 4]
    a = [1, 2, 10, 20]
    b = [5, 5, 5, 5]
    assert crossover_point(xs, a, b) == 3
    assert crossover_point(xs, b, a) == 3
    assert crossover_point(xs, [1, 1, 1, 1], b) is None
    with pytest.raises(ValueError):
        crossover_point([], [], [])


def test_ratio_at():
    xs = [1, 2]
    assert ratio_at(xs, [10, 20], [5, 4], 2) == 5.0
    with pytest.raises(KeyError):
        ratio_at(xs, [1, 2], [1, 2], 99)
    with pytest.raises(ZeroDivisionError):
        ratio_at(xs, [1, 2], [1, 0], 2)


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
def test_series_to_rows_delay():
    a = make_series("a", [(0.5, 10.0, 100), (1.0, 5.0, 50)])
    b = make_series("b", [(0.5, 8.0, 80)])
    header, rows = series_to_rows([a, b], metric="delay")
    assert header == ["mrai", "a", "b"]
    assert rows[0] == ["0.5", "10.00", "8.00"]
    assert rows[1] == ["1", "5.00", "-"]  # b has no point at 1.0


def test_series_to_rows_messages():
    a = make_series("a", [(0.5, 10.0, 100)])
    __, rows = series_to_rows([a], metric="messages")
    assert rows[0] == ["0.5", "100"]


def test_series_to_rows_rejects_unknown_metric():
    with pytest.raises(ValueError):
        series_to_rows([], metric="bogus")


def test_format_series_table_alignment():
    a = make_series("scheme-a", [(0.5, 10.0, 100), (1.0, 5.0, 50)])
    text = format_series_table([a], title="[delay]")
    lines = text.splitlines()
    assert lines[0] == "[delay]"
    assert "scheme-a" in lines[1]
    assert len(lines) == 5  # title, header, rule, 2 rows


def test_format_figure_contains_all_parts():
    a = make_series("a", [(0.5, 10.0, 100)])
    text = format_figure("fig99", "caption here", [a], ("delay", "messages"))
    assert "fig99" in text
    assert "caption here" in text
    assert "convergence delay" in text
    assert "update messages" in text
