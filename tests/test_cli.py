"""Tests for the command-line interface."""

import pytest

from repro.cli import build_mrai_policy, build_topology, main, make_parser
from repro.bgp.mrai import ConstantMRAI
from repro.core.degree_mrai import DegreeDependentMRAI
from repro.core.dynamic_mrai import DynamicMRAI


def parse(argv):
    return make_parser().parse_args(argv)


def test_run_defaults():
    args = parse(["run"])
    assert args.nodes == 120
    assert args.mrai == 0.5
    assert args.queue == "fifo"
    assert args.failure == 0.05


def test_build_topology_variants():
    args = parse(["run", "--nodes", "20", "--topology", "skewed"])
    topo = build_topology(args)
    assert topo.num_routers == 20

    args = parse(["run", "--nodes", "20", "--topology", "internet"])
    assert build_topology(args).num_routers == 20

    args = parse(["run", "--nodes", "6", "--topology", "multirouter"])
    multi = build_topology(args)
    assert len(multi.as_numbers()) == 6


def test_build_mrai_policy_variants():
    args = parse(["run", "--mrai-scheme", "constant", "--mrai", "1.5"])
    policy = build_mrai_policy(args)
    assert isinstance(policy, ConstantMRAI)
    assert policy.value == 1.5

    args = parse(
        ["run", "--mrai-scheme", "degree", "--mrai-low", "0.3", "--mrai-high", "3"]
    )
    policy = build_mrai_policy(args)
    assert isinstance(policy, DegreeDependentMRAI)
    assert policy.low_value == 0.3
    assert policy.high_value == 3.0

    args = parse(
        ["run", "--mrai-scheme", "dynamic", "--up-th", "1.0", "--down-th", "0.1"]
    )
    policy = build_mrai_policy(args)
    assert isinstance(policy, DynamicMRAI)
    assert policy.up_th == 1.0
    assert policy.down_th == 0.1


def test_cli_run_end_to_end(capsys):
    code = main(
        [
            "run",
            "--nodes",
            "20",
            "--mrai",
            "0.5",
            "--failure",
            "0.1",
            "--seed",
            "1",
            "--validate",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "convergence delay" in captured.out
    assert "update messages" in captured.out


def test_cli_run_batching(capsys):
    code = main(
        ["run", "--nodes", "20", "--queue", "dest_batch", "--failure", "0.2"]
    )
    assert code == 0
    assert "stale dropped" in capsys.readouterr().out


def test_cli_sweep_unknown_figure(capsys):
    code = main(["sweep", "--figure", "fig99"])
    assert code == 2
    assert "unknown figure" in capsys.readouterr().err


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


# ----------------------------------------------------------------------
# Store-backed sweeps and campaigns
# ----------------------------------------------------------------------
import json


def write_campaign(tmp_path, store=None):
    data = {
        "name": "cli-unit",
        "topology": {
            "kind": "skewed",
            "nodes": 24,
            "distribution": "70-30",
        },
        "schemes": {"fifo-0.5": {"mrai": 0.5}},
        "axis": {"name": "failure_fraction", "values": [0.1]},
        "seeds": [1, 2],
    }
    if store is not None:
        data["store"] = str(store)
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps(data), encoding="utf-8")
    return path


def test_cli_sweep_resume_requires_store(capsys):
    code = main(["sweep", "--figure", "fig01", "--resume"])
    assert code == 2
    assert "--resume requires --store" in capsys.readouterr().err


def test_cli_sweep_resume_missing_store(tmp_path, capsys):
    code = main(
        [
            "sweep",
            "--figure",
            "fig01",
            "--store",
            str(tmp_path / "none.db"),
            "--resume",
        ]
    )
    assert code == 2
    assert "does not exist" in capsys.readouterr().err


def test_cli_campaign_cycle(tmp_path, capsys):
    store = tmp_path / "store.db"
    cfile = write_campaign(tmp_path, store=store)

    # status before any run: nothing cached, still exit 0 (no --check)
    assert main(["campaign", "status", str(cfile)]) == 0
    assert "0/2 trials cached" in capsys.readouterr().out
    # ... but --check flags the incomplete grid
    assert main(["campaign", "status", str(cfile), "--check"]) == 1
    capsys.readouterr()

    # resume before run: nothing to resume
    assert main(["campaign", "resume", str(cfile)]) == 2
    assert "does not exist" in capsys.readouterr().err

    # export before run: refuse
    out_dir = tmp_path / "series"
    assert (
        main(["campaign", "export", str(cfile), "--out", str(out_dir)]) == 1
    )
    assert "cannot export" in capsys.readouterr().err

    # cold run executes everything
    assert main(["campaign", "run", str(cfile)]) == 0
    cold = capsys.readouterr().out
    assert "2 trials — 0 cached (0%), 2 executed" in cold
    assert "convergence delay" in cold

    # resume is pure cache and renders the identical tables
    assert main(["campaign", "resume", str(cfile)]) == 0
    warm = capsys.readouterr().out
    assert "2 cached (100%), 0 executed" in warm
    assert warm.split("\n", 1)[1] == cold.split("\n", 1)[1]

    # status --check now passes; history shows both runs
    assert main(["campaign", "status", str(cfile), "--check"]) == 0
    status = capsys.readouterr().out
    assert "2/2 trials cached" in status
    assert status.count("run 2") >= 2  # two recorded manifest rows

    # export folds from the store only
    assert (
        main(["campaign", "export", str(cfile), "--out", str(out_dir)]) == 0
    )
    assert (out_dir / "cli-unit.csv").exists()
    assert (out_dir / "cli-unit.json").exists()


def test_cli_campaign_store_flag_overrides_file(tmp_path, capsys):
    cfile = write_campaign(tmp_path)  # no store in the file
    assert main(["campaign", "run", str(cfile)]) == 2
    assert "no store" in capsys.readouterr().err

    override = tmp_path / "cli-store.db"
    code = main(
        ["campaign", "run", str(cfile), "--store", str(override), "--jobs", "2"]
    )
    assert code == 0
    assert override.exists()
