"""Tests for the command-line interface."""

import pytest

from repro.cli import build_mrai_policy, build_topology, main, make_parser
from repro.bgp.mrai import ConstantMRAI
from repro.core.degree_mrai import DegreeDependentMRAI
from repro.core.dynamic_mrai import DynamicMRAI


def parse(argv):
    return make_parser().parse_args(argv)


def test_run_defaults():
    args = parse(["run"])
    assert args.nodes == 120
    assert args.mrai == 0.5
    assert args.queue == "fifo"
    assert args.failure == 0.05


def test_build_topology_variants():
    args = parse(["run", "--nodes", "20", "--topology", "skewed"])
    topo = build_topology(args)
    assert topo.num_routers == 20

    args = parse(["run", "--nodes", "20", "--topology", "internet"])
    assert build_topology(args).num_routers == 20

    args = parse(["run", "--nodes", "6", "--topology", "multirouter"])
    multi = build_topology(args)
    assert len(multi.as_numbers()) == 6


def test_build_mrai_policy_variants():
    args = parse(["run", "--mrai-scheme", "constant", "--mrai", "1.5"])
    policy = build_mrai_policy(args)
    assert isinstance(policy, ConstantMRAI)
    assert policy.value == 1.5

    args = parse(
        ["run", "--mrai-scheme", "degree", "--mrai-low", "0.3", "--mrai-high", "3"]
    )
    policy = build_mrai_policy(args)
    assert isinstance(policy, DegreeDependentMRAI)
    assert policy.low_value == 0.3
    assert policy.high_value == 3.0

    args = parse(
        ["run", "--mrai-scheme", "dynamic", "--up-th", "1.0", "--down-th", "0.1"]
    )
    policy = build_mrai_policy(args)
    assert isinstance(policy, DynamicMRAI)
    assert policy.up_th == 1.0
    assert policy.down_th == 0.1


def test_cli_run_end_to_end(capsys):
    code = main(
        [
            "run",
            "--nodes",
            "20",
            "--mrai",
            "0.5",
            "--failure",
            "0.1",
            "--seed",
            "1",
            "--validate",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "convergence delay" in captured.out
    assert "update messages" in captured.out


def test_cli_run_batching(capsys):
    code = main(
        ["run", "--nodes", "20", "--queue", "dest_batch", "--failure", "0.2"]
    )
    assert code == 0
    assert "stale dropped" in capsys.readouterr().out


def test_cli_sweep_unknown_figure(capsys):
    code = main(["sweep", "--figure", "fig99"])
    assert code == 2
    assert "unknown figure" in capsys.readouterr().err


def test_cli_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
