"""Concurrent executors sharing one store (repro.service + repro.store).

The properties ISSUE 9 pins down: two OS processes draining the same
queue/store execute every cold trial exactly once between them (no
duplicates, no losses) and their folded output is bitwise-identical to
a serial run; a claimant that dies holding leases only delays its tasks
until the leases expire; and a drainer SIGKILLed mid-campaign never
prevents the campaign from completing.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.service import ExecutorConfig, QueueExecutor, plan_submission
from repro.service.submission import ticket_status
from repro.store import (
    Campaign,
    ResultStore,
    load_campaign_results,
    run_campaign,
)

CAMPAIGN = {
    "name": "conc",
    "topology": {"kind": "skewed", "nodes": 24, "distribution": "70-30"},
    "schemes": {
        "fifo-0.5": {"mrai": 0.5},
        "dynamic": {"mrai_scheme": "dynamic", "levels": [0.5, 1.25, 2.25]},
    },
    "axis": {"name": "failure_fraction", "values": [0.1]},
    "seeds": [1, 2, 3, 4],
}


def make_campaign(**overrides):
    data = dict(CAMPAIGN)
    data.update(overrides)
    return Campaign.from_dict(data)


def series_signature(series_list):
    return sorted(
        (s.label, s.delays, s.message_counts) for s in series_list
    )


def plan(path, campaign):
    """Plan a submission through a short-lived handle (so no SQLite
    connection is ever carried across a later fork)."""
    with ResultStore(path) as store:
        return plan_submission(campaign, store)


def _drain(path, owner, counters, batch_size, lease_seconds):
    """Child-process drain loop: own handle, own executor identity."""
    with ResultStore(path) as store:
        executor = QueueExecutor(
            store,
            ExecutorConfig(
                owner=owner,
                jobs=1,
                batch_size=batch_size,
                lease_seconds=lease_seconds,
                poll_interval=0.05,
            ),
        )
        executor.drain(idle_timeout=1.0)
        counters.put((owner, executor.executed, executor.failed_terminal))


@pytest.fixture()
def mp_ctx():
    return multiprocessing.get_context("fork")


def test_two_processes_drain_once_each_and_fold_serial_identical(
    tmp_path, mp_ctx
):
    campaign = make_campaign()
    path = tmp_path / "shared.db"
    receipt = plan(path, campaign)
    assert receipt.enqueued == 8

    counters = mp_ctx.SimpleQueue()
    drainers = [
        mp_ctx.Process(
            target=_drain,
            # batch_size=1 maximizes interleaving: every claim is a
            # separate lease transaction racing the sibling's.
            args=(path, f"drainer-{n}", counters, 1, 30.0),
        )
        for n in range(2)
    ]
    for p in drainers:
        p.start()
    for p in drainers:
        p.join(timeout=120)
        assert p.exitcode == 0

    tallies = {}
    while not counters.empty():
        owner, executed, failed = counters.get()
        tallies[owner] = (executed, failed)
    assert len(tallies) == 2
    # Exactly once each: executions across both drainers sum to the
    # cold-trial count, with nothing terminally failed or left queued.
    assert sum(e for e, _ in tallies.values()) == 8
    assert all(f == 0 for _, f in tallies.values())

    with ResultStore(path) as store:
        counts = store.queue_counts()
        assert counts["done"] == 8
        assert counts["pending"] == counts["running"] == 0
        assert counts["failed"] == 0
        assert all(store.has(key) for key in receipt.keys)
        concurrent_sig = series_signature(
            load_campaign_results(campaign, store)[0]
        )

    with ResultStore(tmp_path / "serial.db") as serial_store:
        run_campaign(campaign, serial_store, jobs=1)
        serial_sig = series_signature(
            load_campaign_results(campaign, serial_store)[0]
        )
    assert concurrent_sig == serial_sig


def test_dead_claimants_leases_expire_and_campaign_completes(tmp_path):
    campaign = make_campaign(seeds=[1, 2])
    path = tmp_path / "crash.db"
    receipt = plan(path, campaign)
    assert receipt.enqueued == 4

    with ResultStore(path) as store:
        # A worker claims every task, then "dies" without completing,
        # heartbeating or releasing anything.
        claimed = store.lease_tasks(
            "dead-worker", 4, lease_seconds=1.0
        )
        assert len(claimed) == 4

        executor = QueueExecutor(
            store,
            ExecutorConfig(
                jobs=1, batch_size=4, lease_seconds=30.0,
                poll_interval=0.05,
            ),
        )
        # While the dead worker's leases hold, nothing is runnable.
        assert executor.drain_once() == 0
        # After they lapse, the tasks re-dispatch to this executor.
        executor.drain(idle_timeout=2.0)
        assert executor.executed == 4
        status = ticket_status(receipt.ticket, store)
        assert status["state"] == "done"
        assert store.queue_counts()["failed"] == 0


def test_sigkilled_drainer_does_not_block_completion(tmp_path, mp_ctx):
    campaign = make_campaign(seeds=list(range(1, 13)))
    path = tmp_path / "killed.db"
    receipt = plan(path, campaign)
    total = receipt.enqueued
    assert total == 24

    counters = mp_ctx.SimpleQueue()
    victim = mp_ctx.Process(
        target=_drain,
        args=(path, "victim", counters, 2, 2.0),
    )
    victim.start()
    # Kill the drainer as soon as it has banked anything — mid-campaign,
    # typically holding live leases on its current batch.
    with ResultStore(path) as store:
        deadline = time.monotonic() + 60
        while len(store) == 0:
            assert time.monotonic() < deadline, "victim banked nothing"
            time.sleep(0.005)
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=10)
    assert victim.exitcode == -signal.SIGKILL

    with ResultStore(path) as store:
        survivor = QueueExecutor(
            store,
            ExecutorConfig(
                jobs=1, batch_size=4, lease_seconds=30.0,
                poll_interval=0.05,
            ),
        )
        # Idle window > the victim's 2s leases: orphaned running tasks
        # expire and re-dispatch before the survivor gives up.
        survivor.drain(idle_timeout=3.0)
        counts = store.queue_counts()
        assert counts["done"] == total
        assert counts["failed"] == 0
        assert all(store.has(key) for key in receipt.keys)
        assert ticket_status(receipt.ticket, store)["state"] == "done"
        # Folding still works on the jointly-produced store.
        series_list, _ = load_campaign_results(campaign, store)
        assert {s.label for s in series_list} == {"fifo-0.5", "dynamic"}
