"""Tests for the figure registry and its scale profiles.

These do not run the (expensive) figure computations; the benchmarks do
that.  Registry wiring, profile resolution and the output container are
covered here, plus one real end-to-end figure at a tiny custom profile.
"""

import pytest

from repro.core.sweep import Series
from repro.figures import (
    FIGURES,
    FULL,
    QUICK,
    compute_figure,
    resolve_profile,
    run_figure,
)
from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    check_le,
    check_ratio,
    multirouter_factory,
    skewed_factory,
)


def test_all_thirteen_figures_registered():
    paper_figures = [
        f for f in FIGURES if f.startswith("fig") and f[3:].isdigit()
    ]
    assert sorted(paper_figures) == [f"fig{i:02d}" for i in range(1, 14)]


def test_dataplane_figure_registered():
    assert "figdp01" in FIGURES
    assert "unreachab" in FIGURES["figdp01"].CAPTION.lower()


def test_ablations_registered():
    ablations = sorted(f for f in FIGURES if f.startswith("ab_"))
    assert ablations == [
        "ab_detection_delay",
        "ab_failure_geometry",
        "ab_flap_damping",
        "ab_future_work",
        "ab_high_degree_only",
        "ab_monitors",
        "ab_per_dest_mrai",
        "ab_policy_routing",
        "ab_processing",
        "ab_tcp_batch",
        "ab_withdrawal_rl",
    ]


def test_modules_expose_required_api():
    for fid, module in FIGURES.items():
        assert module.FIGURE_ID == fid
        assert isinstance(module.CAPTION, str) and module.CAPTION
        assert callable(module.compute)


def test_resolve_profile_explicit():
    assert resolve_profile("quick") is QUICK
    assert resolve_profile("full") is FULL
    with pytest.raises(ValueError):
        resolve_profile("bogus")


def test_resolve_profile_env(monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_SCALE", "full")
    assert resolve_profile(None) is FULL
    monkeypatch.delenv("REPRO_BENCH_SCALE")
    assert resolve_profile(None) is QUICK


def test_profiles_are_consistent():
    for profile in (QUICK, FULL):
        assert profile.fractions == tuple(sorted(profile.fractions))
        assert profile.mrai_grid == tuple(sorted(profile.mrai_grid))
        assert profile.dynamic_levels == tuple(sorted(profile.dynamic_levels))
        assert profile.seeds
        assert profile.smallest_fraction < profile.largest_fraction
        assert set(profile.mrai_three) <= set(profile.mrai_grid)


def test_full_profile_matches_paper_scale():
    assert FULL.nodes == 120
    assert FULL.mrai_three == (0.5, 1.25, 2.25)
    assert 0.20 in FULL.fractions
    assert 0.01 in FULL.fractions


def test_compute_figure_unknown_id():
    with pytest.raises(KeyError):
        compute_figure("fig99")


def test_factories_build_at_profile_scale():
    topo = skewed_factory(QUICK)(seed=1)
    assert topo.num_routers == QUICK.nodes
    multi = multirouter_factory(QUICK)(seed=1)
    assert len(multi.as_numbers()) == QUICK.multirouter_ases


def test_checks_render_and_classify():
    ok = Check("good", True, "detail")
    bad_soft = Check("meh", False, strict=False)
    bad_strict = Check("bad", False, "boom")
    assert "PASS" in str(ok)
    assert "soft-fail" in str(bad_soft)
    assert "FAIL" in str(bad_strict)

    out = FigureOutput(
        figure_id="figXX",
        caption="test",
        series=[],
        metrics=("delay",),
        checks=[ok, bad_soft],
    )
    assert out.strict_ok
    out.checks.append(bad_strict)
    assert not out.strict_ok
    assert out.failed_strict() == [bad_strict]


def test_check_helpers():
    assert check_ratio("r", 10.0, 2.0, minimum=4.0).passed
    assert not check_ratio("r", 10.0, 2.0, minimum=6.0).passed
    assert check_ratio("r", 1.0, 0.0, minimum=100.0).passed  # inf ratio
    assert check_le("le", 5.0, 4.0, slack=1.5).passed
    assert not check_le("le", 5.0, 4.0).passed


def test_end_to_end_tiny_figure():
    # A miniature profile proves a real compute() runs end to end quickly.
    tiny = ScaleProfile(
        name="tiny",
        nodes=20,
        seeds=(1,),
        fractions=(0.1, 0.3),
        mrai_grid=(0.5, 2.25),
        mrai_three=(0.5, 1.25, 2.25),
        dynamic_levels=(0.5, 2.25),
        fig3_fractions=(0.1, 0.3),
        multirouter_ases=8,
    )
    out = FIGURES["fig01"].compute(tiny)
    assert isinstance(out, FigureOutput)
    assert len(out.series) == 3
    assert all(isinstance(s, Series) for s in out.series)
    text = out.render()
    assert "fig01" in text
    assert "Shape checks:" in text
