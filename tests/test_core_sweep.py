"""Tests for sweeps and series."""

import pytest

from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import ExperimentSpec
from repro.core.sweep import (
    Series,
    failure_size_sweep,
    mrai_sweep,
    scheme_comparison,
)
from repro.topology.skewed import skewed_topology


def factory(seed):
    return skewed_topology(24, seed=seed)


def test_failure_size_sweep_structure():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5))
    series = failure_size_sweep(
        factory, spec, fractions=(0.1, 0.2), seeds=(1,), label="test"
    )
    assert series.label == "test"
    assert series.x_name == "failure_fraction"
    assert series.xs == [0.1, 0.2]
    assert len(series.delays) == 2
    assert all(d > 0 for d in series.delays)
    assert all(m > 0 for m in series.message_counts)


def test_failure_size_sweep_default_label_is_scheme_name():
    spec = ExperimentSpec(mrai=ConstantMRAI(1.25))
    series = failure_size_sweep(factory, spec, (0.1,), (1,))
    assert "1.25" in series.label


def test_mrai_sweep_overrides_policy():
    spec = ExperimentSpec(mrai=ConstantMRAI(99.0), failure_fraction=0.1)
    series = mrai_sweep(factory, spec, mrai_values=(0.5, 2.0), seeds=(1,))
    assert series.xs == [0.5, 2.0]
    assert series.x_name == "mrai"


def test_series_lookup_and_argmin():
    series = Series(label="s", x_name="x")

    class FakeResult:
        def __init__(self, delay, msgs):
            self.mean_delay = delay
            self.mean_messages = msgs

    series.add(1.0, FakeResult(10.0, 100))
    series.add(2.0, FakeResult(5.0, 50))
    series.add(3.0, FakeResult(7.0, 70))
    assert series.delay_at(2.0) == 5.0
    assert series.messages_at(3.0) == 70
    assert series.argmin_delay() == 2.0
    with pytest.raises(KeyError):
        series.delay_at(9.0)
    with pytest.raises(KeyError):
        series.messages_at(9.0)


def test_series_argmin_empty():
    with pytest.raises(ValueError):
        Series(label="s", x_name="x").argmin_delay()


def test_scheme_comparison_labels():
    specs = {
        "a": ExperimentSpec(mrai=ConstantMRAI(0.5)),
        "b": ExperimentSpec(mrai=ConstantMRAI(2.0)),
    }
    series_list = scheme_comparison(factory, specs, (0.1,), (1,))
    assert [s.label for s in series_list] == ["a", "b"]
