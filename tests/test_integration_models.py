"""Integration checks against the analytic models cited by the paper.

Labovitz et al. [5] showed that after a route withdrawal in a complete
graph of n nodes, BGP with per-peer rate limiting converges in at best
(n-3) x MRAI: each MRAI round retires one path length of stale backups.
Our simulator reproduces that bound *exactly* when withdrawals are subject
to the MRAI (the configuration Labovitz modeled).  With RFC-1771's
immediate withdrawals the cascade prunes stale paths at wire speed — the
very reason the RFC exempts withdrawals from the MRAI.

Griffin & Premore [7] showed delay grows linearly in the MRAI above the
optimum; that shape must emerge too.
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.sim.timers import Jitter
from tests.conftest import clique_topology


def clique_withdrawal_delay(
    n: int, mrai: float, rate_limit_withdrawals: bool, seed: int = 1
) -> float:
    """Convergence delay after the origin dies in a clique of n nodes.

    Deterministic setup: zero processing delay, unjittered timers.
    """
    config = BGPConfig(
        mrai_policy=ConstantMRAI(mrai),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        withdrawal_rate_limiting=rate_limit_withdrawals,
    )
    net = BGPNetwork(clique_topology(n), config, seed=seed)
    net.start()
    net.run_until_quiet()
    t0 = net.fail_nodes([0])
    net.run_until_quiet()
    for speaker in net.alive_speakers():
        assert 0 not in speaker.loc_rib.destinations()
    return net.last_activity - t0


@pytest.mark.parametrize("n", [4, 5, 6, 7, 8])
def test_labovitz_clique_bound_exact(n):
    """(n-3) x MRAI with rate-limited withdrawals, to within link delays."""
    mrai = 1.0
    delay = clique_withdrawal_delay(n, mrai, rate_limit_withdrawals=True)
    assert delay == pytest.approx((n - 3) * mrai, abs=0.1)


def test_labovitz_bound_scales_with_mrai():
    """Doubling the MRAI doubles the exploration time (linear regime)."""
    base = clique_withdrawal_delay(6, 1.0, rate_limit_withdrawals=True)
    double = clique_withdrawal_delay(6, 2.0, rate_limit_withdrawals=True)
    assert double == pytest.approx(2.0 * base, rel=0.05)


def test_immediate_withdrawals_collapse_exploration():
    """The RFC's MRAI exemption for withdrawals kills the (n-3) rounds:
    bad news travels at wire speed and stale paths are pruned before any
    MRAI-pending advertisement flushes."""
    limited = clique_withdrawal_delay(8, 1.0, rate_limit_withdrawals=True)
    immediate = clique_withdrawal_delay(8, 1.0, rate_limit_withdrawals=False)
    assert immediate < 0.2
    assert limited > 10 * immediate


def test_clique_exploration_generates_many_messages():
    """Path exploration, not just the withdrawal wave, drives messages."""
    config = BGPConfig(
        mrai_policy=ConstantMRAI(1.0),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        withdrawal_rate_limiting=True,
    )
    net = BGPNetwork(clique_topology(7), config, seed=1)
    net.start()
    net.run_until_quiet()
    snapshot = net.counters.snapshot()
    net.fail_nodes([0])
    net.run_until_quiet()
    diff = net.counters.diff(snapshot)
    survivors = 6
    # One clean withdrawal per session would be survivors*(survivors-1)
    # messages; exploration sends strictly more.
    assert diff["updates_sent"] > survivors * (survivors - 1)
