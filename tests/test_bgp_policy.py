"""Tests for routing policies (Gao-Rexford) and valley-free validation."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.policy import (
    CUSTOMER,
    PEER,
    PROVIDER,
    ASRelationships,
    GaoRexfordPolicy,
    ShortestPathPolicy,
    infer_relationships,
)
from repro.bgp.routes import Route
from repro.core.validation import (
    validate_gao_rexford,
    validate_routing,
    valley_free_prefixes,
)
from repro.sim.timers import Jitter
from repro.topology.graph import flat_topology_from_edges
from repro.topology.skewed import skewed_topology


# ---------------------------------------------------------------------------
# Relationships
# ---------------------------------------------------------------------------
def test_relationship_declaration_and_lookup():
    rels = ASRelationships()
    rels.set_customer(provider=1, customer=2)
    rels.set_peers(1, 3)
    assert rels.relation(1, 2) == CUSTOMER
    assert rels.relation(2, 1) == PROVIDER
    assert rels.relation(1, 3) == PEER
    assert rels.relation(3, 1) == PEER
    # Unlabeled adjacencies default to peering.
    assert rels.relation(7, 8) == PEER
    assert len(rels) == 2


def test_relationship_self_rejected():
    rels = ASRelationships()
    with pytest.raises(ValueError):
        rels.set_customer(1, 1)
    with pytest.raises(ValueError):
        rels.set_peers(2, 2)


def test_infer_relationships_degree_heuristic():
    # Star: hub 0 has degree 4, leaves have degree 1 -> hub is provider.
    topo = flat_topology_from_edges([(0, i) for i in range(1, 5)])
    rels = infer_relationships(topo)
    for leaf in range(1, 5):
        assert rels.relation(0, leaf) == CUSTOMER
        assert rels.relation(leaf, 0) == PROVIDER


def test_infer_relationships_similar_degrees_peer():
    topo = flat_topology_from_edges([(0, 1), (1, 2), (2, 0)])  # triangle
    rels = infer_relationships(topo)
    assert rels.relation(0, 1) == PEER


def test_infer_relationships_validation():
    topo = flat_topology_from_edges([(0, 1)])
    with pytest.raises(ValueError):
        infer_relationships(topo, peer_degree_ratio=0.5)


def test_hierarchical_inference_preserves_full_reachability():
    from repro.bgp.policy import infer_relationships_hierarchical

    topo = skewed_topology(40, seed=9)
    rels = infer_relationships_hierarchical(topo)
    net = run_policy_network(topo, rels, seed=2)
    expected = valley_free_prefixes(net, rels)
    assert all(len(p) == 40 for p in expected.values())
    validate_gao_rexford(net, rels)


def test_hierarchical_inference_tree_edges_are_provider_links():
    from repro.bgp.policy import infer_relationships_hierarchical

    # Star: hub must be the provider of every leaf.
    topo = flat_topology_from_edges([(0, i) for i in range(1, 5)])
    rels = infer_relationships_hierarchical(topo)
    for leaf in range(1, 5):
        assert rels.relation(0, leaf) == CUSTOMER


def test_hierarchical_inference_rejects_multirouter():
    from repro.bgp.policy import infer_relationships_hierarchical
    from repro.topology.multirouter import (
        MultiRouterSpec,
        multi_router_topology,
    )

    topo = multi_router_topology(MultiRouterSpec(num_ases=8), seed=1)
    with pytest.raises(ValueError):
        infer_relationships_hierarchical(topo)


# ---------------------------------------------------------------------------
# Policy rules
# ---------------------------------------------------------------------------
def sample_route(dest=9, path=(5, 9)):
    return Route(dest, path, peer=5)


def test_shortest_path_policy_allows_everything():
    policy = ShortestPathPolicy()
    assert policy.import_rank(1, 5, sample_route()) == 0
    assert policy.export_allowed(1, 5, 6)
    assert policy.export_allowed(1, None, 6)


def test_gao_rexford_import_ranks():
    rels = ASRelationships()
    rels.set_customer(provider=1, customer=2)   # 2 is 1's customer
    rels.set_customer(provider=3, customer=1)   # 3 is 1's provider
    rels.set_peers(1, 4)
    policy = GaoRexfordPolicy(rels)
    assert policy.import_rank(1, 2, sample_route()) == 0  # customer best
    assert policy.import_rank(1, 4, sample_route()) == 1  # then peer
    assert policy.import_rank(1, 3, sample_route()) == 2  # then provider


def test_gao_rexford_export_rules():
    rels = ASRelationships()
    rels.set_customer(provider=1, customer=2)
    rels.set_customer(provider=3, customer=1)
    rels.set_peers(1, 4)
    policy = GaoRexfordPolicy(rels)
    # Customer-learned: export to everyone.
    assert policy.export_allowed(1, learned_from_asn=2, to_asn=3)
    assert policy.export_allowed(1, learned_from_asn=2, to_asn=4)
    # Peer-learned: only to customers.
    assert policy.export_allowed(1, learned_from_asn=4, to_asn=2)
    assert not policy.export_allowed(1, learned_from_asn=4, to_asn=3)
    # Provider-learned: only to customers.
    assert policy.export_allowed(1, learned_from_asn=3, to_asn=2)
    assert not policy.export_allowed(1, learned_from_asn=3, to_asn=4)
    # Own prefixes: everyone.
    assert policy.export_allowed(1, learned_from_asn=None, to_asn=3)


def test_rank_dominates_path_length_in_decision():
    customer_route = Route(9, (2, 7, 9), peer=2, rank=0)  # longer, customer
    provider_route = Route(9, (3, 9), peer=3, rank=2)     # shorter, provider
    assert customer_route.better_than(provider_route)


# ---------------------------------------------------------------------------
# End-to-end valley-free behaviour
# ---------------------------------------------------------------------------
def valley_topology():
    """Two customer leaves (1, 2) under two providers (3, 4) that peer.

        3 ----peer---- 4
        |              |
        1              2
    """
    topo = flat_topology_from_edges([(1, 3), (2, 4), (3, 4)])
    rels = ASRelationships()
    rels.set_customer(provider=3, customer=1)
    rels.set_customer(provider=4, customer=2)
    rels.set_peers(3, 4)
    return topo, rels


def run_policy_network(topo, rels, seed=1):
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        policy=GaoRexfordPolicy(rels),
    )
    net = BGPNetwork(topo, config, seed=seed)
    net.start()
    net.run_until_quiet(max_time=3600)
    assert net.is_quiescent()
    return net


def test_valley_free_routing_end_to_end():
    topo, rels = valley_topology()
    net = run_policy_network(topo, rels)
    # Leaves reach everything by climbing then crossing the single peering.
    assert net.speakers[1].loc_rib.destinations() == {1, 2, 3, 4}
    # Providers must NOT route provider/peer traffic through customers, and
    # a peer-learned route is never re-exported to the other peer — all
    # fine here; the key: no valley paths exist anywhere.
    validate_gao_rexford(net, rels)


def test_peer_learned_route_not_reexported_to_peer():
    # Chain of peers: 0 -peer- 1 -peer- 2.  1 must not give 0's route to 2.
    topo = flat_topology_from_edges([(0, 1), (1, 2)])
    rels = ASRelationships()
    rels.set_peers(0, 1)
    rels.set_peers(1, 2)
    net = run_policy_network(topo, rels)
    assert 0 not in net.speakers[2].loc_rib.destinations()
    assert 2 not in net.speakers[0].loc_rib.destinations()
    # Direct neighbors still reach each other.
    assert 1 in net.speakers[0].loc_rib.destinations()
    validate_gao_rexford(net, rels)


def test_valley_free_prefixes_oracle_matches_protocol():
    topo = skewed_topology(30, seed=6)
    rels = infer_relationships(topo)
    net = run_policy_network(topo, rels)
    expected = valley_free_prefixes(net, rels)
    for speaker in net.alive_speakers():
        assert speaker.loc_rib.destinations() == expected[speaker.node_id]


def test_policy_network_survives_failure_and_validates():
    topo = skewed_topology(30, seed=6)
    rels = infer_relationships(topo)
    net = run_policy_network(topo, rels)
    net.fail_nodes(topo.nodes_by_distance(500, 500)[:4])
    net.run_until_quiet(max_time=3600)
    validate_gao_rexford(net, rels)


def test_policy_reduces_update_messages():
    topo = skewed_topology(30, seed=6)
    rels = infer_relationships(topo)

    def messages(policy):
        config = BGPConfig(
            mrai_policy=ConstantMRAI(0.5),
            processing_delay_range=(0.0, 0.0),
            mrai_jitter=Jitter.none(),
            policy=policy,
        )
        net = BGPNetwork(topo, config, seed=1)
        net.start()
        net.run_until_quiet(max_time=3600)
        return net.counters["updates_sent"]

    assert messages(GaoRexfordPolicy(rels)) < messages(None)


def test_valley_free_oracle_rejects_multirouter():
    from repro.topology.multirouter import MultiRouterSpec, multi_router_topology

    topo = multi_router_topology(MultiRouterSpec(num_ases=8), seed=1)
    net = BGPNetwork(topo, BGPConfig(), seed=1)
    with pytest.raises(ValueError):
        valley_free_prefixes(net, ASRelationships())
