"""Property-based tests for degree sequences and realization."""

import random
from collections import Counter

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.degree import (
    SkewedDegreeSpec,
    ensure_connectable,
    is_graphical,
    make_graphical,
    realize_degree_sequence,
)

degree_sequences = st.lists(
    st.integers(min_value=0, max_value=20), min_size=2, max_size=40
)


@given(degree_sequences)
def test_is_graphical_matches_networkx(sequence):
    assert is_graphical(sequence) == nx.is_graphical(sequence)


@given(degree_sequences)
def test_make_graphical_always_produces_graphical(sequence):
    fixed = make_graphical(sequence)
    assert is_graphical(fixed)
    assert len(fixed) == len(sequence)
    assert all(d >= 0 for d in fixed)


@given(degree_sequences)
def test_ensure_connectable_meets_edge_budget(sequence):
    thickened = ensure_connectable(sequence)
    assert sum(thickened) >= 2 * (len(thickened) - 1)
    # Only increases, never decreases.
    assert all(t >= s for t, s in zip(thickened, sequence))


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=6, max_value=40),
    st.integers(min_value=0, max_value=10_000),
)
def test_realized_skewed_topology_is_simple_and_connected(n, seed):
    rng = random.Random(seed)
    sequence = SkewedDegreeSpec.paper_70_30().sample(n, rng)
    edges = realize_degree_sequence(sequence, rng, connected=True)
    # Simple graph: no dupes, no self loops.
    assert len(edges) == len(set(edges))
    assert all(a != b for a, b in edges)
    # Connected.
    graph = nx.Graph(edges)
    graph.add_nodes_from(range(n))
    assert nx.is_connected(graph)
    # Degrees stay within the spec family's possible range (+1 for repair).
    degree = Counter()
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    assert all(1 <= degree[i] <= 9 for i in range(n))


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_realization_deterministic_for_seed(seed):
    def build():
        rng = random.Random(seed)
        seq = SkewedDegreeSpec.paper_70_30().sample(20, rng)
        return realize_degree_sequence(seq, rng, connected=True)

    assert build() == build()
