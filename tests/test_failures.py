"""Tests for failure scenario construction."""

import random

import pytest

from repro.failures.scenarios import (
    FailureScenario,
    geographic_failure,
    link_cut_failure,
    random_failure,
    single_node_failure,
)
from repro.topology.graph import flat_topology_from_edges
from repro.topology.skewed import skewed_topology


def grid_line_topology():
    positions = {i: (float(i * 100), 500.0) for i in range(10)}
    return flat_topology_from_edges(
        [(i, i + 1) for i in range(9)], positions=positions
    )


def test_geographic_failure_takes_closest_nodes():
    topo = grid_line_topology()
    scenario = geographic_failure(topo, 0.3, center=(0.0, 500.0))
    assert scenario.nodes == {0, 1, 2}
    assert scenario.kind == "geographic"
    assert scenario.size == 3
    assert scenario.fraction_of(topo) == pytest.approx(0.3)


def test_geographic_failure_default_center_is_grid_middle():
    topo = grid_line_topology()
    scenario = geographic_failure(topo, 0.1)
    # Node 5 at x=500 is the closest to (500, 500).
    assert scenario.nodes == {5}
    assert scenario.center == (500.0, 500.0)


def test_geographic_failure_is_contiguous_on_real_topology():
    topo = skewed_topology(60, seed=4)
    scenario = geographic_failure(topo, 0.2)
    assert scenario.size == 12
    # Contiguity: the failed set is exactly the k nearest to the center.
    ordered = topo.nodes_by_distance(500.0, 500.0)
    assert set(ordered[:12]) == scenario.nodes


def test_geographic_failure_at_least_one_node():
    topo = grid_line_topology()
    scenario = geographic_failure(topo, 0.001)
    assert scenario.size == 1


def test_geographic_failure_fraction_validation():
    topo = grid_line_topology()
    with pytest.raises(ValueError):
        geographic_failure(topo, 0.0)
    with pytest.raises(ValueError):
        geographic_failure(topo, 1.5)


def test_random_failure_size_and_membership():
    topo = grid_line_topology()
    scenario = random_failure(topo, 0.4, random.Random(3))
    assert scenario.size == 4
    assert scenario.nodes <= set(topo.node_ids())
    assert scenario.kind == "random"


def test_random_failure_deterministic_per_rng():
    topo = grid_line_topology()
    a = random_failure(topo, 0.4, random.Random(3))
    b = random_failure(topo, 0.4, random.Random(3))
    assert a.nodes == b.nodes


def test_random_failure_varies_with_rng():
    topo = skewed_topology(60, seed=4)
    a = random_failure(topo, 0.2, random.Random(1))
    b = random_failure(topo, 0.2, random.Random(2))
    assert a.nodes != b.nodes


def test_single_node_failure():
    topo = grid_line_topology()
    scenario = single_node_failure(topo, 7)
    assert scenario.nodes == {7}
    with pytest.raises(ValueError):
        single_node_failure(topo, 99)


def test_scenario_requires_nodes():
    with pytest.raises(ValueError):
        FailureScenario(nodes=frozenset(), kind="x")


def test_link_cut_failure_internal_links_only():
    topo = grid_line_topology()
    cuts = link_cut_failure(topo, 0.3, center=(0.0, 500.0))
    # Failed region = {0,1,2}; links fully inside it: 0-1 and 1-2.
    assert sorted(cuts) == [(0, 1), (1, 2)]


# ----------------------------------------------------------------------
# Guards: empty / too-small topologies fail loudly, not cryptically
# ----------------------------------------------------------------------
def test_empty_topology_rejected_everywhere():
    from repro.topology.graph import Topology

    empty = Topology()
    with pytest.raises(ValueError, match="empty topology"):
        geographic_failure(empty, 0.1)
    with pytest.raises(ValueError, match="empty topology"):
        random_failure(empty, 0.1, random.Random(1))


def test_fraction_of_empty_topology_rejected():
    from repro.topology.graph import Topology

    topo = grid_line_topology()
    scenario = single_node_failure(topo, 3)
    assert scenario.fraction_of(topo) == pytest.approx(0.1)
    with pytest.raises(ValueError, match="empty topology"):
        scenario.fraction_of(Topology())


def test_random_failure_on_tiny_topology_still_works():
    # A fraction that rounds below one node must fail one node, not zero
    # (and never more nodes than exist).
    from repro.topology.graph import Router, Topology

    tiny = Topology()
    tiny.add_router(Router(node_id=0, asn=0, x=0.0, y=0.0))
    scenario = random_failure(tiny, 0.01, random.Random(1))
    assert scenario.nodes == {0}
    geo = geographic_failure(tiny, 1.0, center=(0.0, 0.0))
    assert geo.nodes == {0}
