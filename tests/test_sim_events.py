"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue


def test_push_pop_ordering_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, (3,))
    q.push(1.0, fired.append, (1,))
    q.push(2.0, fired.append, (2,))
    times = [q.pop().time for _ in range(3)]
    assert times == [1.0, 2.0, 3.0]


def test_same_time_fires_in_scheduling_order():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    second = q.push(1.0, lambda: None)
    third = q.push(1.0, lambda: None)
    assert q.pop() is first
    assert q.pop() is second
    assert q.pop() is third


def test_priority_breaks_time_ties():
    q = EventQueue()
    low = q.push(1.0, lambda: None, priority=5)
    high = q.push(1.0, lambda: None, priority=-5)
    assert q.pop() is high
    assert q.pop() is low


def test_len_excludes_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    q.note_cancelled(e1)
    assert len(q) == 1


def test_cancelled_events_are_skipped_on_pop():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    e2 = q.push(2.0, lambda: None)
    q.note_cancelled(e1)
    assert q.pop() is e2


def test_pop_empty_raises():
    q = EventQueue()
    with pytest.raises(IndexError):
        q.pop()


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.note_cancelled(e1)
    assert q.peek_time() == 2.0


def test_peek_time_empty_is_none():
    q = EventQueue()
    assert q.peek_time() is None


def test_bool_reflects_live_events():
    q = EventQueue()
    assert not q
    e = q.push(1.0, lambda: None)
    assert q
    q.note_cancelled(e)
    assert not q


def test_clear():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.peek_time() is None


def test_compact_removes_garbage():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(100)]
    for e in events[:50]:
        q.note_cancelled(e)
    q.compact()
    assert len(q) == 50
    assert q.pop().time == 50.0


def test_iter_pending_excludes_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    e2 = q.push(2.0, lambda: None)
    q.note_cancelled(e1)
    pending = list(q.iter_pending())
    assert pending == [e2]


def test_event_cancel_is_idempotent():
    e = Event(1.0, 0, 0, lambda: None, ())
    e.cancel()
    e.cancel()
    assert e.cancelled


def test_auto_compaction_under_heavy_cancellation():
    q = EventQueue()
    q.MIN_COMPACT_SIZE = 8
    live = q.push(100.0, lambda: None)
    for i in range(64):
        e = q.push(float(i), lambda: None)
        q.note_cancelled(e)
    assert len(q) == 1
    assert q.pop() is live
