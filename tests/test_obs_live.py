"""Live telemetry: monitor, heartbeat stream, default hook, campaign watch."""

import io
import json

import pytest

from repro.core.experiment import Progress
from repro.obs.live import (
    LiveMonitor,
    default_progress,
    last_heartbeat,
    live_progress,
    watch_campaign,
)


def _tick(done, total, elapsed=10.0, busy=0.0, failed=0, label="t"):
    return Progress(
        done=done,
        total=total,
        elapsed=elapsed,
        label=label,
        busy_seconds=busy,
        failed=failed,
    )


# ----------------------------------------------------------------------
# LiveMonitor
# ----------------------------------------------------------------------
def test_monitor_status_line_and_renders():
    out = io.StringIO()
    mon = LiveMonitor(jobs=4, stream=out)
    mon(_tick(3, 10, elapsed=10.0, busy=20.0))
    line = mon.status_line()
    assert "[3/10]" in line
    assert "util 50%" in line  # 20 busy / (10 elapsed * 4 jobs)
    assert "elapsed 10s" in line
    assert mon.renders == 1
    assert "[3/10]" in out.getvalue()
    mon.finish()


def test_monitor_eta_uses_trial_wall_times():
    mon = LiveMonitor(jobs=2, stream=None)
    # 4 done, 6 to go, 8s of simulation over 4 trials = 2 s/trial; two
    # workers halve it: 6 * 2 / 2 = 6s.
    mon(_tick(4, 10, elapsed=100.0, busy=8.0))
    assert mon.eta_seconds() == pytest.approx(6.0)
    # Without wall times it falls back to the tick's elapsed/done ETA.
    mon2 = LiveMonitor(jobs=2, stream=None)
    tick = _tick(4, 10, elapsed=8.0, busy=0.0)
    mon2(tick)
    assert mon2.eta_seconds() == pytest.approx(tick.eta)


def test_monitor_eta_first_heartbeat_has_no_estimate():
    """Zero completed trials / zero busy seconds must not divide by zero
    or fabricate an ETA on the first heartbeat."""
    mon = LiveMonitor(jobs=2, stream=None)
    mon(_tick(0, 10, elapsed=0.0, busy=0.0))
    assert mon.eta_seconds() == float("inf")
    assert mon.snapshot()["eta_seconds"] is None
    assert "eta ?" in mon.status_line()


def test_monitor_eta_finished_run_is_zero():
    mon = LiveMonitor(jobs=2, stream=None)
    mon(_tick(10, 10, elapsed=5.0, busy=4.0))
    assert mon.eta_seconds() == 0.0


def test_monitor_eta_all_cached_with_stray_busy_seconds():
    """busy_seconds > 0 with zero *executed* trials (everything was a
    cache hit) must not extrapolate from a zero divisor; it falls back
    to the tick's elapsed/done estimate."""

    class _Session:
        cache_hits = 3
        cache_misses = 0

    mon = LiveMonitor(jobs=2, stream=None, session=_Session())
    tick = _tick(3, 10, elapsed=1.0, busy=5.0)
    mon(tick)
    assert mon.eta_seconds() == pytest.approx(tick.eta)


def test_monitor_failed_and_no_stream():
    mon = LiveMonitor(jobs=1, stream=None)
    mon(_tick(2, 5, failed=3))
    assert mon.failed == 3
    assert "failed 3" in mon.status_line()
    mon.finish()  # no stream: must not raise


def test_monitor_heartbeat_jsonl(tmp_path):
    hb = tmp_path / "hb.jsonl"
    with LiveMonitor(jobs=2, stream=None, heartbeat=hb) as mon:
        mon(_tick(1, 4, elapsed=5.0, busy=3.0))
        mon(_tick(2, 4, elapsed=6.0, busy=6.0))
    lines = hb.read_text(encoding="utf-8").splitlines()
    assert len(lines) == 2
    records = [json.loads(line) for line in lines]
    assert [r["done"] for r in records] == [1, 2]
    last = records[-1]
    assert last["kind"] == "heartbeat"
    assert last["total"] == 4
    assert last["jobs"] == 2
    assert last["busy_seconds"] == pytest.approx(6.0)
    assert last["utilization"] == pytest.approx(0.5)
    assert last["eta_seconds"] is not None


def test_last_heartbeat_tolerates_truncated_tail(tmp_path):
    hb = tmp_path / "hb.jsonl"
    hb.write_text(
        json.dumps({"done": 1}) + "\n" + '{"done": 2, "trunc',
        encoding="utf-8",
    )
    assert last_heartbeat(hb) == {"done": 1}
    assert last_heartbeat(tmp_path / "missing.jsonl") is None
    (tmp_path / "empty.jsonl").write_text("", encoding="utf-8")
    assert last_heartbeat(tmp_path / "empty.jsonl") is None


def test_monitor_interval_throttles_but_final_tick_renders():
    mon = LiveMonitor(jobs=1, stream=None, interval=3600.0)
    mon(_tick(1, 3))
    mon(_tick(2, 3))  # inside the interval: suppressed
    assert mon.renders == 1
    mon(_tick(3, 3))  # final tick always renders
    assert mon.renders == 2


# ----------------------------------------------------------------------
# Process-wide default hook
# ----------------------------------------------------------------------
def test_live_progress_scoping():
    assert default_progress() is None
    seen = []
    with live_progress(seen.append) as installed:
        assert default_progress() is installed
        with live_progress(lambda p: None):
            assert default_progress() is not installed
        assert default_progress() is installed
    assert default_progress() is None


def test_run_trials_uses_default_progress():
    from repro.bgp.mrai import ConstantMRAI
    from repro.core.experiment import ExperimentSpec, run_trials
    from repro.topology.skewed import skewed_topology

    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.2)
    ticks = []
    with live_progress(ticks.append):
        run_trials(
            lambda s: skewed_topology(10, seed=s), spec, [1, 2], jobs=1
        )
    assert [t.done for t in ticks] == [1, 2]
    assert ticks[-1].busy_seconds > 0.0


# ----------------------------------------------------------------------
# Campaign watch
# ----------------------------------------------------------------------
def _campaign(store_path, seeds):
    from repro.store.campaign import Campaign

    return Campaign(
        name="watch-unit",
        topology={"kind": "skewed", "nodes": 24, "distribution": "70-30"},
        schemes={"fifo-0.5": {"mrai": 0.5}},
        axis="failure_fraction",
        values=[0.1],
        seeds=seeds,
        store_path=str(store_path),
    )


def test_watch_campaign_finished_and_in_flight(tmp_path):
    from repro.store.campaign import run_campaign
    from repro.store.result_store import ResultStore

    store_path = tmp_path / "store.db"
    done = _campaign(store_path, seeds=[1, 2])
    with ResultStore(store_path) as store:
        run_campaign(done, store)
        finished = watch_campaign(done, store)
        assert "100%" in finished
        assert "(2/2 trials cached)" in finished
        assert finished.splitlines()[-1] == "status: complete"

        # A larger grid against the same store is "in flight": the two
        # banked trials are cached, the third is still to go.
        bigger = _campaign(store_path, seeds=[1, 2, 3])
        inflight = watch_campaign(bigger, store)
        assert "(2/3 trials cached)" in inflight
        assert inflight.splitlines()[-1] == (
            "status: in flight (1 trials to go)"
        )


def test_watch_campaign_heartbeat_line(tmp_path):
    from repro.store.campaign import run_campaign
    from repro.store.result_store import ResultStore

    store_path = tmp_path / "store.db"
    campaign = _campaign(store_path, seeds=[1])
    hb = tmp_path / "hb.jsonl"
    with ResultStore(store_path) as store:
        with LiveMonitor(jobs=1, stream=None, heartbeat=hb) as mon:
            with live_progress(mon):
                run_campaign(campaign, store)
        rendered = watch_campaign(campaign, store, heartbeat=hb)
        missing = watch_campaign(
            campaign, store, heartbeat=tmp_path / "none.jsonl"
        )
    assert "heartbeat (" in rendered
    assert "util" in rendered
    assert "no records yet" in missing


def test_cli_campaign_watch(tmp_path, capsys):
    from repro.cli import main

    store = tmp_path / "store.db"
    data = {
        "name": "watch-cli",
        "topology": {"kind": "skewed", "nodes": 24,
                     "distribution": "70-30"},
        "schemes": {"fifo-0.5": {"mrai": 0.5}},
        "axis": {"name": "failure_fraction", "values": [0.1]},
        "seeds": [1, 2],
        "store": str(store),
    }
    cfile = tmp_path / "campaign.json"
    cfile.write_text(json.dumps(data), encoding="utf-8")

    # No store yet: reported as not started, exit 1.
    assert main(["campaign", "watch", str(cfile)]) == 1
    assert "does not exist yet" in capsys.readouterr().out

    hb = tmp_path / "hb.jsonl"
    assert main(
        ["campaign", "run", str(cfile), "--heartbeat", str(hb)]
    ) == 0
    capsys.readouterr()
    assert hb.exists()

    # Finished grid: complete, exit 0 (with the heartbeat line shown).
    code = main(
        ["campaign", "watch", str(cfile), "--heartbeat", str(hb)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "status: complete" in out
    assert "heartbeat (" in out

    # In-flight grid (more seeds than the store has banked): exit 1.
    data["seeds"] = [1, 2, 3, 4]
    cfile.write_text(json.dumps(data), encoding="utf-8")
    code = main(["campaign", "watch", str(cfile)])
    out = capsys.readouterr().out
    assert code == 1
    assert "status: in flight (2 trials to go)" in out
    assert "2/4 trials cached" in out
