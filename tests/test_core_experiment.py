"""Tests for the experiment driver."""

import pytest

from repro.bgp.mrai import ConstantMRAI
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    TrialResult,
    build_scenario,
    run_experiment,
    run_trials,
)
from repro.failures.scenarios import single_node_failure
from repro.topology.skewed import skewed_topology
from tests.conftest import ring_topology


def small_topo(seed=3):
    return skewed_topology(30, seed=seed)


def test_run_experiment_produces_sane_measurements():
    spec = ExperimentSpec(
        mrai=ConstantMRAI(0.5), failure_fraction=0.1, validate=True
    )
    result = run_experiment(small_topo(), spec, seed=1)
    assert result.convergence_delay > 0
    assert result.messages_sent > 0
    assert result.failure_size == 3
    assert result.warmup_time > 0
    assert result.warmup_messages > 0
    assert not result.truncated
    assert result.withdrawals_sent > 0
    assert result.updates_processed <= result.messages_sent


def test_run_experiment_deterministic():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    a = run_experiment(small_topo(), spec, seed=5)
    b = run_experiment(small_topo(), spec, seed=5)
    assert a == b


def test_run_experiment_custom_scenario():
    topo = ring_topology(6)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5))
    scenario = single_node_failure(topo, 2)
    result = run_experiment(topo, spec, seed=1, scenario=scenario)
    assert result.failure_size == 1


def test_run_experiment_batching_drops_stale_under_load():
    spec = ExperimentSpec(
        mrai=ConstantMRAI(0.25),
        queue_discipline="dest_batch",
        failure_fraction=0.2,
    )
    result = run_experiment(small_topo(), spec, seed=1)
    assert result.stale_dropped > 0


def test_run_experiment_fifo_never_drops_stale():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.25), failure_fraction=0.2)
    result = run_experiment(small_topo(), spec, seed=1)
    assert result.stale_dropped == 0


def test_spec_validation():
    with pytest.raises(ValueError):
        ExperimentSpec(failure_fraction=0.0)
    with pytest.raises(ValueError):
        ExperimentSpec(failure_fraction=0.9)
    with pytest.raises(ValueError):
        ExperimentSpec(failure_kind="bogus")


def test_spec_with_replaces_fields():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.05)
    other = spec.with_(failure_fraction=0.2)
    assert other.failure_fraction == 0.2
    assert other.mrai is spec.mrai
    assert spec.failure_fraction == 0.05  # original untouched


def test_spec_to_bgp_config_round_trip():
    spec = ExperimentSpec(
        mrai=DynamicMRAI(),
        queue_discipline="dest_batch",
        per_destination_mrai=True,
        withdrawal_rate_limiting=True,
    )
    config = spec.to_bgp_config()
    assert config.queue_discipline == "dest_batch"
    assert config.per_destination_mrai
    assert config.withdrawal_rate_limiting
    assert config.mrai_policy is spec.mrai


def test_build_scenario_geographic_vs_random():
    topo = small_topo()
    geo_spec = ExperimentSpec(failure_fraction=0.1)
    geo = build_scenario(topo, geo_spec, seed=1)
    assert geo.kind == "geographic"
    rand_spec = ExperimentSpec(failure_fraction=0.1, failure_kind="random")
    rand = build_scenario(topo, rand_spec, seed=1)
    assert rand.kind == "random"
    assert rand.size == geo.size


def test_run_trials_aggregates():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    result = run_trials(small_topo, spec, seeds=(1, 2, 3))
    assert result.n == 3
    assert result.mean_delay > 0
    assert result.mean_messages > 0
    assert result.delay.n == 3
    lo, hi = result.delay.confidence_interval95()
    assert lo <= result.mean_delay <= hi
    assert "3 trials" in str(result)


def test_run_trials_fixed_topology():
    topo = small_topo()
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    result = run_trials(lambda seed: topo, spec, seeds=(1, 2))
    assert result.n == 2
    # Same topology, different protocol seeds: delays differ.
    delays = [t.convergence_delay for t in result.trials]
    assert delays[0] != delays[1]


def test_trial_result_str():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    result = run_experiment(small_topo(), spec, seed=1)
    text = str(result)
    assert "delay=" in text
    assert "msgs=" in text


def test_experiment_result_empty_stats():
    result = ExperimentResult(spec=ExperimentSpec())
    assert result.n == 0
    assert result.mean_delay == 0.0


def test_trial_result_records_wall_clock_phases():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    result = run_experiment(small_topo(), spec, seed=1)
    assert result.warmup_wall > 0.0
    assert result.convergence_wall > 0.0


def test_experiment_result_wall_clock_aggregates():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    result = run_trials(small_topo, spec, seeds=(1, 2))
    assert result.warmup_wall.n == 2
    assert result.convergence_wall.n == 2
    assert result.total_wall == pytest.approx(
        sum(t.warmup_wall + t.convergence_wall for t in result.trials)
    )


def test_experiment_result_merge():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    a = run_trials(small_topo, spec, seeds=(1, 2))
    b = run_trials(small_topo, spec, seeds=(3,))
    merged = a.merge(b)
    assert merged.n == 3
    assert [t.seed for t in merged.trials] == [1, 2, 3]
    # Merged accumulators match a re-streamed computation exactly.
    delays = [t.convergence_delay for t in merged.trials]
    assert merged.mean_delay == pytest.approx(sum(delays) / 3)
    assert merged.delay.minimum == min(delays)
    assert merged.delay.maximum == max(delays)
    # Operands are untouched.
    assert a.n == 2 and b.n == 1


def test_experiment_result_merge_rejects_spec_mismatch():
    spec_a = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    spec_b = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.2)
    a = ExperimentResult(spec=spec_a)
    b = ExperimentResult(spec=spec_b)
    with pytest.raises(ValueError):
        a.merge(b)


def test_run_trials_progress_callback():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    ticks = []
    run_trials(small_topo, spec, seeds=(1, 2), progress=ticks.append)
    assert [(p.done, p.total) for p in ticks] == [(1, 2), (2, 2)]
    assert ticks[0].eta >= 0.0
    assert ticks[-1].fraction == 1.0
    assert "[2/2]" in str(ticks[-1])
