"""Unit tests for the flat-topology generators."""

import pytest

from repro.topology.barabasi_albert import barabasi_albert_topology
from repro.topology.degree import SkewedDegreeSpec
from repro.topology.glp import glp_topology
from repro.topology.graph import GRID_SIZE
from repro.topology.internet import internet_like_topology
from repro.topology.skewed import skewed_topology
from repro.topology.waxman import waxman_topology

GENERATORS = [
    lambda seed: skewed_topology(40, seed=seed),
    lambda seed: internet_like_topology(40, seed=seed),
    lambda seed: waxman_topology(40, seed=seed),
    lambda seed: barabasi_albert_topology(40, seed=seed),
    lambda seed: glp_topology(40, seed=seed),
]


@pytest.mark.parametrize("generator", GENERATORS)
def test_generators_produce_valid_connected_graphs(generator):
    topo = generator(3)
    topo.validate()
    assert topo.is_connected()
    assert topo.num_routers == 40
    assert topo.is_flat()


@pytest.mark.parametrize("generator", GENERATORS)
def test_generators_are_deterministic_per_seed(generator):
    a = generator(5)
    b = generator(5)
    assert sorted(l.endpoints() for l in a.links) == sorted(
        l.endpoints() for l in b.links
    )
    assert {n: (r.x, r.y) for n, r in a.routers.items()} == {
        n: (r.x, r.y) for n, r in b.routers.items()
    }


@pytest.mark.parametrize("generator", GENERATORS)
def test_generators_vary_with_seed(generator):
    a = generator(1)
    b = generator(2)
    assert sorted(l.endpoints() for l in a.links) != sorted(
        l.endpoints() for l in b.links
    )


@pytest.mark.parametrize("generator", GENERATORS)
def test_positions_inside_grid(generator):
    topo = generator(4)
    for router in topo.routers.values():
        assert 0.0 <= router.x <= GRID_SIZE
        assert 0.0 <= router.y <= GRID_SIZE


def test_skewed_70_30_degree_shape():
    topo = skewed_topology(100, SkewedDegreeSpec.paper_70_30(), seed=9)
    hist = topo.degree_histogram()
    # ~30% of nodes should sit at (or within one of) the high degree 8.
    high = sum(count for deg, count in hist.items() if deg >= 7)
    assert 20 <= high <= 40
    assert 3.0 <= topo.average_degree() <= 4.6


def test_skewed_average_degree_matches_spec():
    spec = SkewedDegreeSpec.paper_50_50_dense()
    topo = skewed_topology(80, spec, seed=2)
    assert topo.average_degree() == pytest.approx(
        spec.expected_average_degree(), rel=0.15
    )


def test_skewed_custom_link_delay():
    topo = skewed_topology(20, seed=1, link_delay=0.01)
    assert all(link.delay == 0.01 for link in topo.links)


def test_internet_like_max_degree_capped():
    topo = internet_like_topology(120, seed=7)
    assert max(topo.degree_sequence()) <= 40


def test_waxman_parameter_validation():
    with pytest.raises(ValueError):
        waxman_topology(1)
    with pytest.raises(ValueError):
        waxman_topology(10, alpha=0.0)
    with pytest.raises(ValueError):
        waxman_topology(10, beta=-1.0)


def test_barabasi_albert_parameter_validation():
    with pytest.raises(ValueError):
        barabasi_albert_topology(2)
    with pytest.raises(ValueError):
        barabasi_albert_topology(10, m=0)
    with pytest.raises(ValueError):
        barabasi_albert_topology(10, m=10)


def test_barabasi_albert_minimum_degree_is_m():
    topo = barabasi_albert_topology(50, m=2, seed=3)
    assert min(topo.degree_sequence()) >= 2


def test_barabasi_albert_has_heavy_tail():
    topo = barabasi_albert_topology(200, m=2, seed=3)
    degrees = topo.degree_sequence()
    assert degrees[0] >= 3 * degrees[len(degrees) // 2]


def test_glp_parameter_validation():
    with pytest.raises(ValueError):
        glp_topology(2)
    with pytest.raises(ValueError):
        glp_topology(10, m=0)
    with pytest.raises(ValueError):
        glp_topology(10, p=1.0)
    with pytest.raises(ValueError):
        glp_topology(10, beta=1.0)


def test_glp_produces_requested_node_count():
    topo = glp_topology(60, seed=4)
    assert topo.num_routers == 60


def test_custom_name():
    topo = skewed_topology(20, seed=1, name="my-topo")
    assert topo.name == "my-topo"
