"""Unit tests for multi-router-per-AS topologies and placement helpers."""

import random

import pytest

from repro.topology.graph import GRID_SIZE
from repro.topology.multirouter import MultiRouterSpec, multi_router_topology
from repro.topology.placement import (
    place_on_grid,
    place_within_region,
    region_extent_for_size,
)


def test_spec_validation():
    with pytest.raises(ValueError):
        MultiRouterSpec(num_ases=2)
    with pytest.raises(ValueError):
        MultiRouterSpec(min_routers_per_as=0)
    with pytest.raises(ValueError):
        MultiRouterSpec(min_routers_per_as=5, max_routers_per_as=2)
    with pytest.raises(ValueError):
        MultiRouterSpec(pareto_alpha=0.0)
    with pytest.raises(ValueError):
        MultiRouterSpec(intra_as_chord_fraction=1.5)


def test_as_size_sampling_bounds():
    spec = MultiRouterSpec(min_routers_per_as=1, max_routers_per_as=10)
    rng = random.Random(1)
    sizes = [spec.sample_as_size(rng) for _ in range(500)]
    assert all(1 <= s <= 10 for s in sizes)
    # Heavy-tailed: small ASes dominate.
    assert sizes.count(1) > sizes.count(10)


def test_as_size_degenerate_range():
    spec = MultiRouterSpec(min_routers_per_as=3, max_routers_per_as=3)
    assert spec.sample_as_size(random.Random(0)) == 3


def test_multi_router_topology_structure():
    topo = multi_router_topology(MultiRouterSpec(num_ases=20), seed=5)
    topo.validate()
    assert len(topo.as_numbers()) == 20
    assert topo.num_routers >= 20
    assert not topo.is_flat() or topo.num_routers == 20
    # Link kinds are consistent with AS membership.
    for link in topo.links:
        same_as = topo.as_of(link.a) == topo.as_of(link.b)
        if link.kind == "intra_as":
            assert same_as
        else:
            assert not same_as


def test_every_as_internally_connected():
    topo = multi_router_topology(MultiRouterSpec(num_ases=15), seed=7)
    for asn in topo.as_numbers():
        members = set(topo.as_members(asn))
        if len(members) == 1:
            continue
        # BFS restricted to intra-AS links.
        adj = {m: set() for m in members}
        for link in topo.links:
            if link.kind == "intra_as" and link.a in members:
                adj[link.a].add(link.b)
                adj[link.b].add(link.a)
        start = next(iter(members))
        seen = {start}
        stack = [start]
        while stack:
            v = stack.pop()
            for u in adj[v]:
                if u not in seen:
                    seen.add(u)
                    stack.append(u)
        assert seen == members, f"AS {asn} not internally connected"


def test_largest_ases_get_highest_degrees():
    topo = multi_router_topology(MultiRouterSpec(num_ases=25), seed=3)
    sizes = {asn: len(topo.as_members(asn)) for asn in topo.as_numbers()}
    degrees = {asn: topo.inter_as_degree(asn) for asn in topo.as_numbers()}
    largest = max(sizes, key=lambda a: (sizes[a], -a))
    smallest = min(sizes, key=lambda a: (sizes[a], a))
    if sizes[largest] > sizes[smallest]:
        assert degrees[largest] >= degrees[smallest]


def test_determinism():
    a = multi_router_topology(MultiRouterSpec(num_ases=12), seed=9)
    b = multi_router_topology(MultiRouterSpec(num_ases=12), seed=9)
    assert sorted(l.endpoints() for l in a.links) == sorted(
        l.endpoints() for l in b.links
    )


# ---------------------------------------------------------------------------
# Placement helpers
# ---------------------------------------------------------------------------
def test_place_on_grid_bounds_and_determinism():
    rng = random.Random(4)
    positions = place_on_grid([3, 1, 2], rng)
    assert set(positions) == {1, 2, 3}
    for x, y in positions.values():
        assert 0 <= x <= GRID_SIZE
        assert 0 <= y <= GRID_SIZE
    again = place_on_grid([3, 1, 2], random.Random(4))
    assert positions == again


def test_place_within_region_clips_to_grid():
    rng = random.Random(1)
    positions = place_within_region([0, 1], (0.0, 0.0), 100.0, rng)
    for x, y in positions.values():
        assert 0 <= x <= 100.0
        assert 0 <= y <= 100.0


def test_region_extent_proportional_to_size():
    small = region_extent_for_size(1, 100)
    large = region_extent_for_size(64, 100)
    assert large > small
    # Area scales linearly with size -> extent with sqrt(size).
    assert large / small == pytest.approx(8.0, rel=0.01)


def test_region_extent_validation():
    with pytest.raises(ValueError):
        region_extent_for_size(0, 10)
