"""Tests for resumable campaigns (repro.store.campaign).

Headline properties: a resumed campaign executes exactly the missing
trials; cached, fresh, serial and pooled runs fold bit-identically to a
plain uncached sweep; worker failures retry per-trial instead of
aborting siblings; and export refuses partial grids.
"""

import sqlite3

import pytest

import repro.store.campaign as campaign_mod
from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import ExperimentSpec
from repro.core.sweep import failure_size_sweep
from repro.obs.session import ObsSession
from repro.store import (
    Campaign,
    CampaignError,
    ResultStore,
    RetryPolicy,
    build_spec,
    campaign_status,
    load_campaign_results,
    run_campaign,
)
from repro.topology.skewed import skewed_topology

CAMPAIGN = {
    "name": "unit",
    "topology": {"kind": "skewed", "nodes": 24, "distribution": "70-30"},
    "schemes": {
        "fifo-0.5": {"mrai": 0.5},
        "dynamic": {"mrai_scheme": "dynamic", "levels": [0.5, 1.25, 2.25]},
    },
    "axis": {"name": "failure_fraction", "values": [0.1, 0.2]},
    "seeds": [1, 2],
}


def make_campaign(**overrides):
    data = dict(CAMPAIGN)
    data.update(overrides)
    return Campaign.from_dict(data)


def series_signature(series_list):
    return sorted(
        (s.label, s.delays, s.message_counts) for s in series_list
    )


def delete_trials(store, count):
    conn = sqlite3.connect(str(store.path))
    conn.execute(
        "DELETE FROM trials WHERE key IN "
        f"(SELECT key FROM trials LIMIT {count})"
    )
    conn.commit()
    conn.close()


@pytest.fixture()
def store(tmp_path):
    with ResultStore(tmp_path / "store.db") as s:
        yield s


# ----------------------------------------------------------------------
# Declarative round trip and validation
# ----------------------------------------------------------------------
def test_campaign_roundtrips_through_json(tmp_path):
    campaign = make_campaign(store="results/x.db")
    path = campaign.save(tmp_path / "c.json")
    loaded = Campaign.from_file(path)
    assert loaded.to_dict() == campaign.to_dict()
    assert loaded.store_path == "results/x.db"


def test_seeds_expand_from_master_count():
    a = make_campaign(seeds={"master": 7, "count": 3})
    b = make_campaign(seeds={"master": 7, "count": 3})
    assert a.seeds == b.seeds
    assert len(set(a.seeds)) == 3
    assert a.seeds != make_campaign(seeds={"master": 8, "count": 3}).seeds


def test_tasks_enumerate_in_scheme_x_seed_order():
    campaign = make_campaign()
    tasks = campaign.tasks()
    assert len(tasks) == campaign.total_trials == 8
    assert [t.ordinal for t in tasks] == list(range(8))
    assert [(t.label, t.x, t.seed) for t in tasks[:4]] == [
        ("fifo-0.5", 0.1, 1),
        ("fifo-0.5", 0.1, 2),
        ("fifo-0.5", 0.2, 1),
        ("fifo-0.5", 0.2, 2),
    ]


@pytest.mark.parametrize(
    "overrides, match",
    [
        ({"axis": {"name": "bogus", "values": [1]}}, "unknown axis"),
        ({"schemes": {}}, "at least one scheme"),
        ({"seeds": []}, "at least one seed"),
        ({"axis": {"name": "failure_fraction", "values": []}}, "axis value"),
    ],
)
def test_campaign_validation(overrides, match):
    with pytest.raises(ValueError, match=match):
        make_campaign(**overrides)


def test_build_spec_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown scheme keys"):
        build_spec({"mrai": 0.5, "mria": 2.0})
    with pytest.raises(ValueError, match="unknown mrai_scheme"):
        build_spec({"mrai_scheme": "quantum"})


def test_topology_factory_rejects_unknowns():
    with pytest.raises(ValueError, match="unknown distribution"):
        make_campaign(
            topology={"kind": "skewed", "nodes": 24, "distribution": "99-1"}
        ).topology_factory()
    with pytest.raises(ValueError, match="unknown topology kind"):
        make_campaign(topology={"kind": "torus"}).topology_factory()


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# ----------------------------------------------------------------------
# Run / resume / warm: only the missing trials execute
# ----------------------------------------------------------------------
def test_cold_resume_warm_cycle(store):
    campaign = make_campaign()
    cold = run_campaign(campaign, store)
    assert cold.executed == 8 and cold.cache_hits == 0
    assert len(store) == 8

    delete_trials(store, 3)
    assert campaign_status(campaign, store).missing == 3

    resumed = run_campaign(campaign, store)
    assert resumed.executed == 3 and resumed.cache_hits == 5

    warm = run_campaign(campaign, store)
    assert warm.executed == 0 and warm.cache_hit_rate == 1.0

    assert (
        series_signature(cold.series)
        == series_signature(resumed.series)
        == series_signature(warm.series)
    )
    status = campaign_status(campaign, store)
    assert status.complete
    assert len(status.history) == 3
    assert [r["manifest"]["executed"] for r in status.history] == [8, 3, 0]


def test_campaign_matches_uncached_sweep(store):
    campaign = make_campaign(
        schemes={"fifo-0.5": {"mrai": 0.5}}, seeds=[1, 2]
    )
    result = run_campaign(campaign, store)
    direct = failure_size_sweep(
        lambda seed: skewed_topology(24, seed=seed),
        ExperimentSpec(mrai=ConstantMRAI(0.5)),
        (0.1, 0.2),
        (1, 2),
    )
    assert len(result.series) == 1
    assert result.series[0].delays == direct.delays
    assert result.series[0].message_counts == direct.message_counts


def test_parallel_campaign_matches_serial(tmp_path):
    campaign = make_campaign()
    with ResultStore(tmp_path / "serial.db") as s1:
        serial = run_campaign(campaign, s1)
    with ResultStore(tmp_path / "pool.db") as s2:
        pooled = run_campaign(campaign, s2, jobs=2)
        assert pooled.executed == 8
        assert len(s2) == 8
    assert series_signature(serial.series) == series_signature(pooled.series)


def test_run_campaign_opens_store_from_path(tmp_path):
    campaign = make_campaign(
        schemes={"fifo-0.5": {"mrai": 0.5}},
        axis={"name": "failure_fraction", "values": [0.1]},
        seeds=[1],
        store=str(tmp_path / "own.db"),
    )
    result = run_campaign(campaign)
    assert result.executed == 1
    with ResultStore(tmp_path / "own.db") as store:
        assert len(store) == 1


def test_run_campaign_without_store_path_errors():
    with pytest.raises(ValueError, match="no store path"):
        run_campaign(make_campaign())


def test_obs_session_sees_campaign(store):
    campaign = make_campaign(
        schemes={"fifo-0.5": {"mrai": 0.5}},
        axis={"name": "failure_fraction", "values": [0.1]},
        seeds=[1, 2],
    )
    obs = ObsSession()
    run_campaign(campaign, store, obs=obs)
    assert obs.cache_misses == 2
    run_campaign(campaign, store, obs=obs)
    assert obs.cache_hits == 2
    manifest = obs.finalize()
    assert [c["name"] for c in manifest.extra["campaigns"]] == ["unit", "unit"]


# ----------------------------------------------------------------------
# Retry: per-trial, bounded
# ----------------------------------------------------------------------
def flaky_executor(fail_times):
    """Wrap execute_trial to fail each trial's first ``fail_times`` calls."""
    calls = {}
    real = campaign_mod.execute_trial

    def wrapped(task):
        n = calls.get(task.index, 0)
        calls[task.index] = n + 1
        if n < fail_times:
            raise RuntimeError(f"injected failure #{n + 1}")
        return real(task)

    return wrapped


def test_worker_failures_retry_until_success(store, monkeypatch):
    campaign = make_campaign(
        schemes={"fifo-0.5": {"mrai": 0.5}},
        axis={"name": "failure_fraction", "values": [0.1]},
        seeds=[1, 2],
    )
    monkeypatch.setattr(
        campaign_mod, "execute_trial", flaky_executor(fail_times=1)
    )
    result = run_campaign(campaign, store, retry=RetryPolicy(max_attempts=3))
    assert result.executed == 2
    assert result.retried == 2
    assert len(store) == 2


def test_exhausted_retries_raise_campaign_error(store, monkeypatch):
    campaign = make_campaign(
        schemes={"fifo-0.5": {"mrai": 0.5}},
        axis={"name": "failure_fraction", "values": [0.1]},
        seeds=[1, 2],
    )
    monkeypatch.setattr(
        campaign_mod, "execute_trial", flaky_executor(fail_times=99)
    )
    with pytest.raises(CampaignError, match="failed after 2 attempt"):
        run_campaign(campaign, store, retry=RetryPolicy(max_attempts=2))
    assert len(store) == 0


def test_partial_failure_stores_the_successes(store, monkeypatch):
    campaign = make_campaign(
        schemes={"fifo-0.5": {"mrai": 0.5}},
        axis={"name": "failure_fraction", "values": [0.1]},
        seeds=[1, 2],
    )
    real = campaign_mod.execute_trial

    def second_trial_dies(task):
        if task.index == 1:
            raise RuntimeError("injected permanent failure")
        return real(task)

    monkeypatch.setattr(campaign_mod, "execute_trial", second_trial_dies)
    with pytest.raises(CampaignError) as excinfo:
        run_campaign(campaign, store, retry=RetryPolicy(max_attempts=2))
    # The healthy sibling was committed before the error surfaced ...
    assert len(store) == 1
    assert len(excinfo.value.failures) == 1
    # ... so the re-run (healed) is incremental.
    monkeypatch.setattr(campaign_mod, "execute_trial", real)
    healed = run_campaign(campaign, store)
    assert healed.executed == 1 and healed.cache_hits == 1


def test_trials_commit_as_they_land_not_at_batch_end(store, monkeypatch):
    # A hard interrupt (KeyboardInterrupt is not caught by the retry
    # machinery) mid-batch must lose only the in-flight trial — earlier
    # completions were already committed, which is what makes Ctrl-C'd
    # campaigns resumable.
    campaign = make_campaign(
        schemes={"fifo-0.5": {"mrai": 0.5}},
        axis={"name": "failure_fraction", "values": [0.1]},
        seeds=[1, 2, 3],
    )
    real = campaign_mod.execute_trial

    def interrupt_third(task):
        if task.index == 2:
            raise KeyboardInterrupt
        return real(task)

    monkeypatch.setattr(campaign_mod, "execute_trial", interrupt_third)
    with pytest.raises(KeyboardInterrupt):
        run_campaign(campaign, store)
    assert len(store) == 2

    monkeypatch.setattr(campaign_mod, "execute_trial", real)
    resumed = run_campaign(campaign, store)
    assert resumed.executed == 1 and resumed.cache_hits == 2


# ----------------------------------------------------------------------
# Export folds from cache only, never partially
# ----------------------------------------------------------------------
def test_load_campaign_results_matches_run(store):
    campaign = make_campaign()
    live = run_campaign(campaign, store)
    series_list, point_results = load_campaign_results(campaign, store)
    assert series_signature(series_list) == series_signature(live.series)
    assert set(point_results) == set(live.results)


def test_load_campaign_results_refuses_partial(store):
    campaign = make_campaign()
    run_campaign(campaign, store)
    delete_trials(store, 2)
    with pytest.raises(CampaignError, match="2/8 trials missing"):
        load_campaign_results(campaign, store)
