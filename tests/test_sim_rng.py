"""Unit tests for named random streams."""

import pytest

from repro.sim.rng import RandomStreams, derive_seed


def test_same_name_returns_same_stream():
    streams = RandomStreams(1)
    assert streams.get("a") is streams.get("a")


def test_different_names_are_independent():
    streams = RandomStreams(1)
    a = [streams.get("a").random() for _ in range(5)]
    b = [streams.get("b").random() for _ in range(5)]
    assert a != b


def test_reproducible_across_instances():
    a = [RandomStreams(42).get("svc").random() for _ in range(3)]
    b = [RandomStreams(42).get("svc").random() for _ in range(3)]
    # Note: each comprehension creates a fresh family, so draws restart.
    assert a[0] == b[0]
    one = RandomStreams(42)
    two = RandomStreams(42)
    assert [one.get("svc").random() for _ in range(5)] == [
        two.get("svc").random() for _ in range(5)
    ]


def test_different_master_seeds_differ():
    a = RandomStreams(1).get("x").random()
    b = RandomStreams(2).get("x").random()
    assert a != b


def test_derive_seed_stable():
    # Regression pin: derivation must not depend on PYTHONHASHSEED.
    assert derive_seed(0, "x") == derive_seed(0, "x")
    assert derive_seed(0, "x") != derive_seed(1, "x")
    assert derive_seed(0, "x") != derive_seed(0, "y")


def test_consuming_one_stream_does_not_perturb_another():
    family = RandomStreams(9)
    expected = [RandomStreams(9).get("b").random() for _ in range(1)][0]
    for _ in range(100):
        family.get("a").random()
    assert family.get("b").random() == expected


def test_spawn_creates_independent_family():
    parent = RandomStreams(5)
    child1 = parent.spawn("trial-1")
    child2 = parent.spawn("trial-2")
    assert child1.seed != child2.seed
    assert child1.get("x").random() != child2.get("x").random()
    # Spawn is deterministic.
    assert RandomStreams(5).spawn("trial-1").seed == child1.seed


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RandomStreams(-1)


def test_uniform_helper_in_range():
    streams = RandomStreams(3)
    for _ in range(100):
        value = streams.uniform("u", 2.0, 3.0)
        assert 2.0 <= value <= 3.0
