"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.topology.graph import Topology, flat_topology_from_edges


def line_topology(n: int = 4) -> Topology:
    """0 - 1 - 2 - ... - (n-1)."""
    return flat_topology_from_edges([(i, i + 1) for i in range(n - 1)])


def ring_topology(n: int = 5) -> Topology:
    """A cycle of n nodes."""
    edges = [(i, (i + 1) % n) for i in range(n)]
    return flat_topology_from_edges(edges)


def clique_topology(n: int = 4) -> Topology:
    """Complete graph on n nodes (the Labovitz worst-case family)."""
    edges = [(a, b) for a in range(n) for b in range(a + 1, n)]
    return flat_topology_from_edges(edges)


def star_topology(n_leaves: int = 4) -> Topology:
    """Node 0 is the hub; leaves are 1..n."""
    return flat_topology_from_edges([(0, i) for i in range(1, n_leaves + 1)])


def converged_network(
    topology: Topology,
    mrai: float = 0.5,
    seed: int = 1,
    **config_kwargs,
) -> BGPNetwork:
    """A network that has completed its warm-up convergence."""
    config = BGPConfig(mrai_policy=ConstantMRAI(mrai), **config_kwargs)
    network = BGPNetwork(topology, config, seed=seed)
    network.start()
    network.run_until_quiet(max_time=3600)
    assert network.is_quiescent(), "warm-up did not converge"
    return network


@pytest.fixture
def line4() -> Topology:
    return line_topology(4)


@pytest.fixture
def ring5() -> Topology:
    return ring_topology(5)


@pytest.fixture
def clique4() -> Topology:
    return clique_topology(4)


@pytest.fixture
def star4() -> Topology:
    return star_topology(4)
