"""Unit tests for tracing and counters."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import (
    Counter,
    JsonlSink,
    NullTracer,
    Tracer,
    TraceRecord,
    jsonl_sink,
)


def test_tracer_records_events():
    tracer = Tracer()
    tracer.emit(1.0, "update_sent", 3, "dest", 7)
    tracer.emit(2.0, "route_change", 4)
    assert len(tracer) == 2
    assert tracer.records[0] == TraceRecord(1.0, "update_sent", 3, ("dest", 7))


def test_category_filter():
    tracer = Tracer(categories={"update_sent"})
    tracer.emit(1.0, "update_sent", 1)
    tracer.emit(1.0, "route_change", 1)
    assert len(tracer) == 1
    assert list(tracer.by_category("route_change")) == []
    assert len(list(tracer.by_category("update_sent"))) == 1


def test_sink_is_invoked():
    seen = []
    tracer = Tracer(sink=seen.append)
    tracer.emit(1.0, "x", None)
    assert len(seen) == 1


def test_keep_false_discards_records():
    tracer = Tracer(keep=False)
    tracer.emit(1.0, "x", None)
    assert len(tracer) == 0


def test_clear():
    tracer = Tracer()
    tracer.emit(1.0, "x", None)
    tracer.clear()
    assert len(tracer) == 0


def test_max_records_drops_oldest():
    tracer = Tracer(max_records=3)
    for i in range(5):
        tracer.emit(float(i), "x", i)
    assert len(tracer) == 3
    assert tracer.dropped == 2
    assert [r.node for r in tracer.records] == [2, 3, 4]


def test_max_records_sink_still_sees_everything():
    seen = []
    tracer = Tracer(sink=seen.append, max_records=2)
    for i in range(4):
        tracer.emit(float(i), "x", i)
    assert len(seen) == 4
    assert len(tracer) == 2
    assert tracer.dropped == 2


def test_max_records_unset_keeps_everything():
    tracer = Tracer()
    for i in range(100):
        tracer.emit(float(i), "x", i)
    assert len(tracer) == 100
    assert tracer.dropped == 0


def test_max_records_clear_and_by_category():
    tracer = Tracer(max_records=4)
    for i in range(6):
        tracer.emit(float(i), "a" if i % 2 else "b", i)
    assert len(list(tracer.by_category("a"))) == 2
    tracer.clear()
    assert len(tracer) == 0
    tracer.emit(0.0, "a", 1)
    assert len(tracer) == 1


def test_max_records_must_be_positive():
    with pytest.raises(ValueError):
        Tracer(max_records=0)


def test_null_tracer_drops_everything():
    tracer = NullTracer()
    tracer.emit(1.0, "x", None)
    assert len(tracer) == 0
    assert not tracer.enabled


def test_record_str_contains_fields():
    record = TraceRecord(1.5, "update_sent", 3, ("a",))
    text = str(record)
    assert "update_sent" in text
    assert "node=3" in text


def test_counter_incr_and_get():
    counter = Counter()
    counter.incr("a")
    counter.incr("a", 2)
    assert counter["a"] == 3
    assert counter["missing"] == 0


def test_counter_snapshot_is_a_copy():
    counter = Counter()
    counter.incr("a")
    snap = counter.snapshot()
    counter.incr("a")
    assert snap == {"a": 1}
    assert counter["a"] == 2


def test_counter_diff():
    counter = Counter()
    counter.incr("a", 5)
    snap = counter.snapshot()
    counter.incr("a", 3)
    counter.incr("b")
    assert counter.diff(snap) == {"a": 3, "b": 1}


def test_counter_reset():
    counter = Counter()
    counter.incr("a")
    counter.reset()
    assert counter["a"] == 0


def test_record_to_dict_json_ready():
    record = TraceRecord(1.5, "update_sent", 3, ("a", (1, 2)))
    data = record.to_dict()
    assert data == {
        "time": 1.5,
        "category": "update_sent",
        "node": 3,
        "detail": ["a", [1, 2]],
    }
    json.dumps(data)  # nested tuples became lists; must serialize


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "trace.jsonl"
    with jsonl_sink(path) as sink:
        tracer = Tracer(sink=sink, keep=False)
        tracer.emit(1.0, "update_sent", 3, "dest", 7)
        tracer.emit(2.0, "route_change", 4)
        assert sink.records_written == 2
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["category"] for r in rows] == ["update_sent", "route_change"]
    assert rows[0]["detail"] == ["dest", 7]


def test_jsonl_sink_creates_parent_directories(tmp_path):
    path = tmp_path / "not" / "yet" / "there" / "trace.jsonl"
    with JsonlSink(path) as sink:
        Tracer(sink=sink).emit(1.0, "x", None)
    assert path.exists()


def test_jsonl_sink_close_idempotent(tmp_path):
    sink = JsonlSink(tmp_path / "x.jsonl")
    sink.close()
    sink.close()


def test_counter_mirrors_into_registry():
    registry = MetricsRegistry()
    counter = Counter(registry=registry)
    counter.incr("updates_sent")
    counter.incr("updates_sent", 2)
    counter.incr("route_changes")
    assert registry.get("updates_sent").value == 3
    assert registry.get("route_changes").value == 1
    # reset clears the local view only; registry counters are cumulative.
    counter.reset()
    counter.incr("updates_sent")
    assert counter["updates_sent"] == 1
    assert registry.get("updates_sent").value == 4


def test_counter_without_registry_has_no_mirror():
    counter = Counter()
    counter.incr("a")
    assert counter._mirror == {}
