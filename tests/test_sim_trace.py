"""Unit tests for tracing and counters."""

from repro.sim.trace import Counter, NullTracer, Tracer, TraceRecord


def test_tracer_records_events():
    tracer = Tracer()
    tracer.emit(1.0, "update_sent", 3, "dest", 7)
    tracer.emit(2.0, "route_change", 4)
    assert len(tracer) == 2
    assert tracer.records[0] == TraceRecord(1.0, "update_sent", 3, ("dest", 7))


def test_category_filter():
    tracer = Tracer(categories={"update_sent"})
    tracer.emit(1.0, "update_sent", 1)
    tracer.emit(1.0, "route_change", 1)
    assert len(tracer) == 1
    assert list(tracer.by_category("route_change")) == []
    assert len(list(tracer.by_category("update_sent"))) == 1


def test_sink_is_invoked():
    seen = []
    tracer = Tracer(sink=seen.append)
    tracer.emit(1.0, "x", None)
    assert len(seen) == 1


def test_keep_false_discards_records():
    tracer = Tracer(keep=False)
    tracer.emit(1.0, "x", None)
    assert len(tracer) == 0


def test_clear():
    tracer = Tracer()
    tracer.emit(1.0, "x", None)
    tracer.clear()
    assert len(tracer) == 0


def test_null_tracer_drops_everything():
    tracer = NullTracer()
    tracer.emit(1.0, "x", None)
    assert len(tracer) == 0
    assert not tracer.enabled


def test_record_str_contains_fields():
    record = TraceRecord(1.5, "update_sent", 3, ("a",))
    text = str(record)
    assert "update_sent" in text
    assert "node=3" in text


def test_counter_incr_and_get():
    counter = Counter()
    counter.incr("a")
    counter.incr("a", 2)
    assert counter["a"] == 3
    assert counter["missing"] == 0


def test_counter_snapshot_is_a_copy():
    counter = Counter()
    counter.incr("a")
    snap = counter.snapshot()
    counter.incr("a")
    assert snap == {"a": 1}
    assert counter["a"] == 2


def test_counter_diff():
    counter = Counter()
    counter.incr("a", 5)
    snap = counter.snapshot()
    counter.incr("a", 3)
    counter.incr("b")
    assert counter.diff(snap) == {"a": 3, "b": 1}


def test_counter_reset():
    counter = Counter()
    counter.incr("a")
    counter.reset()
    assert counter["a"] == 0
