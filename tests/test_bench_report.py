"""tools/bench_report.py: history shapes, trend, attribution, gate."""

import json
import sys
from pathlib import Path

import pytest

TOOLS = Path(__file__).resolve().parent.parent / "tools"
if str(TOOLS) not in sys.path:
    sys.path.insert(0, str(TOOLS))

import bench_report  # noqa: E402


def _record(recorded="2026-01-01T00:00:00+00:00", serial_wall=10.0,
            speedup=1.8, events=50_000):
    return {
        "recorded_utc": recorded,
        "nodes": 60,
        "fractions": [0.05, 0.1],
        "seeds": [1, 2],
        "trials": 4,
        "runs": [
            {
                "jobs": 1,
                "wall_seconds": serial_wall,
                "events_per_second": events,
                "speedup": 1.0,
            },
            {
                "jobs": 4,
                "wall_seconds": serial_wall / speedup,
                "events_per_second": int(events * speedup),
                "speedup": speedup,
            },
        ],
    }


# ----------------------------------------------------------------------
# History shapes
# ----------------------------------------------------------------------
def test_load_history_current_shape(tmp_path):
    path = tmp_path / "BENCH_sweep.json"
    path.write_text(
        json.dumps(
            {"kind": "BENCH_sweep", "history": [_record(), _record()]}
        ),
        encoding="utf-8",
    )
    assert len(bench_report.load_history(path)) == 2


def test_load_history_legacy_single_record(tmp_path):
    path = tmp_path / "BENCH_sweep.json"
    legacy = dict(_record(), kind="BENCH_sweep")
    path.write_text(json.dumps(legacy), encoding="utf-8")
    history = bench_report.load_history(path)
    assert len(history) == 1
    assert "kind" not in history[0]
    assert history[0]["nodes"] == 60


def test_load_history_missing_and_garbage(tmp_path):
    assert bench_report.load_history(tmp_path / "none.json") == []
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    assert bench_report.load_history(bad) == []
    arr = tmp_path / "arr.json"
    arr.write_text("[1, 2]", encoding="utf-8")
    assert bench_report.load_history(arr) == []


# ----------------------------------------------------------------------
# Trend
# ----------------------------------------------------------------------
def test_render_trend():
    history = [
        _record(recorded="2026-01-01T00:00:00", events=40_000, speedup=0.9),
        _record(recorded="2026-01-02T00:00:00", events=50_000, speedup=1.8),
    ]
    text = bench_report.render_trend(history)
    assert "2026-01-01" in text and "2026-01-02" in text
    assert "1.80x @4" in text
    assert "+25.0%" in text  # 40k -> 50k events/s
    assert bench_report.render_trend([]) == "no benchmark records"


# ----------------------------------------------------------------------
# Attribution
# ----------------------------------------------------------------------
def test_render_attribution(tmp_path):
    from repro.obs.spans import SpanRecorder

    rec = SpanRecorder()

    def add(name, path, start, dur, attrs=None, pid=1):
        rec.records.append(
            {"name": name, "path": path, "start": start, "dur": dur,
             "pid": pid, "attrs": attrs or {}}
        )

    add("trials.run", "trials.run", 0.0, 10.0, {"jobs": 2})
    add("pool.run", "trials.run/pool.run", 0.1, 9.8,
        {"jobs": 2, "spinup_seconds": 0.25})
    add("pool.submit", "trials.run/pool.run/pool.submit", 0.4, 0.5)
    add("pool.collect", "trials.run/pool.run/pool.collect", 0.9, 9.0)
    add("trials.fold", "trials.run/trials.fold", 9.9, 0.1)
    add("trial.execute", "workers/trial.execute", 1.0, 8.0, {"seed": 1},
        pid=2)
    add("trial.execute", "workers/trial.execute", 1.0, 8.0, {"seed": 2},
        pid=3)
    spans_path = rec.write_chrome_trace(tmp_path / "spans.json")

    text = bench_report.render_attribution(spans_path)
    assert "wall clock" in text
    assert "jobs=2" in text
    assert "1.60x the wall" in text  # 16s busy over 10s wall
    assert "pool spin-up" in text and "0.250 s" in text
    # Ideal wall = 16/2 = 8s; collect idle = 9 - 8 = 1s.
    assert "collect idle" in text and "1.000 s" in text


def test_render_attribution_serial_fallback(tmp_path):
    from repro.obs.spans import SpanRecorder

    rec = SpanRecorder()
    rec.records = [
        {"name": "trials.run", "path": "trials.run", "start": 0.0,
         "dur": 4.0, "pid": 1, "attrs": {"jobs": 1}},
        {"name": "trial.execute", "path": "trials.run/trial.execute",
         "start": 0.1, "dur": 3.8, "pid": 1, "attrs": {}},
    ]
    spans_path = rec.write_chrome_trace(tmp_path / "spans.json")
    text = bench_report.render_attribution(spans_path, jobs=1)
    assert "0.95x the wall" in text


# ----------------------------------------------------------------------
# Overhead gate + CLI
# ----------------------------------------------------------------------
def test_disabled_span_cost_is_sub_microsecond():
    cost = bench_report.disabled_span_cost(iterations=20_000)
    # The disabled path is one global read + a shared no-op context
    # manager; even slow CI machines finish far under 10 us.
    assert cost < 10e-6


def test_overhead_check_passes_with_realistic_history(capsys):
    history = [_record(serial_wall=10.0)]  # 2.5 s/trial
    assert bench_report.overhead_check(history) == 0
    out = capsys.readouterr().out
    assert "overhead gate" in out and "ok" in out


def test_overhead_check_fails_on_tiny_budget(capsys):
    history = [_record(serial_wall=10.0)]
    assert bench_report.overhead_check(history, budget=1e-9) == 1
    assert "FAIL" in capsys.readouterr().out


def test_main_trend_and_attribution(tmp_path, capsys):
    bench = tmp_path / "BENCH_sweep.json"
    bench.write_text(
        json.dumps({"kind": "BENCH_sweep", "history": [_record()]}),
        encoding="utf-8",
    )
    from repro.obs.spans import SpanRecorder, record_spans, span

    with record_spans() as rec:
        with span("trials.run", jobs=1):
            with span("trial.execute"):
                pass
    spans_path = rec.write_chrome_trace(tmp_path / "spans.json")

    assert bench_report.main(["--bench", str(bench)]) == 0
    assert "bench trend" in capsys.readouterr().out
    assert (
        bench_report.main(
            ["--bench", str(bench), "--spans", str(spans_path)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "span attribution" in out
    assert (
        bench_report.main(
            ["--bench", str(bench), "--spans", str(tmp_path / "no.json")]
        )
        == 2
    )
