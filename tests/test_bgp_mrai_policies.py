"""Unit tests for MRAI policies and controllers."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI, StaticController, effective_mrai
from repro.core.degree_mrai import DegreeDependentMRAI
from repro.core.dynamic_mrai import (
    DynamicController,
    DynamicMRAI,
    MessageCountController,
    UtilizationController,
)


# ---------------------------------------------------------------------------
# Static / constant
# ---------------------------------------------------------------------------
def test_static_controller_value():
    assert StaticController(1.5).value() == 1.5


def test_static_controller_rejects_negative():
    with pytest.raises(ValueError):
        StaticController(-1.0)


def test_constant_policy_same_for_all_nodes():
    policy = ConstantMRAI(2.25)
    a = policy.controller_for(0, degree=1)
    b = policy.controller_for(5, degree=14)
    assert a.value() == b.value() == 2.25
    assert "2.25" in policy.name


def test_constant_policy_rejects_negative():
    with pytest.raises(ValueError):
        ConstantMRAI(-0.5)


def test_effective_mrai_none():
    assert effective_mrai(None) == 0.0
    assert effective_mrai(StaticController(3.0)) == 3.0


# ---------------------------------------------------------------------------
# Degree-dependent
# ---------------------------------------------------------------------------
def test_degree_dependent_assignment():
    policy = DegreeDependentMRAI(0.5, 2.25, degree_threshold=4)
    assert policy.controller_for(0, degree=2).value() == 0.5
    assert policy.controller_for(1, degree=3).value() == 0.5
    assert policy.controller_for(2, degree=4).value() == 2.25
    assert policy.controller_for(3, degree=8).value() == 2.25


def test_degree_dependent_reversed():
    policy = DegreeDependentMRAI(2.25, 0.5)
    assert policy.controller_for(0, degree=1).value() == 2.25
    assert policy.controller_for(0, degree=8).value() == 0.5


def test_degree_dependent_validation():
    with pytest.raises(ValueError):
        DegreeDependentMRAI(-1.0, 2.0)
    with pytest.raises(ValueError):
        DegreeDependentMRAI(1.0, 2.0, degree_threshold=0)


# ---------------------------------------------------------------------------
# Dynamic (queue monitor)
# ---------------------------------------------------------------------------
def make_dynamic(**kwargs):
    defaults = dict(
        levels=(0.5, 1.25, 2.25), up_th=0.65, down_th=0.05, mean_service=0.0155
    )
    defaults.update(kwargs)
    return DynamicController(**defaults)


def test_dynamic_starts_at_lowest_level():
    ctl = make_dynamic()
    assert ctl.value() == 0.5


def test_dynamic_steps_up_on_overload():
    ctl = make_dynamic()
    # 0.65 / 0.0155 = ~42 queued messages push unfinished work above upTh.
    ctl.on_queue_sample(50, now=1.0)
    assert ctl.value() == 1.25
    ctl.on_queue_sample(50, now=1.1)
    assert ctl.value() == 2.25
    # Saturates at the top level.
    ctl.on_queue_sample(500, now=1.2)
    assert ctl.value() == 2.25
    assert ctl.transitions_up == 2


def test_dynamic_steps_down_when_idle():
    ctl = make_dynamic()
    ctl.on_queue_sample(50, now=1.0)
    ctl.on_queue_sample(50, now=1.1)
    assert ctl.value() == 2.25
    ctl.on_queue_sample(0, now=2.0)  # work 0 < downTh
    assert ctl.value() == 1.25
    ctl.on_queue_sample(0, now=2.1)
    assert ctl.value() == 0.5
    ctl.on_queue_sample(0, now=2.2)
    assert ctl.value() == 0.5
    assert ctl.transitions_down == 2


def test_dynamic_hysteresis_band_holds_level():
    ctl = make_dynamic()
    ctl.on_queue_sample(50, now=1.0)
    assert ctl.value() == 1.25
    # Work between downTh and upTh: no change either way.
    ctl.on_queue_sample(10, now=1.5)  # 10 * 0.0155 = 0.155
    assert ctl.value() == 1.25


def test_dynamic_validation():
    with pytest.raises(ValueError):
        make_dynamic(levels=())
    with pytest.raises(ValueError):
        make_dynamic(levels=(2.0, 1.0))
    with pytest.raises(ValueError):
        make_dynamic(up_th=0.1, down_th=0.5)
    with pytest.raises(ValueError):
        make_dynamic(mean_service=0.0)


# ---------------------------------------------------------------------------
# Dynamic (utilization monitor)
# ---------------------------------------------------------------------------
def test_utilization_controller_steps_with_busy_fraction():
    ctl = UtilizationController((0.5, 2.25), up_th=0.8, down_th=0.2, window=1.0)
    ctl.on_busy_interval(9.0, 10.0)  # fully busy
    ctl.on_queue_sample(5, now=10.0)
    assert ctl.value() == 2.25
    # Much later: window empty -> steps back down.
    ctl.on_queue_sample(0, now=20.0)
    assert ctl.value() == 0.5


def test_utilization_controller_validation():
    with pytest.raises(ValueError):
        UtilizationController((0.5,), up_th=1.5)
    with pytest.raises(ValueError):
        UtilizationController((2.0, 1.0))


# ---------------------------------------------------------------------------
# Dynamic (message-count monitor)
# ---------------------------------------------------------------------------
def test_msgcount_controller_steps_with_arrival_rate():
    ctl = MessageCountController((0.5, 2.25), up_th=10, down_th=2, window=1.0)
    for i in range(12):
        ctl.on_update_received(now=1.0 + i * 0.01)
    ctl.on_queue_sample(12, now=1.2)
    assert ctl.value() == 2.25
    ctl.on_queue_sample(0, now=10.0)  # arrivals aged out
    assert ctl.value() == 0.5


def test_msgcount_controller_validation():
    with pytest.raises(ValueError):
        MessageCountController((), up_th=5, down_th=1)
    with pytest.raises(ValueError):
        MessageCountController((0.5,), up_th=1, down_th=5)


# ---------------------------------------------------------------------------
# DynamicMRAI policy
# ---------------------------------------------------------------------------
def test_dynamic_policy_builds_requested_monitor():
    assert isinstance(
        DynamicMRAI().controller_for(0, 3), DynamicController
    )
    assert isinstance(
        DynamicMRAI(monitor="utilization", up_th=0.9, down_th=0.1)
        .controller_for(0, 3),
        UtilizationController,
    )
    assert isinstance(
        DynamicMRAI(monitor="msgcount", up_th=40, down_th=5)
        .controller_for(0, 3),
        MessageCountController,
    )


def test_dynamic_policy_rejects_unknown_monitor():
    with pytest.raises(ValueError):
        DynamicMRAI(monitor="bogus")


def test_dynamic_policy_high_degree_only():
    policy = DynamicMRAI(high_degree_only_threshold=4)
    low = policy.controller_for(0, degree=2)
    high = policy.controller_for(1, degree=8)
    assert isinstance(low, StaticController)
    assert low.value() == 0.5  # pinned at the lowest ladder level
    assert isinstance(high, DynamicController)


def test_controllers_are_per_node():
    policy = DynamicMRAI()
    a = policy.controller_for(0, 8)
    b = policy.controller_for(1, 8)
    assert a is not b
    a.on_queue_sample(100, 1.0)
    assert a.value() != b.value()


# ---------------------------------------------------------------------------
# Config integration
# ---------------------------------------------------------------------------
def test_bgp_config_defaults_match_paper():
    config = BGPConfig()
    assert config.processing_delay_range == (0.001, 0.030)
    assert config.mean_processing_delay == pytest.approx(0.0155)
    assert config.models_processing
    assert not config.withdrawal_rate_limiting
    assert config.queue_discipline == "fifo"


def test_bgp_config_validation():
    with pytest.raises(ValueError):
        BGPConfig(processing_delay_range=(-1.0, 2.0))
    with pytest.raises(ValueError):
        BGPConfig(processing_delay_range=(2.0, 1.0))
    with pytest.raises(ValueError):
        BGPConfig(queue_discipline="bogus")
    with pytest.raises(ValueError):
        BGPConfig(tcp_batch_size=0)


def test_bgp_config_zero_processing():
    config = BGPConfig(processing_delay_range=(0.0, 0.0))
    assert not config.models_processing
