"""Protocol-behaviour tests for the BGP speaker.

These use tiny topologies, zero processing delay and unjittered timers so
timing assertions are exact.
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.sim.timers import Jitter
from tests.conftest import clique_topology, line_topology, ring_topology


def exact_network(topo, mrai=1.0, **kwargs):
    """Network with deterministic timing (no jitter, zero service time)."""
    config = BGPConfig(
        mrai_policy=ConstantMRAI(mrai),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        **kwargs,
    )
    return BGPNetwork(topo, config, seed=1)


def test_initial_convergence_full_reachability(line4=None):
    net = exact_network(line_topology(4))
    net.start()
    net.run_until_quiet()
    for speaker in net.speakers.values():
        assert speaker.loc_rib.destinations() == {0, 1, 2, 3}


def test_paths_are_shortest_on_ring():
    net = exact_network(ring_topology(6))
    net.start()
    net.run_until_quiet()
    # On a 6-ring the farthest node is 3 hops away.
    for speaker in net.speakers.values():
        for dest, route in speaker.loc_rib.items():
            expected = min(
                abs(speaker.node_id - dest), 6 - abs(speaker.node_id - dest)
            )
            assert len(route.path) == expected


def test_no_op_advertisements_suppressed():
    net = exact_network(line_topology(3))
    net.start()
    net.run_until_quiet()
    sent_before = net.counters["updates_sent"]
    # Nothing changed; no further activity possible.
    net.run_until_quiet()
    assert net.counters["updates_sent"] == sent_before


def test_withdrawal_bypasses_mrai():
    # Large MRAI: if withdrawals were rate-limited, the dead prefix would
    # linger for ~30 s; they are not, so the whole cleanup happens in a few
    # link delays.
    net = exact_network(line_topology(4), mrai=30.0)
    net.start()
    net.run_until_quiet()
    t0 = net.fail_nodes([3])
    net.run_until_quiet()
    delay = net.last_activity - t0
    assert delay < 1.0
    for speaker in net.alive_speakers():
        assert 3 not in speaker.loc_rib.destinations()


def test_withdrawal_rate_limiting_holds_withdrawal_behind_running_timer():
    net = exact_network(
        line_topology(4), mrai=5.0, withdrawal_rate_limiting=True
    )
    net.start()
    net.run_until_quiet()
    # Arm node 2's timer towards node 1, as if it had just advertised.
    middle = net.speakers[2]
    middle._start_timer(middle.peers[1], -1)
    t0 = net.fail_nodes([3])
    net.run_until_quiet()
    # The withdrawal of prefix 3 had to wait out the 5 s timer.
    assert net.last_activity - t0 >= 4.0
    assert 3 not in net.speakers[0].loc_rib.destinations()


def test_unlimited_withdrawal_ignores_running_timer():
    net = exact_network(line_topology(4), mrai=5.0)
    net.start()
    net.run_until_quiet()
    middle = net.speakers[2]
    middle._start_timer(middle.peers[1], -1)
    t0 = net.fail_nodes([3])
    net.run_until_quiet()
    assert net.last_activity - t0 < 1.0


def test_mrai_spaces_successive_advertisements():
    # Star: hub 0 with leaves 1..3.  After warm-up, fail leaf 3; watch the
    # hub's updates to leaf 1: the withdrawal goes immediately; any
    # subsequent advertisement honors the timer.
    net = exact_network(clique_topology(4), mrai=2.0)
    net.start()
    net.run_until_quiet()
    assert net.is_quiescent()


def test_receiver_side_loop_detection():
    # Disable sender-side suppression so loops reach the receiver.
    net = exact_network(
        ring_topology(4), sender_side_loop_detection=False
    )
    net.start()
    net.run_until_quiet()
    assert net.counters["updates_loop_rejected"] > 0
    # Despite looped advertisements, RIBs never hold a looped path.
    for speaker in net.speakers.values():
        for dest, route in speaker.loc_rib.items():
            assert speaker.asn not in route.path


def test_sender_side_suppression_reduces_messages():
    def msgs(sender_side):
        net = exact_network(
            ring_topology(6), sender_side_loop_detection=sender_side
        )
        net.start()
        net.run_until_quiet()
        return net.counters["updates_sent"]

    assert msgs(True) < msgs(False)


def test_convergence_identical_with_and_without_sender_side():
    def ribs(sender_side):
        net = exact_network(
            ring_topology(6), sender_side_loop_detection=sender_side
        )
        net.start()
        net.run_until_quiet()
        return {
            n: {d: r.path for d, r in s.loc_rib.items()}
            for n, s in net.speakers.items()
        }

    assert ribs(True) == ribs(False)


def test_peer_down_removes_learned_routes():
    net = exact_network(line_topology(3))
    net.start()
    net.run_until_quiet()
    middle = net.speakers[1]
    assert middle.adj_rib_in.get(2, 2) is not None
    middle.peer_down(2)
    assert middle.adj_rib_in.get(2, 2) is None
    assert middle.peers[2].session_up is False
    net.run_until_quiet()
    # Node 0 learns the withdrawal of prefix 2.
    assert 2 not in net.speakers[0].loc_rib.destinations()


def test_peer_down_is_idempotent():
    net = exact_network(line_topology(3))
    net.start()
    net.run_until_quiet()
    net.speakers[1].peer_down(2)
    before = net.counters["sessions_down"]
    net.speakers[1].peer_down(2)
    assert net.counters["sessions_down"] == before


def test_failed_node_sends_and_receives_nothing():
    net = exact_network(line_topology(3))
    net.start()
    net.run_until_quiet()
    sent_before = net.counters["updates_sent"]
    net.fail_nodes([2])
    net.run_until_quiet()
    dead = net.speakers[2]
    assert not dead.alive
    assert dead.queue_length == 0
    # All post-failure messages originate from survivors.
    assert net.counters["updates_sent"] >= sent_before


def test_messages_in_flight_to_failed_node_are_lost():
    net = exact_network(line_topology(3), mrai=0.0)
    net.start()
    # Fail node 2 while the initial advertisement wave is still in flight.
    net.sim.run(max_events=2)
    net.fail_nodes([2])
    net.run_until_quiet()
    assert net.counters["updates_lost"] >= 0  # no crash; accounting present
    assert 2 not in net.speakers[0].loc_rib.destinations()


def test_stale_messages_from_downed_peer_are_dropped():
    net = exact_network(line_topology(3))
    net.start()
    net.run_until_quiet()
    # Put a message on the wire from 2 to 1, then kill the session before
    # delivery: the speaker must drop it.
    from repro.bgp.messages import Update

    net.transmit(2, 1, Update(99, (2, 99), 2, net.sim.now), 0.025)
    net.speakers[1].peer_down(2)
    net.run_until_quiet()
    assert net.speakers[1].adj_rib_in.get(99, 2) is None
    assert net.counters["updates_dropped_dead_session"] >= 1


def test_zero_mrai_sends_immediately_without_timers():
    net = exact_network(line_topology(3), mrai=0.0)
    net.start()
    net.run_until_quiet()
    for speaker in net.speakers.values():
        for ps in speaker.peers.values():
            assert ps.timer is None or not ps.timer.running
        assert speaker.loc_rib.destinations() == {0, 1, 2}


def test_own_prefix_always_local():
    net = exact_network(line_topology(3))
    net.start()
    net.run_until_quiet()
    for speaker in net.speakers.values():
        route = speaker.best_route(speaker.asn)
        assert route is not None and route.is_local


def test_per_destination_mrai_mode_converges():
    net = exact_network(ring_topology(5), per_destination_mrai=True)
    net.start()
    net.run_until_quiet()
    for speaker in net.speakers.values():
        assert len(speaker.loc_rib) == 5
    t0 = net.fail_nodes([4])
    net.run_until_quiet()
    for speaker in net.alive_speakers():
        assert 4 not in speaker.loc_rib.destinations()
        assert len(speaker.loc_rib) == 4


def test_per_destination_timers_are_independent():
    net = exact_network(line_topology(3), per_destination_mrai=True, mrai=3.0)
    net.start()
    net.run_until_quiet()
    middle = net.speakers[1]
    ps = middle.peers[0]
    # Two destinations were advertised to peer 0: each got its own timer.
    assert len(ps.dest_timers) >= 1


def test_has_pending_work_lifecycle():
    net = exact_network(line_topology(3))
    net.start()
    # Work exists immediately after origination (pending advertisements
    # were flushed synchronously, so in-flight messages are engine events).
    net.run_until_quiet()
    for speaker in net.speakers.values():
        assert not speaker.has_pending_work()


def test_counters_balance():
    net = exact_network(line_topology(4))
    net.start()
    net.run_until_quiet()
    c = net.counters
    assert c["updates_received"] == c["updates_sent"] - c["updates_lost"]
    assert c["updates_processed"] == c["updates_received"]


def test_duplicate_peer_rejected():
    net = exact_network(line_topology(3))
    with pytest.raises(ValueError):
        net.speakers[0].add_peer(1, 1, 0.025, True)
