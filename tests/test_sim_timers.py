"""Unit tests for jittered timers."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.timers import Jitter, Timer


def make_timer(sim, fired, jitter=None):
    return Timer(
        sim,
        lambda: fired.append(sim.now),
        jitter=jitter or Jitter.none(),
        rng=sim.rng.get("t"),
    )


def test_timer_fires_once():
    sim = Simulator()
    fired = []
    timer = make_timer(sim, fired)
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]
    assert not timer.running


def test_timer_stop_prevents_firing():
    sim = Simulator()
    fired = []
    timer = make_timer(sim, fired)
    timer.start(2.0)
    timer.stop()
    sim.run()
    assert fired == []


def test_stop_is_idempotent():
    sim = Simulator()
    timer = make_timer(sim, [])
    timer.stop()
    timer.start(1.0)
    timer.stop()
    timer.stop()
    assert not timer.running


def test_restart_supersedes_previous_expiry():
    sim = Simulator()
    fired = []
    timer = make_timer(sim, fired)
    timer.start(5.0)
    timer.start(1.0)
    sim.run()
    assert fired == [1.0]


def test_timer_can_be_restarted_from_callback():
    sim = Simulator()
    fired = []

    def on_fire():
        fired.append(sim.now)
        if len(fired) < 3:
            timer.start(1.0)

    timer = Timer(sim, on_fire, jitter=Jitter.none())
    timer.start(1.0)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_running_and_remaining():
    sim = Simulator()
    timer = make_timer(sim, [])
    assert timer.remaining() == 0.0
    timer.start(4.0)
    assert timer.running
    assert timer.remaining() == pytest.approx(4.0)
    sim.schedule(1.0, lambda: None)
    sim.run(until=1.0)
    assert timer.remaining() == pytest.approx(3.0)


def test_rfc1771_jitter_reduces_by_up_to_25_percent():
    sim = Simulator(seed=11)
    timer = Timer(sim, lambda: None, jitter=Jitter(), rng=sim.rng.get("j"))
    durations = [timer.start(10.0) for _ in range(200)]
    timer.stop()
    assert all(7.5 <= d <= 10.0 for d in durations)
    # The draws must actually vary.
    assert max(durations) - min(durations) > 0.5


def test_jitter_none_is_exact():
    sim = Simulator()
    timer = Timer(sim, lambda: None, jitter=Jitter.none())
    assert timer.start(3.0) == 3.0
    timer.stop()


def test_jittered_timer_requires_rng():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timer(sim, lambda: None, jitter=Jitter(0.75, 1.0), rng=None)


def test_invalid_jitter_range_rejected():
    with pytest.raises(ValueError):
        Jitter(0.0, 1.0)
    with pytest.raises(ValueError):
        Jitter(1.0, 0.5)


def test_negative_duration_rejected():
    sim = Simulator()
    timer = make_timer(sim, [])
    with pytest.raises(ValueError):
        timer.start(-1.0)


def test_callback_args_passed_through():
    sim = Simulator()
    received = []
    timer = Timer(
        sim, lambda a, b: received.append((a, b)), "x", 2, jitter=Jitter.none()
    )
    timer.start(1.0)
    sim.run()
    assert received == [("x", 2)]


def test_expiry_property():
    sim = Simulator()
    timer = make_timer(sim, [])
    assert timer.expiry is None
    timer.start(2.5)
    assert timer.expiry == pytest.approx(2.5)
    timer.stop()
    assert timer.expiry is None
