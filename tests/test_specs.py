"""Tests for the declarative experiment-description layer (repro.specs).

Headline contracts: every scheme dict the figure harness declares
round-trips through ``spec_to_dict``/``spec_from_dict``; the canonical
dict for each registered MRAI scheme kind is pinned; validation rejects
typos with per-field messages; and a campaign JSON can express every
scheme kind the ``run`` subcommand can — including topology-resolved
ones — store-backed and fully cacheable.
"""

import json

import pytest

from repro.bgp.mrai import ConstantMRAI
from repro.cli import main
from repro.core.adaptive import AdaptiveExtentMRAI
from repro.core.degree_mrai import DegreeDependentMRAI
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.experiment import ExperimentSpec
from repro.figures.common import QUICK
from repro.specs import (
    MRAI_SCHEMES,
    QUEUE_DISCIPLINES,
    SCHEME_SETS,
    MRAIScheme,
    SpecSerializationError,
    build_mrai,
    build_spec,
    mrai_to_scheme,
    register_mrai_scheme,
    register_scheme_set,
    scheme_keys,
    scheme_requires_topology,
    scheme_set,
    scheme_set_specs,
    spec_from_dict,
    spec_to_dict,
    validate_scheme,
)
from repro.store import Campaign, ResultStore, run_campaign
from repro.topology.skewed import skewed_topology


@pytest.fixture(scope="module")
def topo24():
    return skewed_topology(24, seed=1)


# ----------------------------------------------------------------------
# Round trip: every registered scheme set, every figure/ablation scheme
# ----------------------------------------------------------------------
@pytest.mark.parametrize("set_name", sorted(SCHEME_SETS.names()))
def test_scheme_sets_round_trip(set_name, topo24):
    pairs = scheme_set_specs(set_name, QUICK, topology=topo24)
    assert pairs, set_name
    for label, spec in pairs:
        d = spec_to_dict(spec)
        # The explicit dict is JSON-serializable (campaign files) ...
        assert json.loads(json.dumps(d)) == d
        # ... reproduces an equal spec ...
        again = spec_from_dict(d, topology=topo24)
        assert again == spec, (set_name, label)
        # ... and is a fixed point (idempotent canonical form).
        assert spec_to_dict(again) == d, (set_name, label)


@pytest.mark.parametrize("set_name", sorted(SCHEME_SETS.names()))
def test_scheme_set_dicts_validate_without_topology(set_name):
    # Parse-time validation never needs the network, even for the
    # topology-resolved schemes (adaptive/theory/inferred policy).
    for label, scheme in scheme_set(set_name, QUICK):
        validate_scheme(scheme)


def test_scheme_set_unknown_name():
    with pytest.raises(ValueError, match="unknown scheme set"):
        scheme_set("fig99_schemes", QUICK)


# ----------------------------------------------------------------------
# Golden canonical dicts, one per registered MRAI scheme kind
# ----------------------------------------------------------------------
#: spec_to_dict output for a default spec, minus the MRAI part.
BASE_DICT = {
    "queue": "fifo",
    "tcp_batch_size": 8,
    "failure_fraction": 0.05,
    "failure_kind": "geographic",
    "failure_center": None,
    "processing_delay_range": [0.001, 0.030],
    "withdrawal_rate_limiting": False,
    "sender_side_loop_detection": True,
    "per_destination_mrai": False,
    "damping": None,
    "policy": None,
    "detection_delay": 0.0,
    "detection_jitter": 0.0,
    "max_convergence_time": 3600.0,
    "max_warmup_time": 3600.0,
    "validate": False,
}

GOLDEN_MRAI_DICTS = {
    "constant": (
        ConstantMRAI(0.5),
        {"mrai_scheme": "constant", "mrai": 0.5},
    ),
    "degree": (
        DegreeDependentMRAI(0.5, 2.25),
        {
            "mrai_scheme": "degree",
            "mrai_low": 0.5,
            "mrai_high": 2.25,
            "degree_threshold": 4,
        },
    ),
    "dynamic": (
        DynamicMRAI(),
        {
            "mrai_scheme": "dynamic",
            "levels": [0.5, 1.25, 2.25],
            "up_th": 0.65,
            "down_th": 0.05,
            "monitor": "queue",
            "mean_service": 0.0155,
            "high_degree_only_threshold": None,
        },
    ),
    "adaptive": (
        AdaptiveExtentMRAI(total_destinations=24),
        {
            "mrai_scheme": "adaptive",
            "calibration": [[0.0, 0.5], [0.04, 1.25], [0.08, 2.25]],
            "window": 5.0,
            "total_destinations": 24,
        },
    ),
}


@pytest.mark.parametrize("kind", sorted(GOLDEN_MRAI_DICTS))
def test_spec_to_dict_golden_per_scheme_kind(kind):
    policy, mrai_part = GOLDEN_MRAI_DICTS[kind]
    spec = ExperimentSpec(mrai=policy)
    assert spec_to_dict(spec) == {**mrai_part, **BASE_DICT}
    assert spec.to_dict() == spec_to_dict(spec)


def test_every_serializable_scheme_kind_has_a_golden_dict():
    serializable = {
        name
        for name in MRAI_SCHEMES.names()
        if MRAI_SCHEMES.get(name).serialize is not None
    }
    assert serializable == set(GOLDEN_MRAI_DICTS)


def test_theory_scheme_serializes_as_resolved_dynamic(topo24):
    # "theory" has no serializer of its own: it builds a DynamicMRAI over
    # the recommended ladder, which round-trips as a plain dynamic dict.
    spec = build_spec({"mrai_scheme": "theory"}, topology=topo24)
    d = spec_to_dict(spec)
    assert d["mrai_scheme"] == "dynamic"
    assert spec_from_dict(d) == spec


def test_equal_meaning_paths_share_the_canonical_dict(topo24):
    direct = ExperimentSpec(mrai=AdaptiveExtentMRAI(total_destinations=24))
    resolved = build_spec({"mrai_scheme": "adaptive"}, topology=topo24)
    assert spec_to_dict(direct) == spec_to_dict(resolved)


def test_unserializable_policy_raises_with_pointer():
    class OddMRAI(ConstantMRAI):
        pass

    spec = ExperimentSpec(mrai=OddMRAI(0.5))
    # Subclasses don't inherit the registration: dispatch is exact-type,
    # since a subclass may behave differently under the same dict.
    with pytest.raises(
        SpecSerializationError, match="no registered mrai_scheme serializes"
    ):
        spec_to_dict(spec)


# ----------------------------------------------------------------------
# Typo-rejecting validation with per-field messages
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "scheme, match",
    [
        ({"mria": 0.5}, r"unknown scheme keys \['mria'\]"),
        ({"mrai_scheme": "quantum"}, "unknown mrai_scheme 'quantum'"),
        ({"mrai": -1.0}, "mrai must be non-negative"),
        ({"mrai": "fast"}, "mrai must be a number"),
        (
            {"mrai": 0.5, "levels": [1.0]},
            r"scheme keys \['levels'\] are not parameters of "
            "mrai_scheme 'constant'",
        ),
        (
            {"mrai_scheme": "dynamic", "levels": [2.0, 1.0]},
            "levels must be a non-empty ascending sequence",
        ),
        (
            {"mrai_scheme": "dynamic", "up_th": 0.1, "down_th": 0.5},
            "down_th must not exceed up_th",
        ),
        (
            {"mrai_scheme": "dynamic", "monitor": "vibes"},
            "unknown monitor 'vibes'",
        ),
        (
            {"mrai_scheme": "adaptive", "calibration": [[0.1, 0.5]]},
            "calibration",
        ),
        ({"queue": "lifo"}, "unknown queue discipline 'lifo'"),
        ({"damping": {"half_lif": 4.0}}, "unknown damping keys"),
        ({"policy": {"kind": "rpki"}}, "unknown routing policy 'rpki'"),
        (
            {"policy": {"kind": "gao-rexford"}},
            "exactly one of",
        ),
        ({"validate": "yes"}, "validate must be true or false"),
        ({"tcp_batch_size": 2.5}, "tcp_batch_size must be an integer"),
        (
            {"processing_delay_range": [0.1]},
            r"processing_delay_range must be a \[min, max\] pair",
        ),
    ],
)
def test_validation_messages(scheme, match):
    with pytest.raises(ValueError, match=match):
        validate_scheme(scheme)


def test_build_requires_topology_only_when_needed(topo24):
    assert not scheme_requires_topology({"mrai": 0.5})
    assert not scheme_requires_topology(
        {"mrai_scheme": "adaptive", "total_destinations": 24}
    )
    for scheme in (
        {"mrai_scheme": "adaptive"},
        {"mrai_scheme": "theory"},
        {"policy": {"kind": "gao-rexford", "infer": "hierarchical"}},
    ):
        assert scheme_requires_topology(scheme)
        with pytest.raises(ValueError, match="needs a topology"):
            build_spec(scheme)
        build_spec(scheme, topology=topo24)  # resolves fine with one


def test_scheme_keys_cover_registered_params():
    keys = scheme_keys()
    assert {"mrai_scheme", "damping", "policy", "queue", "mrai"} <= keys
    assert "levels" in keys and "calibration" in keys


# ----------------------------------------------------------------------
# Extending the registries: no CLI/campaign/figure edits needed
# ----------------------------------------------------------------------
def test_register_custom_mrai_scheme_and_scheme_set():
    register_mrai_scheme(
        MRAIScheme(
            name="jittered",
            params=("mrai",),
            parse=lambda scheme: {"mrai": float(scheme.get("mrai", 0.5))},
            build=lambda parsed, topology: ConstantMRAI(parsed["mrai"]),
        )
    )
    register_scheme_set(
        "custom_pair",
        lambda profile: (
            ("base", {"mrai": 0.5}),
            ("jittered", {"mrai_scheme": "jittered", "mrai": 0.75}),
        ),
    )
    try:
        spec = build_spec({"mrai_scheme": "jittered", "mrai": 0.75})
        assert spec.mrai == ConstantMRAI(0.75)
        labels = [label for label, _ in scheme_set("custom_pair", QUICK)]
        assert labels == ["base", "jittered"]
        # Campaigns see the new scheme through the same registry.
        campaign = Campaign.from_dict(
            {
                "name": "custom",
                "topology": {"kind": "skewed", "nodes": 16},
                "schemes": {"j": {"mrai_scheme": "jittered"}},
                "axis": {"name": "failure_fraction", "values": [0.1]},
                "seeds": [1],
            }
        )
        assert campaign.base_spec("j").mrai == ConstantMRAI(0.5)
    finally:
        MRAI_SCHEMES.unregister("jittered")
        SCHEME_SETS.unregister("custom_pair")


def test_duplicate_registration_requires_replace():
    with pytest.raises(ValueError, match="already registered"):
        register_mrai_scheme(MRAI_SCHEMES.get("constant"))
    register_mrai_scheme(MRAI_SCHEMES.get("constant"), replace=True)


def test_build_mrai_direct(topo24):
    assert build_mrai({"mrai": 2.25}) == ConstantMRAI(2.25)
    adaptive = build_mrai({"mrai_scheme": "adaptive"}, topo24)
    assert isinstance(adaptive, AdaptiveExtentMRAI)
    assert mrai_to_scheme(adaptive)["total_destinations"] == len(
        topo24.as_numbers()
    )


# ----------------------------------------------------------------------
# Campaign parity: every scheme kind the CLI can run, store-backed
# ----------------------------------------------------------------------
def zoo_campaign(**overrides):
    """One campaign scheme per kind the ``run`` subcommand supports."""
    schemes = {
        "constant": {"mrai": 0.5},
        "degree": {"mrai_scheme": "degree", "mrai_low": 0.5,
                   "mrai_high": 2.25},
        "dynamic": {"mrai_scheme": "dynamic"},
        "adaptive": {"mrai_scheme": "adaptive"},
        "theory": {"mrai_scheme": "theory"},
        "damped": {"mrai": 0.5, "damping": {"half_life": 4.0}},
        "policy": {
            "mrai": 0.5,
            "policy": {"kind": "gao-rexford", "infer": "hierarchical"},
        },
    }
    schemes.update(
        {f"q-{q}": {"mrai": 0.5, "queue": q}
         for q in QUEUE_DISCIPLINES.names()}
    )
    data = {
        "name": "zoo",
        "topology": {"kind": "skewed", "nodes": 20, "distribution": "70-30"},
        "schemes": schemes,
        "axis": {"name": "failure_fraction", "values": [0.1]},
        "seeds": [1],
    }
    data.update(overrides)
    return Campaign.from_dict(data)


def test_campaign_expresses_every_scheme_kind(tmp_path):
    campaign = zoo_campaign()
    # Topology-resolved schemes build against the first seed's topology.
    adaptive = campaign.base_spec("adaptive")
    assert isinstance(adaptive.mrai, AdaptiveExtentMRAI)
    assert isinstance(campaign.base_spec("theory").mrai, DynamicMRAI)
    assert campaign.base_spec("damped").damping is not None
    assert campaign.base_spec("policy").policy is not None

    with ResultStore(tmp_path / "zoo.db") as store:
        cold = run_campaign(campaign, store)
        assert cold.executed == campaign.total_trials
        warm = run_campaign(campaign, store)
    assert warm.executed == 0 and warm.cache_hit_rate == 1.0
    labels = sorted(s.label for s in cold.series)
    assert labels == sorted(campaign.schemes)


def test_adaptive_campaign_resumes_fully_cached(tmp_path):
    # The topology-resolved schemes hash deterministically: a fresh
    # Campaign object (fresh resolution) still hits 100% cache.
    def make():
        return Campaign.from_dict(
            {
                "name": "adaptive-smoke",
                "topology": {"kind": "skewed", "nodes": 20},
                "schemes": {
                    "adaptive": {"mrai_scheme": "adaptive"},
                    "theory": {"mrai_scheme": "theory"},
                },
                "axis": {"name": "failure_fraction", "values": [0.1, 0.2]},
                "seeds": [1],
            }
        )

    with ResultStore(tmp_path / "a.db") as store:
        cold = run_campaign(make(), store)
        assert cold.executed == 4
        warm = run_campaign(make(), store)
    assert warm.executed == 0 and warm.cache_hit_rate == 1.0


def test_campaign_rejects_bad_scheme_with_label():
    with pytest.raises(ValueError, match="scheme 'bad': unknown scheme keys"):
        zoo_campaign(schemes={"bad": {"mria": 0.5}})


# ----------------------------------------------------------------------
# The campaign validate fast path (CLI)
# ----------------------------------------------------------------------
def test_cli_campaign_validate(tmp_path, capsys):
    good = tmp_path / "good.json"
    zoo_campaign().save(good)
    assert main(["campaign", "validate", str(good)]) == 0
    out = capsys.readouterr().out
    assert "ok" in out and "campaign 'zoo'" in out

    bad = tmp_path / "bad.json"
    data = zoo_campaign().to_dict()
    data["schemes"]["typo"] = {"mrai_scheme": "quantum"}
    bad.write_text(json.dumps(data))
    assert main(["campaign", "validate", str(good), str(bad)]) == 2
    captured = capsys.readouterr()
    assert "INVALID" in captured.err
    assert "unknown mrai_scheme 'quantum'" in captured.err

    broken = tmp_path / "broken.json"
    broken.write_text("{not json")
    assert main(["campaign", "validate", str(broken)]) == 2
    assert "INVALID" in capsys.readouterr().err
