"""Property-based tests for the simulation kernel (hypothesis)."""

import statistics

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue
from repro.sim.rng import RandomStreams
from repro.sim.stats import OnlineStats
from repro.sim.timers import Jitter


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            st.integers(min_value=-3, max_value=3),
        ),
        max_size=200,
    )
)
def test_event_queue_pops_in_nondecreasing_time_order(items):
    q = EventQueue()
    for time, priority in items:
        q.push(time, lambda: None, priority=priority)
    popped = []
    while q:
        popped.append(q.pop())
    times = [e.time for e in popped]
    assert times == sorted(times)
    # Among equal times, (priority, seq) must be non-decreasing.
    for a, b in zip(popped, popped[1:]):
        if a.time == b.time:
            assert (a.priority, a.seq) < (b.priority, b.seq)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            st.booleans(),
        ),
        max_size=100,
    )
)
def test_event_queue_cancellation_accounting(items):
    q = EventQueue()
    live = 0
    for time, cancel in items:
        event = q.push(time, lambda: None)
        if cancel:
            q.note_cancelled(event)
        else:
            live += 1
    assert len(q) == live
    count = 0
    while q:
        event = q.pop()
        assert not event.cancelled
        count += 1
    assert count == live


@given(
    st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=200,
    )
)
def test_online_stats_matches_statistics_module(data):
    stats = OnlineStats()
    stats.extend(data)
    assert abs(stats.mean - statistics.fmean(data)) <= 1e-6 * max(
        1.0, abs(statistics.fmean(data))
    )
    expected_var = statistics.variance(data)
    assert abs(stats.variance - expected_var) <= 1e-6 * max(1.0, expected_var)
    assert stats.minimum == min(data)
    assert stats.maximum == max(data)


@given(
    st.floats(min_value=0.001, max_value=1000.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_jitter_stays_in_configured_band(duration, seed):
    import random

    jitter = Jitter(0.75, 1.0)
    rng = random.Random(seed)
    scaled = jitter.apply(duration, rng)
    assert 0.75 * duration <= scaled <= duration


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=30))
def test_rng_streams_deterministic(seed, name):
    a = RandomStreams(seed).get(name).random()
    b = RandomStreams(seed).get(name).random()
    assert a == b
