"""Tests for the per-node time-series probes."""

import pytest

from repro.bgp.mrai import ConstantMRAI
from repro.core.dynamic_mrai import DynamicMRAI
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.obs.probes import NetworkProbe, percentile
from repro.obs.session import ObsSession
from repro.topology.skewed import skewed_topology


def small_topo(seed=3):
    return skewed_topology(30, seed=seed)


def observed_run(spec, seed=1, **session_kwargs):
    session_kwargs.setdefault("sample_interval", 0.25)
    obs = ObsSession(**session_kwargs)
    result = run_experiment(small_topo(), spec, seed=seed, obs=obs)
    return obs, result


# ----------------------------------------------------------------------
# percentile helper
# ----------------------------------------------------------------------
def test_percentile_nearest_rank():
    values = [5.0, 1.0, 3.0, 2.0, 4.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 0.5) == 3.0
    assert percentile(values, 1.0) == 5.0
    assert percentile([], 0.5) == 0.0
    with pytest.raises(ValueError):
        percentile(values, 2.0)


# ----------------------------------------------------------------------
# Probe construction / arming
# ----------------------------------------------------------------------
def test_probe_rejects_bad_interval():
    obs, _ = observed_run(ExperimentSpec(mrai=ConstantMRAI(0.5)))
    net = obs.probe.network
    with pytest.raises(ValueError):
        NetworkProbe(net, interval=0.0)


def test_session_rejects_bad_interval():
    with pytest.raises(ValueError):
        ObsSession(sample_interval=-1.0)


def test_probe_detaches_at_quiescence():
    obs, result = observed_run(
        ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    )
    probe = obs.probe
    # The run finished (twice quiescent: warm-up then convergence), so the
    # probe must have detached itself rather than keep the sim alive.
    assert not probe.armed
    assert not result.truncated
    assert len(probe.aggregates) > 2


def test_probe_samples_cover_both_phases():
    obs, result = observed_run(
        ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    )
    times = obs.probe.times
    # Samples exist both before and after failure injection (the probe is
    # re-armed by ObsSession.on_failure between the phases).
    assert any(t <= result.failure_time for t in times)
    assert any(t > result.failure_time for t in times)
    assert times == sorted(times)


def test_probe_node_filter():
    obs, _ = observed_run(
        ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1),
        probe_nodes=(0, 1),
    )
    probe = obs.probe
    assert set(probe.sampled_nodes()) <= {0, 1}
    # Aggregates still cover the whole network.
    assert probe.aggregates[0].nodes == 30


def test_probe_aggregates_only_mode():
    obs, _ = observed_run(ExperimentSpec(mrai=ConstantMRAI(0.5)))
    net = obs.probe.network
    probe = NetworkProbe(net, interval=0.5, keep_node_samples=False)
    probe._sample()
    assert probe.node_samples == []
    assert len(probe.aggregates) == 1


def test_probe_aggregate_consistency():
    obs, _ = observed_run(
        ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    )
    for agg in obs.probe.aggregates:
        assert 0 <= agg.busy_nodes <= agg.nodes
        assert agg.queue_p50 <= agg.queue_p95 <= agg.queue_max
        assert agg.work_p50 <= agg.work_p95 <= agg.work_max
        assert sum(agg.mrai_levels.values()) == agg.nodes


def test_probe_tracks_dynamic_mrai_levels():
    obs, _ = observed_run(
        ExperimentSpec(mrai=DynamicMRAI(), failure_fraction=0.2), seed=2
    )
    levels = set()
    for agg in obs.probe.aggregates:
        levels.update(agg.mrai_levels)
    # A 20% failure pushes at least some routers off the base ladder level.
    assert 0 in levels
    assert len(levels) >= 2


def test_node_series_extraction():
    obs, _ = observed_run(
        ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    )
    probe = obs.probe
    node = probe.sampled_nodes()[0]
    series = probe.node_series(node, "queue_depth")
    assert len(series) == sum(1 for s in probe.node_samples if s.node == node)
    assert probe.peak("work_max") == max(probe.aggregate_series("work_max"))


# ----------------------------------------------------------------------
# Determinism and passivity
# ----------------------------------------------------------------------
def test_probe_sampling_deterministic():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    obs_a, _ = observed_run(spec, seed=5)
    obs_b, _ = observed_run(spec, seed=5)
    assert obs_a.probe.aggregates == obs_b.probe.aggregates
    assert obs_a.probe.node_samples == obs_b.probe.node_samples


def test_observation_is_passive():
    """An instrumented run takes the identical protocol trajectory.

    Probe ticks do add engine events (so ``events_executed`` grows and the
    absolute failure-injection timestamp lands on the later quiescence
    clock), but every protocol-level measurement is bit-identical.
    """
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    bare = run_experiment(small_topo(), spec, seed=5)
    _, observed = observed_run(spec, seed=5, profile=True)
    for attr in (
        "convergence_delay",
        "messages_sent",
        "withdrawals_sent",
        "updates_processed",
        "stale_dropped",
        "route_changes",
        "failure_size",
        "warmup_time",
        "warmup_messages",
        "truncated",
    ):
        assert getattr(bare, attr) == getattr(observed, attr), attr
    assert observed.events_executed > bare.events_executed  # probe ticks
