"""Property-based tests for BGP data structures and routing invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.config import BGPConfig
from repro.bgp.messages import Update
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.queues import DestinationBatchQueue, TCPBatchQueue
from repro.bgp.routes import Route
from repro.core.validation import validate_routing
from repro.topology.skewed import skewed_topology

# ---------------------------------------------------------------------------
# Route preference is a total order
# ---------------------------------------------------------------------------
routes = st.builds(
    Route,
    dest=st.just(1),
    path=st.lists(st.integers(min_value=2, max_value=50), max_size=6).map(tuple),
    peer=st.one_of(st.none(), st.integers(min_value=0, max_value=50)),
    ebgp=st.booleans(),
)


@given(routes, routes, routes)
def test_route_preference_total_order(a, b, c):
    # Antisymmetry.
    if a.better_than(b):
        assert not b.better_than(a)
    # Transitivity.
    if a.better_than(b) and b.better_than(c):
        assert a.better_than(c)
    # Totality: either one is strictly better or the keys are equal.
    assert (
        a.better_than(b)
        or b.better_than(a)
        or a.preference_key() == b.preference_key()
    )


@given(routes)
def test_route_never_better_than_itself(a):
    assert not a.better_than(a)
    assert a.same_selection(a)


# ---------------------------------------------------------------------------
# Queue disciplines conserve messages
# ---------------------------------------------------------------------------
updates = st.lists(
    st.builds(
        Update,
        dest=st.integers(min_value=0, max_value=5),
        path=st.one_of(
            st.none(),
            st.lists(st.integers(min_value=0, max_value=9), max_size=3).map(tuple),
        ),
        sender=st.integers(min_value=0, max_value=4),
        sent_at=st.floats(min_value=0, max_value=100, allow_nan=False),
    ),
    max_size=60,
)


@given(updates)
def test_dest_batch_conserves_messages(messages):
    q = DestinationBatchQueue()
    for m in messages:
        q.push(m)
    drained = 0
    dropped_total = 0
    while len(q):
        batch, dropped = q.pop_batch()
        drained += len(batch)
        dropped_total += dropped
        # Batch is single-destination with unique senders.
        assert len({m.dest for m in batch}) == 1
        assert len({m.sender for m in batch}) == len(batch)
    assert drained + dropped_total == len(messages)


@given(updates)
def test_dest_batch_keeps_newest_per_sender(messages):
    q = DestinationBatchQueue()
    for m in messages:
        q.push(m)
    retained = []
    while len(q):
        batch, __ = q.pop_batch()
        retained.extend(batch)
    # For every (dest, sender), the retained message is the last pushed.
    last = {}
    for m in messages:
        last[(m.dest, m.sender)] = m
    assert {id(m) for m in retained} == {id(m) for m in last.values()}


@given(updates, st.integers(min_value=1, max_value=10))
def test_tcp_batch_conserves_messages(messages, batch_size):
    q = TCPBatchQueue(batch_size)
    for m in messages:
        q.push(m)
    drained = 0
    dropped_total = 0
    while len(q):
        batch, dropped = q.pop_batch()
        assert len(batch) + dropped <= batch_size
        drained += len(batch)
        dropped_total += dropped
    assert drained + dropped_total == len(messages)


# ---------------------------------------------------------------------------
# End-to-end routing invariants on random small networks
# ---------------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    topo_seed=st.integers(min_value=0, max_value=1000),
    sim_seed=st.integers(min_value=0, max_value=1000),
    mrai=st.sampled_from([0.0, 0.5, 2.25]),
    discipline=st.sampled_from(["fifo", "dest_batch"]),
    failure_seed=st.integers(min_value=0, max_value=1000),
    failure_count=st.integers(min_value=1, max_value=6),
)
def test_random_failures_always_converge_to_valid_routing(
    topo_seed, sim_seed, mrai, discipline, failure_seed, failure_count
):
    topo = skewed_topology(20, seed=topo_seed)
    config = BGPConfig(
        mrai_policy=ConstantMRAI(mrai), queue_discipline=discipline
    )
    net = BGPNetwork(topo, config, seed=sim_seed)
    net.start()
    net.run_until_quiet(max_time=3600)
    assert net.is_quiescent()
    validate_routing(net)
    victims = random.Random(failure_seed).sample(
        topo.node_ids(), failure_count
    )
    net.fail_nodes(victims)
    net.run_until_quiet(max_time=7200)
    assert net.is_quiescent()
    validate_routing(net)
