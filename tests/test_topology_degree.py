"""Unit tests for degree sequences: specs, graphicality, realization."""

import random
from collections import Counter

import pytest

from repro.topology.degree import (
    DegreeSequenceError,
    InternetDegreeDistribution,
    SkewedDegreeSpec,
    connect_graph,
    havel_hakimi_graph,
    is_graphical,
    make_graphical,
    realize_degree_sequence,
    rewire_for_randomness,
)


# ---------------------------------------------------------------------------
# Graphicality
# ---------------------------------------------------------------------------
def test_is_graphical_known_cases():
    assert is_graphical([])
    assert is_graphical([0])
    assert is_graphical([1, 1])
    assert is_graphical([2, 2, 2])          # triangle
    assert is_graphical([3, 3, 3, 3])       # K4
    assert not is_graphical([1])            # odd sum
    assert not is_graphical([3, 1, 1])      # fails Erdos-Gallai
    assert not is_graphical([4, 1, 1, 1])   # max degree too large given rest
    assert not is_graphical([5, 1, 1, 1, 1])
    assert not is_graphical([2, 2, 1])      # odd sum
    assert not is_graphical([-1, 1])


def test_is_graphical_rejects_degree_ge_n():
    assert not is_graphical([3, 1, 1])
    assert not is_graphical([2, 2])


def test_make_graphical_fixes_parity():
    fixed = make_graphical([2, 2, 1])
    assert is_graphical(fixed)
    assert sum(fixed) % 2 == 0


def test_make_graphical_preserves_already_good():
    seq = [3, 3, 2, 2, 2]
    assert sorted(make_graphical(seq)) == sorted(seq)


def test_make_graphical_clips_excessive_degrees():
    fixed = make_graphical([10, 1, 1, 1])
    assert is_graphical(fixed)
    assert max(fixed) <= 3


def test_make_graphical_rejects_tiny_input():
    with pytest.raises(DegreeSequenceError):
        make_graphical([1])


# ---------------------------------------------------------------------------
# Havel-Hakimi
# ---------------------------------------------------------------------------
def test_havel_hakimi_realizes_exact_degrees():
    seq = [3, 3, 2, 2, 2]
    assert is_graphical(seq)
    edges = havel_hakimi_graph(seq)
    degree = Counter()
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    assert [degree[i] for i in range(len(seq))] == seq


def test_havel_hakimi_produces_simple_graph():
    seq = [4, 3, 3, 2, 2, 2]
    edges = havel_hakimi_graph(seq)
    assert len(edges) == len(set(edges))
    assert all(a != b for a, b in edges)


def test_havel_hakimi_rejects_non_graphical():
    with pytest.raises(DegreeSequenceError):
        havel_hakimi_graph([3, 1, 1])


# ---------------------------------------------------------------------------
# Rewiring / connectivity
# ---------------------------------------------------------------------------
def degrees_of(edges, n):
    degree = Counter()
    for a, b in edges:
        degree[a] += 1
        degree[b] += 1
    return [degree[i] for i in range(n)]


def test_rewire_preserves_degrees_and_simplicity():
    seq = [3, 3, 3, 3, 2, 2, 2, 2]
    edges = havel_hakimi_graph(seq)
    rng = random.Random(5)
    rewired = rewire_for_randomness(edges, rng)
    assert degrees_of(rewired, len(seq)) == seq
    assert len(rewired) == len(set(rewired))
    assert all(a < b for a, b in rewired)


def test_rewire_rejects_duplicate_input():
    with pytest.raises(DegreeSequenceError):
        rewire_for_randomness([(0, 1), (0, 1)], random.Random(0))


def test_connect_graph_merges_components():
    # Two disjoint triangles.
    edges = [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]
    rng = random.Random(1)
    connected = connect_graph(edges, 6, rng)
    assert degrees_of(connected, 6) == [2] * 6
    adj = {i: set() for i in range(6)}
    for a, b in connected:
        adj[a].add(b)
        adj[b].add(a)
    seen = {0}
    stack = [0]
    while stack:
        v = stack.pop()
        for u in adj[v]:
            if u not in seen:
                seen.add(u)
                stack.append(u)
    assert seen == set(range(6))


def test_realize_degree_sequence_end_to_end():
    rng = random.Random(7)
    seq = [8] * 6 + [2] * 14
    edges = realize_degree_sequence(seq, rng, connected=True)
    realized = degrees_of(edges, len(seq))
    # The repair step may shave at most a little; shape must be preserved.
    assert sum(realized) == sum(make_graphical(seq))
    assert len(edges) == len(set(edges))


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------
def test_paper_specs_average_degrees():
    assert SkewedDegreeSpec.paper_70_30().expected_average_degree() == pytest.approx(3.8)
    assert SkewedDegreeSpec.paper_50_50().expected_average_degree() == pytest.approx(3.75)
    assert SkewedDegreeSpec.paper_85_15().expected_average_degree() == pytest.approx(3.8)
    assert SkewedDegreeSpec.paper_50_50_dense().expected_average_degree() == pytest.approx(7.75)


def test_skewed_sample_class_split_is_exact():
    spec = SkewedDegreeSpec.paper_70_30()
    rng = random.Random(3)
    seq = spec.sample(100, rng)
    low = sum(1 for d in seq if d <= 3)
    high = sum(1 for d in seq if d == 8)
    assert low == 70
    assert high == 30


def test_skewed_sample_degrees_within_ranges():
    spec = SkewedDegreeSpec(0.5, (1, 3), (5, 6))
    seq = spec.sample(40, random.Random(1))
    assert all(1 <= d <= 3 or 5 <= d <= 6 for d in seq)


def test_skewed_spec_validation():
    with pytest.raises(ValueError):
        SkewedDegreeSpec(0.0)
    with pytest.raises(ValueError):
        SkewedDegreeSpec(1.0)
    with pytest.raises(ValueError):
        SkewedDegreeSpec(0.5, (0, 3))
    with pytest.raises(ValueError):
        SkewedDegreeSpec(0.5, (3, 1))


def test_skewed_sample_needs_two_nodes():
    with pytest.raises(ValueError):
        SkewedDegreeSpec.paper_70_30().sample(1, random.Random(0))


def test_high_degree_threshold():
    assert SkewedDegreeSpec.paper_70_30().high_degree_threshold() == 7
    assert SkewedDegreeSpec.paper_50_50().high_degree_threshold() == 4


def test_internet_distribution_statistics():
    dist = InternetDegreeDistribution()
    seq = dist.sample(5000, random.Random(2))
    assert max(seq) <= 40
    assert min(seq) >= 1
    low_share = sum(1 for d in seq if d <= 3) / len(seq)
    # The paper: ~70% of ASes connect to fewer than 4 others.
    assert 0.6 <= low_share <= 0.95
    pmf = dist.pmf()
    assert sum(pmf.values()) == pytest.approx(1.0)
    assert 1.5 <= dist.expected_average_degree() <= 5.0


def test_internet_distribution_validation():
    with pytest.raises(ValueError):
        InternetDegreeDistribution(alpha=1.0)
    with pytest.raises(ValueError):
        InternetDegreeDistribution(min_degree=5, max_degree=2)
    with pytest.raises(ValueError):
        InternetDegreeDistribution().sample(1, random.Random(0))
