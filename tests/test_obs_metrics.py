"""Unit tests for the metrics registry (counters, gauges, histograms)."""

import pytest

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    format_metric_name,
)


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_counter_get_or_create_returns_same_child():
    reg = MetricsRegistry()
    a = reg.counter("updates_processed", node=7)
    b = reg.counter("updates_processed", node=7)
    assert a is b
    a.inc()
    assert b.value == 1


def test_labels_distinguish_children():
    reg = MetricsRegistry()
    reg.counter("updates_processed", node=1).inc(3)
    reg.counter("updates_processed", node=2).inc(5)
    assert reg.get("updates_processed", node=1).value == 3
    assert reg.get("updates_processed", node=2).value == 5
    assert len(reg) == 2


def test_label_order_does_not_matter():
    reg = MetricsRegistry()
    a = reg.gauge("depth", node=1, link=2)
    b = reg.gauge("depth", link=2, node=1)
    assert a is b


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_histogram_bucket_conflict_raises():
    reg = MetricsRegistry()
    reg.histogram("h", buckets=(1, 2, 3))
    with pytest.raises(ValueError):
        reg.histogram("h", buckets=(1, 2, 4))
    # Same buckets is fine and returns the same child.
    assert reg.histogram("h", buckets=(1, 2, 3)) is reg.get("h")


def test_get_never_creates():
    reg = MetricsRegistry()
    assert reg.get("nope") is None
    assert reg.get("nope", node=1) is None
    assert len(reg) == 0


def test_records_deterministic_order():
    reg = MetricsRegistry()
    reg.counter("b", node=2).inc()
    reg.counter("b", node=1).inc()
    reg.counter("a").inc()
    names = [r["name"] for r in reg.records()]
    assert names == ["a", "b", "b"]
    # Repeated calls give the identical ordering.
    assert [r["name"] for r in reg.records()] == names


def test_snapshot_flat_view():
    reg = MetricsRegistry()
    reg.counter("msgs").inc(4)
    reg.gauge("depth", node=3).set(7)
    h = reg.histogram("svc", buckets=(1.0, 2.0))
    h.observe(1.0)
    h.observe(2.0)
    snap = reg.snapshot()
    assert snap["msgs"] == 4
    assert snap["depth{node=3}"] == 7
    assert snap["svc"] == pytest.approx(1.5)  # histograms report their mean


def test_clear():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    reg.clear()
    assert len(reg) == 0
    assert reg.records() == []


def test_format_metric_name():
    assert format_metric_name("plain", ()) == "plain"
    assert format_metric_name("m", (("a", 1), ("b", "x"))) == "m{a=1,b=x}"


# ----------------------------------------------------------------------
# Counter
# ----------------------------------------------------------------------
def test_counter_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("c")
    with pytest.raises(ValueError):
        c.inc(-1)
    c.inc(0)
    c.inc(5)
    assert c.value == 5


# ----------------------------------------------------------------------
# Gauge
# ----------------------------------------------------------------------
def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("g")
    g.set(10)
    g.inc(2)
    g.dec(5)
    assert g.value == 7


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_bucketing_exact():
    h = Histogram("h", (), buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0, 1.5, 3.0, 9.0):
        h.observe(v)
    # bisect_left: a value equal to a bound lands in that bound's bucket.
    assert h.counts == [2, 1, 1, 1]
    assert h.count == 5
    assert h.sum == pytest.approx(15.0)
    assert h.mean == pytest.approx(3.0)
    assert h.overflow == 1


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=())
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram("h", (), buckets=(1.0, 1.0, 2.0))


def test_histogram_percentile_upper_bound_semantics():
    h = Histogram("h", (), buckets=(1.0, 2.0, 4.0))
    for v in (0.5, 0.6, 0.7, 1.5, 3.5):
        h.observe(v)
    assert h.percentile(0.0) == 1.0
    assert h.percentile(0.5) == 1.0  # rank 3 of 5 still in first bucket
    assert h.percentile(0.8) == 2.0
    assert h.percentile(1.0) == 4.0


def test_histogram_percentile_edge_cases():
    h = Histogram("h", (), buckets=(1.0,))
    assert h.percentile(0.5) == 0.0  # empty histogram
    h.observe(99.0)  # overflow only
    assert h.percentile(0.5) == float("inf")
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_histogram_merge():
    a = Histogram("h", (), buckets=(1.0, 2.0))
    b = Histogram("h", (), buckets=(1.0, 2.0))
    a.observe(0.5)
    a.observe(1.5)
    b.observe(1.5)
    b.observe(5.0)
    a.merge(b)
    assert a.counts == [1, 2, 1]
    assert a.count == 4
    assert a.sum == pytest.approx(8.5)
    # Merge is one-way: b is untouched.
    assert b.count == 2


def test_histogram_merge_requires_same_buckets():
    a = Histogram("h", (), buckets=(1.0, 2.0))
    b = Histogram("h", (), buckets=(1.0, 3.0))
    with pytest.raises(ValueError):
        a.merge(b)


def test_default_buckets_are_ascending():
    assert list(DEFAULT_TIME_BUCKETS) == sorted(set(DEFAULT_TIME_BUCKETS))
    assert list(DEFAULT_COUNT_BUCKETS) == sorted(set(DEFAULT_COUNT_BUCKETS))


def test_histogram_default_buckets_applied():
    reg = MetricsRegistry()
    h = reg.histogram("svc")
    assert h.buckets == DEFAULT_TIME_BUCKETS
