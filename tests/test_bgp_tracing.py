"""Tests for protocol tracing integration."""

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.sim.timers import Jitter
from repro.sim.trace import Tracer
from tests.conftest import line_topology


def traced_network(categories=None):
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    tracer = Tracer(categories=categories)
    net = BGPNetwork(line_topology(3), config, seed=1, tracer=tracer)
    return net, tracer


def test_trace_records_protocol_events():
    net, tracer = traced_network()
    net.start()
    net.run_until_quiet()
    categories = {r.category for r in tracer.records}
    assert "update_sent" in categories
    assert "route_change" in categories
    # Trace counts agree with counters.
    sent_traced = sum(
        1
        for r in tracer.records
        if r.category in ("update_sent", "withdraw_sent")
    )
    assert sent_traced == net.counters["updates_sent"]


def test_trace_records_failures_and_withdrawals():
    net, tracer = traced_network()
    net.start()
    net.run_until_quiet()
    tracer.clear()
    net.fail_nodes([2])
    net.run_until_quiet()
    categories = {r.category for r in tracer.records}
    assert "peer_down" in categories
    assert "withdraw_sent" in categories


def test_trace_category_filtering_at_source():
    net, tracer = traced_network(categories={"peer_down"})
    net.start()
    net.run_until_quiet()
    assert len(tracer) == 0
    net.fail_nodes([2])
    net.run_until_quiet()
    assert all(r.category == "peer_down" for r in tracer.records)
    assert len(tracer) == 1


def test_default_null_tracer_records_nothing():
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    net = BGPNetwork(line_topology(3), config, seed=1)
    net.start()
    net.run_until_quiet()
    assert len(net.sim.tracer.records) == 0


def test_tracing_does_not_change_outcomes():
    def outcome(tracer):
        config = BGPConfig(
            mrai_policy=ConstantMRAI(0.5),
            processing_delay_range=(0.0, 0.0),
            mrai_jitter=Jitter.none(),
        )
        net = BGPNetwork(line_topology(4), config, seed=1, tracer=tracer)
        net.start()
        net.run_until_quiet()
        net.fail_nodes([3])
        net.run_until_quiet()
        return net.counters.snapshot(), net.last_activity

    assert outcome(None) == outcome(Tracer())
