"""Tests for event-loop profiling and the engine's on_event hook."""

import pytest

from repro.obs.profiling import EventLoopProfiler, handler_category
from repro.sim.engine import Simulator


def noop():
    pass


class Handler:
    def fire(self):
        pass


# ----------------------------------------------------------------------
# handler_category
# ----------------------------------------------------------------------
def test_handler_category_uses_qualname():
    assert handler_category(noop) == "noop"
    assert handler_category(Handler().fire) == "Handler.fire"


def test_handler_category_falls_back_to_type():
    class Callable_:
        def __call__(self):
            pass

    obj = Callable_()
    # Instances have no __qualname__; the type name is the category.
    assert handler_category(obj) == "Callable_"


# ----------------------------------------------------------------------
# Engine hook
# ----------------------------------------------------------------------
def test_hook_disabled_by_default():
    sim = Simulator(seed=0)
    assert sim.on_event is None
    sim.schedule(1.0, noop)
    sim.run()
    assert sim.events_executed == 1


def test_hook_sees_every_event():
    sim = Simulator(seed=0)
    seen = []
    sim.on_event = lambda event, elapsed: seen.append((event.fn, elapsed))
    for _ in range(5):
        sim.schedule(1.0, noop)
    sim.run()
    assert len(seen) == 5
    assert all(fn is noop for fn, _ in seen)
    assert all(elapsed >= 0.0 for _, elapsed in seen)


def test_hook_fires_in_step_mode():
    sim = Simulator(seed=0)
    seen = []
    sim.on_event = lambda event, elapsed: seen.append(event)
    sim.schedule(1.0, noop)
    assert sim.step()
    assert len(seen) == 1
    assert not sim.step()


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
def test_profiler_attach_detach():
    sim = Simulator(seed=0)
    profiler = EventLoopProfiler()
    profiler.attach(sim)
    assert sim.on_event is not None
    profiler.attach(sim)  # re-attaching the same profiler is fine
    profiler.detach(sim)
    assert sim.on_event is None
    profiler.detach(sim)  # idempotent


def test_profiler_refuses_to_clobber_foreign_hook():
    sim = Simulator(seed=0)
    sim.on_event = lambda event, elapsed: None
    with pytest.raises(ValueError):
        EventLoopProfiler().attach(sim)


def test_profiler_accumulates_by_category():
    sim = Simulator(seed=0)
    profiler = EventLoopProfiler()
    profiler.attach(sim)
    handler = Handler()
    for _ in range(3):
        sim.schedule(1.0, noop)
    for _ in range(2):
        sim.schedule(1.0, handler.fire)
    sim.run()
    assert profiler.total_events == 5
    by_cat = {r.category: r for r in profiler.report()}
    assert by_cat["noop"].events == 3
    assert by_cat["Handler.fire"].events == 2
    assert sum(r.share for r in profiler.report()) == pytest.approx(1.0)


def test_profiler_accumulates_across_simulators():
    profiler = EventLoopProfiler()
    for seed in (1, 2):
        sim = Simulator(seed=seed)
        profiler.attach(sim)
        sim.schedule(1.0, noop)
        sim.run()
    assert profiler.total_events == 2


def test_profiler_report_ordering_and_topk():
    profiler = EventLoopProfiler()
    profiler._stats = {"a": [1, 0.5], "b": [10, 2.0], "c": [5, 1.0]}
    profiler.total_events = 16
    profiler.total_seconds = 3.5
    rows = profiler.report()
    assert [r.category for r in rows] == ["b", "c", "a"]
    assert [r.category for r in profiler.report(top_k=2)] == ["b", "c"]
    assert rows[0].share == pytest.approx(2.0 / 3.5)
    assert rows[0].mean_us == pytest.approx(2.0 / 10 * 1e6)


def test_profiler_reset():
    sim = Simulator(seed=0)
    profiler = EventLoopProfiler()
    profiler.attach(sim)
    sim.schedule(1.0, noop)
    sim.run()
    profiler.reset()
    assert profiler.total_events == 0
    assert profiler.report() == []


def test_profiler_render_and_records():
    sim = Simulator(seed=0)
    profiler = EventLoopProfiler()
    profiler.attach(sim)
    for _ in range(4):
        sim.schedule(1.0, noop)
    sim.run()
    text = profiler.render(top_k=10)
    assert "noop" in text
    assert "4 events" in text
    records = profiler.records()
    assert records[0]["kind"] == "profile"
    assert records[0]["category"] == "noop"
    assert records[0]["events"] == 4


def test_events_per_second_degenerate():
    profiler = EventLoopProfiler()
    assert profiler.events_per_second == 0.0
