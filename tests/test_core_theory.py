"""Tests for the analytic models and parameter-selection heuristics."""

import pytest

from repro.core.theory import (
    expected_update_load,
    labovitz_clique_bound,
    pei_unloaded_bound,
    recommend_ladder,
    recommend_mrai,
    saturation_mrai_ratio,
)
from repro.topology.degree import SkewedDegreeSpec
from repro.topology.skewed import skewed_topology


def topo120():
    return skewed_topology(120, SkewedDegreeSpec.paper_70_30(), seed=3)


def test_labovitz_bound_values():
    assert labovitz_clique_bound(3, 1.0) == 0.0
    assert labovitz_clique_bound(8, 1.0) == 5.0
    assert labovitz_clique_bound(8, 2.0) == 10.0


def test_labovitz_bound_validation():
    with pytest.raises(ValueError):
        labovitz_clique_bound(2, 1.0)
    with pytest.raises(ValueError):
        labovitz_clique_bound(5, -1.0)


def test_pei_bound_monotone_in_path_and_mrai():
    assert pei_unloaded_bound(5, 1.0, 0.015) > pei_unloaded_bound(3, 1.0, 0.015)
    assert pei_unloaded_bound(5, 2.0, 0.015) > pei_unloaded_bound(5, 1.0, 0.015)
    assert pei_unloaded_bound(0, 1.0, 0.015) == 0.0
    with pytest.raises(ValueError):
        pei_unloaded_bound(-1, 1.0, 0.015)


def test_expected_update_load():
    assert expected_update_load(8, 6) == pytest.approx(96.0)
    assert expected_update_load(0, 6) == 0.0
    with pytest.raises(ValueError):
        expected_update_load(-1, 2)


def test_recommend_mrai_grows_with_failure_size():
    topo = topo120()
    values = [recommend_mrai(topo, f) for f in (0.01, 0.05, 0.10, 0.20)]
    assert values == sorted(values)
    assert values[0] < values[-1]


def test_recommend_mrai_grows_with_high_degree():
    sparse = skewed_topology(120, SkewedDegreeSpec.paper_50_50(), seed=3)
    heavy = skewed_topology(120, SkewedDegreeSpec.paper_85_15(), seed=3)
    assert recommend_mrai(heavy, 0.05) > recommend_mrai(sparse, 0.05)


def test_recommend_mrai_within_factor_two_of_paper_optima():
    """Paper's 120-node 70-30 optima: ~0.5 s @1%, ~1.25 s @5%."""
    topo = topo120()
    assert recommend_mrai(topo, 0.01) == pytest.approx(0.5, rel=1.0)
    assert recommend_mrai(topo, 0.05) == pytest.approx(1.25, rel=1.0)


def test_recommend_mrai_validation():
    topo = topo120()
    with pytest.raises(ValueError):
        recommend_mrai(topo, 0.0)
    with pytest.raises(ValueError):
        recommend_mrai(topo, 0.05, mean_service=0.0)


def test_recommend_ladder_is_ascending_and_floored():
    topo = topo120()
    ladder = recommend_ladder(topo, floor=0.25)
    assert ladder == tuple(sorted(set(ladder)))
    assert ladder[0] >= 0.25
    assert len(ladder) >= 2


def test_recommend_ladder_feeds_dynamic_policy():
    from repro.core.dynamic_mrai import DynamicMRAI

    topo = topo120()
    policy = DynamicMRAI(levels=recommend_ladder(topo))
    controller = policy.controller_for(0, 8)
    assert controller.value() == policy.levels[0]


def test_recommend_ladder_validation():
    with pytest.raises(ValueError):
        recommend_ladder(topo120(), fractions=())


def test_saturation_ratio():
    topo = topo120()
    optimum = recommend_mrai(topo, 0.05)
    assert saturation_mrai_ratio(topo, 0.05, optimum) == pytest.approx(1.0)
    assert saturation_mrai_ratio(topo, 0.05, optimum / 2) == pytest.approx(2.0)
    assert saturation_mrai_ratio(topo, 0.05, 0.0) == float("inf")
