"""Tests for route flap damping (RFC 2439)."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.damping import DampingConfig, DampingState
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.core.validation import validate_routing
from repro.sim.timers import Jitter
from repro.topology.skewed import skewed_topology
from tests.conftest import clique_topology, line_topology


# ---------------------------------------------------------------------------
# Config / state unit tests
# ---------------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        DampingConfig(half_life=0.0)
    with pytest.raises(ValueError):
        DampingConfig(reuse_threshold=3000.0)  # above cut
    with pytest.raises(ValueError):
        DampingConfig(withdrawal_penalty=-1.0)
    with pytest.raises(ValueError):
        DampingConfig(max_penalty=100.0)


def test_penalty_accumulates_and_suppresses():
    state = DampingState(DampingConfig())
    assert not state.record_withdrawal(now=0.0)  # 1000 < 2000
    assert not state.record_withdrawal(now=0.1)  # ~1955, still below cut
    assert state.record_withdrawal(now=0.2)      # ~2900 -> suppressed
    assert state.suppressed


def test_penalty_decays_exponentially():
    config = DampingConfig(half_life=10.0)
    state = DampingState(config)
    state.record_withdrawal(now=0.0)
    assert state.current_penalty(10.0) == pytest.approx(500.0, rel=1e-6)
    assert state.current_penalty(20.0) == pytest.approx(250.0, rel=1e-6)


def test_penalty_capped():
    config = DampingConfig(half_life=1000.0)
    state = DampingState(config)
    for i in range(50):
        state.record_withdrawal(now=i * 0.001)
    assert state.penalty <= config.max_penalty


def test_reuse_after_decay():
    config = DampingConfig(half_life=1.0)
    state = DampingState(config)
    state.record_withdrawal(now=0.0)
    state.record_withdrawal(now=0.0)
    state.record_withdrawal(now=0.0)
    assert state.suppressed
    assert not state.maybe_reuse(now=0.5)
    eta = state.time_until_reuse(now=0.0)
    assert eta is not None and eta > 0
    assert state.maybe_reuse(now=eta + 0.01)
    assert not state.suppressed
    assert state.time_until_reuse(now=eta + 0.01) is None


def test_reuse_delay_formula():
    config = DampingConfig(half_life=10.0)
    # Penalty 3000 decaying to 750 takes two half-lives = 20 s.
    assert config.reuse_delay(3000.0) == pytest.approx(20.0, rel=1e-6)
    assert config.reuse_delay(100.0) == 0.0


def test_readvertisement_penalty_smaller():
    config = DampingConfig()
    state = DampingState(config)
    state.record_readvertisement(now=0.0)
    assert state.penalty == pytest.approx(500.0)


# ---------------------------------------------------------------------------
# Speaker integration
# ---------------------------------------------------------------------------
def damped_network(topo, half_life=2.0, seed=1, damping=None):
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        damping=damping or DampingConfig(half_life=half_life),
    )
    net = BGPNetwork(topo, config, seed=seed)
    net.start()
    net.run_until_quiet()
    return net


def test_initial_advertisements_carry_no_penalty():
    net = damped_network(line_topology(4))
    for speaker in net.speakers.values():
        assert not speaker._damping  # no flaps during clean warm-up
        assert speaker.loc_rib.destinations() == {0, 1, 2, 3}


def test_flapping_route_gets_suppressed_and_reused():
    # Aggressive thresholds so a single withdrawal suppresses: in this
    # deterministic zero-service clique, exploration flaps each slot only
    # once or twice.
    net = damped_network(
        clique_topology(5),
        damping=DampingConfig(
            half_life=1.0, cut_threshold=900.0, reuse_threshold=400.0
        ),
    )
    snapshot = net.counters.snapshot()
    net.fail_nodes([4])
    net.run_until_quiet()
    diff = net.counters.diff(snapshot)
    assert diff.get("routes_suppressed", 0) > 0
    # Network still converges to a correct state afterwards.
    validate_routing(net)


def test_damping_network_converges_and_validates_under_large_failure():
    topo = skewed_topology(36, seed=4)
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        damping=DampingConfig(half_life=2.0),
    )
    net = BGPNetwork(topo, config, seed=1)
    net.start()
    net.run_until_quiet(max_time=3600)
    snapshot = net.counters.snapshot()
    victims = topo.nodes_by_distance(500, 500)[:7]
    net.fail_nodes(victims)
    net.run_until_quiet(max_time=7200)
    assert net.is_quiescent()
    validate_routing(net)
    diff = net.counters.diff(snapshot)
    # Exploration triggered damping...
    assert diff.get("routes_suppressed", 0) > 0
    # ...and every suppressed-but-needed route was eventually reused
    # (validate_routing would have failed otherwise).


def test_damping_lengthens_convergence_after_single_event():
    """The Mao et al. pathology: damping penalizes path exploration."""

    def delay(with_damping):
        topo = skewed_topology(36, seed=4)
        config = BGPConfig(
            mrai_policy=ConstantMRAI(0.5),
            damping=DampingConfig(half_life=4.0) if with_damping else None,
        )
        net = BGPNetwork(topo, config, seed=1)
        net.start()
        net.run_until_quiet(max_time=3600)
        t0 = net.fail_nodes(topo.nodes_by_distance(500, 500)[:7])
        net.run_until_quiet(max_time=7200)
        return net.last_activity - t0

    assert delay(True) > delay(False)


def test_suppressed_route_not_selected():
    net = damped_network(line_topology(3))
    speaker = net.speakers[0]
    from repro.bgp.damping import DampingState as DS

    state = DS(net.config.damping)
    state.record_withdrawal(0.0)
    state.record_withdrawal(0.0)
    state.record_withdrawal(0.0)
    assert state.suppressed
    speaker._damping[(1, 2)] = state
    speaker._reselect(2)
    # Destination 2 was only reachable via peer 1 -> now unselected.
    assert speaker.best_route(2) is None
