"""Tests for node recovery and genuine route-flap scenarios."""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.damping import DampingConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.session import SessionConfig
from repro.core.validation import validate_routing
from repro.sim.timers import Jitter
from repro.topology.skewed import skewed_topology
from tests.conftest import converged_network, line_topology, ring_topology


def test_recovery_restores_full_reachability():
    net = converged_network(ring_topology(6))
    net.fail_nodes([2])
    net.run_until_quiet()
    assert 2 not in net.speakers[0].loc_rib.destinations()
    net.recover_nodes([2])
    net.run_until_quiet()
    validate_routing(net)
    for speaker in net.speakers.values():
        assert speaker.loc_rib.destinations() == set(range(6))
    assert net.counters["nodes_recovered"] == 1
    assert net.failed_nodes == set()


def test_recovered_router_has_cold_state():
    net = converged_network(line_topology(4))
    net.fail_nodes([1])
    net.run_until_quiet()
    net.recover_nodes([1])
    # Before running: RIB holds only the re-originated own prefix.
    assert net.speakers[1].loc_rib.destinations() == {1}
    assert net.speakers[1].adj_rib_in.route_count() == 0
    net.run_until_quiet()
    assert net.speakers[1].loc_rib.destinations() == {0, 1, 2, 3}


def test_recovery_is_idempotent_and_ignores_alive_nodes():
    net = converged_network(line_topology(3))
    net.recover_nodes([0])  # already alive: no-op
    assert net.counters["nodes_recovered"] == 0
    net.fail_nodes([2])
    net.run_until_quiet()
    net.recover_nodes([2])
    net.recover_nodes([2])
    assert net.counters["nodes_recovered"] == 1


def test_recovery_mid_partition_heals_the_partition():
    net = converged_network(line_topology(5))
    net.fail_nodes([2])
    net.run_until_quiet()
    assert net.speakers[0].loc_rib.destinations() == {0, 1}
    net.recover_nodes([2])
    net.run_until_quiet()
    validate_routing(net)
    assert net.speakers[0].loc_rib.destinations() == {0, 1, 2, 3, 4}


def test_repeated_fail_recover_cycles_stay_correct():
    net = converged_network(skewed_topology(24, seed=5))
    victim = net.topology.nodes_by_distance(500, 500)[0]
    for _ in range(3):
        net.fail_nodes([victim])
        net.run_until_quiet()
        net.recover_nodes([victim])
        net.run_until_quiet()
    validate_routing(net)


def test_recovery_with_explicit_sessions():
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        session=SessionConfig(hold_time=3.0, keepalive_time=1.0),
    )
    net = BGPNetwork(line_topology(4), config, seed=1)
    net.start()
    net.run_until_converged(idle_window=2.0, max_time=120.0)
    net.fail_nodes([3])
    net.run_until_converged(idle_window=4.0, max_time=net.sim.now + 120.0)
    assert 3 not in net.speakers[0].loc_rib.destinations()
    net.recover_nodes([3])
    net.run_until_converged(idle_window=4.0, max_time=net.sim.now + 120.0)
    assert 3 in net.speakers[0].loc_rib.destinations()
    assert net.speakers[3].loc_rib.destinations() == {0, 1, 2, 3}


def test_flapping_prefix_gets_damped_for_real():
    """The RFC 2439 use case: a genuinely flapping router.

    Node 3 (a leaf on the line) flaps three times.  With damping, its
    neighbors suppress its prefix: after the final recovery the prefix
    stays invisible until the penalty decays, then returns.
    """
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        damping=DampingConfig(half_life=5.0),
    )
    net = BGPNetwork(line_topology(4), config, seed=1)
    net.start()
    net.run_until_quiet()
    for _ in range(3):
        net.fail_nodes([3])
        net.run_until_quiet(max_time=net.sim.now + 2.0)
        net.recover_nodes([3])
        net.run_until_quiet(max_time=net.sim.now + 2.0)
    assert net.counters["routes_suppressed"] > 0
    # While suppressed: node 2 has no route to 3's prefix even though the
    # session is up and node 3 is alive.
    assert net.speakers[3].alive
    suppressed_now = 3 not in net.speakers[2].loc_rib.destinations()
    # Let penalties decay; the reuse timer reinstates the route.
    net.run_until_quiet()
    assert net.counters["routes_reused"] > 0
    assert 3 in net.speakers[2].loc_rib.destinations()
    validate_routing(net)
    assert suppressed_now, "prefix should have been invisible while damped"


def test_flapping_without_damping_churns_every_cycle():
    config = BGPConfig(
        mrai_policy=ConstantMRAI(0.5),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    net = BGPNetwork(line_topology(4), config, seed=1)
    net.start()
    net.run_until_quiet()
    messages_per_cycle = []
    for _ in range(3):
        before = net.counters["updates_sent"]
        net.fail_nodes([3])
        net.run_until_quiet()
        net.recover_nodes([3])
        net.run_until_quiet()
        messages_per_cycle.append(net.counters["updates_sent"] - before)
    # Undamped: every cycle costs roughly the same churn; nothing learns.
    assert min(messages_per_cycle) > 0
    assert max(messages_per_cycle) <= min(messages_per_cycle) * 2
