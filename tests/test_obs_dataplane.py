"""Data-plane monitor: loops/blackholes/edge cases, neutrality, round-trips."""

import json

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.bgp.routes import Route
from repro.core.experiment import ExperimentSpec, run_experiment, run_trials
from repro.obs.dataplane import (
    BLACKHOLE,
    DOWN,
    LOOP,
    OK,
    DataPlaneJsonlSink,
    DataPlaneMonitor,
)
from repro.obs.session import ObsSession, observe
from repro.sim.timers import Jitter
from repro.store.result_store import trial_from_dict, trial_to_dict
from repro.topology.graph import Router, Topology
from repro.topology.skewed import skewed_topology
from tests.conftest import clique_topology, converged_network, line_topology


def _route(dest, path, peer):
    return Route(dest=dest, path=tuple(path), peer=peer)


def _local(dest):
    return Route(dest=dest, path=(dest,), peer=None)


# ----------------------------------------------------------------------
# Monitor unit tests (synthetic, driven directly)
# ----------------------------------------------------------------------
def test_walk_reaches_origin_with_hop_counts():
    mon = DataPlaneMonitor()
    mon._alive.update({1, 2, 3})
    mon.on_best_route(3, 9, _local(9), 0.0)
    mon.on_best_route(2, 9, _route(9, (9,), 3), 0.0)
    mon.on_best_route(1, 9, _route(9, (2, 9), 2), 0.0)
    mon.finalize(1.0)
    assert mon.status_of(1, 9) == OK
    assert mon.status_of(3, 9) == OK
    # 1 -> 2 -> 3(origin): 2 hops; 2 -> 3: 1 hop; origin: 0 hops.
    hops = {t[1]: t[4] for t in mon.transitions}
    assert hops == {1: 2, 2: 1, 3: 0}


def test_blackhole_and_loop_detection():
    mon = DataPlaneMonitor()
    mon._alive.update({1, 2, 3})
    # No routes at all: everything blackholes at t=0.
    mon.on_best_route(1, 9, None, 0.0)
    # A two-node loop forms at t=1: 1 -> 2 -> 1; 3 has no route.
    mon.on_best_route(1, 9, _route(9, (2, 9), 2), 1.0)
    mon.on_best_route(2, 9, _route(9, (1, 9), 1), 1.0)
    mon.finalize(2.0)
    assert mon.status_of(1, 9) == LOOP
    assert mon.status_of(2, 9) == LOOP
    assert mon.status_of(3, 9) == BLACKHOLE


def test_feeder_into_loop_also_loops():
    mon = DataPlaneMonitor()
    mon._alive.update({1, 2, 3})
    mon.on_best_route(2, 9, _route(9, (3, 9), 3), 0.0)
    mon.on_best_route(3, 9, _route(9, (2, 9), 2), 0.0)
    mon.on_best_route(1, 9, _route(9, (2, 3, 9), 2), 0.0)  # feeds the loop
    mon.finalize(1.0)
    assert mon.status_of(1, 9) == LOOP
    assert mon.status_of(2, 9) == LOOP
    assert mon.status_of(3, 9) == LOOP


def test_same_instant_changes_coalesce_to_one_evaluation():
    """A loop that forms and heals within one simulated instant never
    existed as far as the data plane is concerned: per-timestamp lazy
    evaluation records no zero-duration episode."""
    mon = DataPlaneMonitor()
    mon._alive.update({1, 2})
    mon.on_best_route(2, 9, _local(9), 0.0)
    mon.on_best_route(1, 9, _route(9, (2, 9), 2), 0.0)
    mon.finalize(0.5)
    before = list(mon.transitions)
    # At t=1.0 the pair briefly points 1 -> 2 -> 1 ... and heals in the
    # same instant (2 re-learns its local route).
    mon.on_best_route(2, 9, _route(9, (1, 9), 1), 1.0)
    mon.on_best_route(2, 9, _local(9), 1.0)
    mon.finalize(2.0)
    assert mon.transitions == before  # nothing changed observably
    assert mon.status_of(1, 9) == OK


def test_loop_that_forms_and_heals_across_instants():
    """Within one MRAI round (sub-second), a transient loop appears and
    disappears; both edges must be recorded with a positive duration."""
    mon = DataPlaneMonitor()
    mon._alive.update({1, 2})
    mon.on_best_route(2, 9, _local(9), 0.0)
    mon.on_best_route(1, 9, _route(9, (2, 9), 2), 0.0)
    mon.on_best_route(2, 9, _route(9, (1, 9), 1), 1.0)  # loop forms
    mon.on_best_route(2, 9, _local(9), 1.25)  # heals mid-MRAI
    mon.finalize(2.0)
    looped = [t for t in mon.transitions if t[3] == LOOP]
    assert {t[1] for t in looped} == {1, 2}
    assert all(t[0] == 1.0 for t in looped)
    assert mon.status_of(1, 9) == OK
    assert mon.status_of(2, 9) == OK
    healed = [
        t for t in mon.transitions if t[0] == 1.25 and t[3] == OK
    ]
    assert len(healed) == 2


def test_node_failure_closes_pairs_as_down_and_purges_state():
    mon = DataPlaneMonitor()
    mon._alive.update({1, 2})
    mon.on_best_route(2, 9, _local(9), 0.0)
    mon.on_best_route(1, 9, _route(9, (2, 9), 2), 0.0)
    mon.on_nodes_failed([2], 1.0)
    mon.finalize(2.0)
    assert mon.status_of(2, 9) == DOWN
    assert mon.status_of(1, 9) == BLACKHOLE  # next hop died
    # Recovery: 2 comes back cold and re-originates.
    mon.on_node_recovered(2, 3.0)
    mon.on_best_route(2, 9, _local(9), 3.0)
    mon.on_best_route(1, 9, _route(9, (2, 9), 2), 3.5)
    mon.finalize(4.0)
    assert mon.status_of(2, 9) == OK
    assert mon.status_of(1, 9) == OK


# ----------------------------------------------------------------------
# Edge cases against real networks
# ----------------------------------------------------------------------
def test_destination_withdrawn_everywhere_is_all_blackhole():
    """Killing a prefix's only origin blackholes it at every survivor,
    permanently (pairs_never_recovered counts them)."""
    topo = line_topology(3)
    net = converged_network(topo)
    obs = ObsSession(dataplane=True)
    obs.attach(net)
    t0 = net.fail_nodes([2])
    net.run_until_quiet(max_time=3600)
    summary = obs.finish_dataplane(net, t0=t0)
    # Dest 2's origin is gone: nodes 0 and 1 end the window blackholed.
    assert summary["pairs_never_recovered"] == 2
    assert summary["unreachable_seconds_total"] > 0.0
    # finish_dataplane detaches the monitor from the network.
    assert net.dataplane is None


def test_single_node_topology():
    topo = Topology(name="single")
    topo.add_router(Router(node_id=0, asn=0, x=0.0, y=0.0))
    config = BGPConfig(mrai_policy=ConstantMRAI(0.5))
    net = BGPNetwork(topo, config, seed=1)
    obs = ObsSession(dataplane=True)
    obs.attach(net)
    net.start()
    net.run_until_quiet(max_time=60)
    summary = obs.finish_dataplane(net, t0=0.0)
    # One origin pair, trivially ok forever: no unreachability at all.
    assert summary["pairs"] == 1
    assert summary["unreachable_seconds_total"] == 0.0
    assert summary["loop_episodes"] == 0
    assert summary["blackhole_episodes"] == 0
    assert summary["pairs_never_recovered"] == 0


def test_monitored_experiment_counts_transient_damage():
    topo = skewed_topology(30, seed=1)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    obs = ObsSession(dataplane=True)
    with observe(obs):
        result = run_experiment(topo, spec, seed=1)
    dp = result.dataplane
    assert dp is not None
    assert dp["pairs"] > 0
    assert dp["unreachable_seconds_total"] > 0.0
    # 3 dead origins x 27 survivors: their prefixes never come back.
    assert dp["pairs_never_recovered"] == 3 * 27
    assert dp["window_seconds"] == pytest.approx(result.convergence_delay)
    assert obs.last_dataplane == dp
    assert obs.trial_snapshots[-1]["dataplane"] == dp


# ----------------------------------------------------------------------
# Trajectory neutrality (golden pins)
# ----------------------------------------------------------------------
def test_monitor_is_trajectory_neutral_golden():
    """The golden 5-clique counters hold with the monitor attached."""
    config = BGPConfig(
        mrai_policy=ConstantMRAI(1.0),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    net = BGPNetwork(clique_topology(5), config, seed=1)
    DataPlaneMonitor().attach(net)
    net.start()
    net.run_until_quiet()
    assert net.counters["updates_sent"] == 80
    assert net.counters["route_changes"] == 25


def test_monitor_does_not_change_experiment_results():
    topo = skewed_topology(30, seed=7)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    bare = run_experiment(topo, spec, seed=3)
    obs = ObsSession(dataplane=True)
    with observe(obs):
        monitored = run_experiment(topo, spec, seed=3)
    assert monitored == bare  # dataplane field excluded from equality
    assert monitored.dataplane is not None and bare.dataplane is None


# ----------------------------------------------------------------------
# Worker round-trip under jobs > 1
# ----------------------------------------------------------------------
def test_dataplane_worker_round_trip_parallel():
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.2)
    factory = lambda s: skewed_topology(12, seed=s)  # noqa: E731
    seeds = [1, 2, 3]

    serial_obs = ObsSession(dataplane=True)
    with observe(serial_obs):
        serial = run_trials(factory, spec, seeds, jobs=1)
    serial_records = []
    sink_obs = ObsSession(dataplane=True, dataplane_sink=serial_records.append)
    with observe(sink_obs):
        run_trials(factory, spec, seeds, jobs=1)

    parallel_records = []
    par_obs = ObsSession(
        dataplane=True, dataplane_sink=parallel_records.append
    )
    with observe(par_obs):
        parallel = run_trials(factory, spec, seeds, jobs=2)

    assert parallel.trials == serial.trials
    assert [t.dataplane for t in parallel.trials] == [
        t.dataplane for t in serial.trials
    ]
    assert par_obs.dataplane_summaries == serial_obs.dataplane_summaries
    # Sink replay (with parent-side trial renumbering) is bit-identical.
    assert parallel_records == serial_records
    manifest = par_obs.finalize(command="test")
    agg = manifest.extra["dataplane"]
    assert agg["trials"] == len(seeds)
    assert agg["unreachable_seconds_total"] == pytest.approx(
        sum(s["unreachable_seconds_total"] for s in serial_obs.dataplane_summaries)
    )


def test_worker_args_carry_dataplane_flags():
    obs = ObsSession(dataplane=True, dataplane_sink=lambda r: None)
    config = obs.worker_args()
    assert config["dataplane"] is True
    assert config["capture_dataplane"] is True
    worker = ObsSession.for_worker(config)
    assert worker.dataplane_enabled
    assert worker._captured_dataplane == []
    off = ObsSession().worker_args()
    assert off["dataplane"] is False and off["capture_dataplane"] is False


# ----------------------------------------------------------------------
# Store round-trip
# ----------------------------------------------------------------------
def test_trial_dict_round_trip_preserves_dataplane():
    topo = skewed_topology(20, seed=1)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    obs = ObsSession(dataplane=True)
    with observe(obs):
        trial = run_experiment(topo, spec, seed=1)
    data = json.loads(json.dumps(trial_to_dict(trial)))  # via real JSON
    rebuilt = trial_from_dict(data)
    assert rebuilt == trial
    assert rebuilt.dataplane == trial.dataplane
    # Legacy records (no dataplane key) load with the default.
    del data["dataplane"]
    legacy = trial_from_dict(data)
    assert legacy == trial
    assert legacy.dataplane is None


# ----------------------------------------------------------------------
# JSONL sink
# ----------------------------------------------------------------------
def test_jsonl_sink_writes_trial_delimited_records(tmp_path):
    path = tmp_path / "dp.jsonl"
    topo = skewed_topology(20, seed=1)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    with DataPlaneJsonlSink(path) as sink:
        obs = ObsSession(dataplane_sink=sink)
        assert obs.dataplane_enabled  # sink implies enable
        with observe(obs):
            run_experiment(topo, spec, seed=1)
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines[0]["kind"] == "dataplane_trial"
    assert lines[0]["seed"] == 1
    assert {l["kind"] for l in lines[1:]} == {"dataplane"}
    assert sink.records_written == len(lines)
