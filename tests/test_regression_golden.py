"""Golden regression pins.

Fixed-seed experiments must keep producing the *same semantic outcomes*
(route tables and message categories) run after run.  These tests pin the
deterministic structure — not floating-point timings, which are allowed
to drift if e.g. the RNG consumption order legitimately changes, but only
together with a conscious update here.
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.bgp.mrai import ConstantMRAI
from repro.bgp.network import BGPNetwork
from repro.core.experiment import ExperimentSpec, run_experiment
from repro.sim.timers import Jitter
from repro.topology.skewed import skewed_topology
from tests.conftest import clique_topology


def test_golden_deterministic_protocol_outcome():
    """Zero-service, unjittered 5-clique: fully deterministic counters."""
    config = BGPConfig(
        mrai_policy=ConstantMRAI(1.0),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
    )
    net = BGPNetwork(clique_topology(5), config, seed=1)
    net.start()
    net.run_until_quiet()
    # Warm-up of a 5-clique: every node advertises its own prefix to its
    # 4 peers (20 messages), and every learner re-advertises each learned
    # prefix to the 3 peers that are not on the path (5 dests x 4
    # learners x 3 = 60).  Those backup paths lose to the direct route,
    # so no further churn: exactly 80 updates.
    assert net.counters["updates_sent"] == 80
    assert net.counters["route_changes"] == 25
    assert net.total_loc_rib_routes() == 25


def test_golden_experiment_is_stable_within_session():
    """The same (topology, spec, seed) triple returns identical results."""
    topo = skewed_topology(30, seed=7)
    spec = ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)
    first = run_experiment(topo, spec, seed=3)
    second = run_experiment(topo, spec, seed=3)
    assert first == second


def test_golden_topology_structure_pins():
    """The default 120-node 70-30 topology at seed 3 (used throughout the
    calibration work) keeps its exact structure."""
    topo = skewed_topology(120, seed=3)
    assert topo.num_routers == 120
    assert topo.num_links == 235
    assert topo.degree_histogram() == {1: 21, 2: 28, 3: 35, 8: 36}


def test_golden_labovitz_exactness():
    """The clique bound must stay *exact*, not merely approximate."""
    config = BGPConfig(
        mrai_policy=ConstantMRAI(1.0),
        processing_delay_range=(0.0, 0.0),
        mrai_jitter=Jitter.none(),
        withdrawal_rate_limiting=True,
    )
    net = BGPNetwork(clique_topology(6), config, seed=1)
    net.start()
    net.run_until_quiet()
    t0 = net.fail_nodes([0])
    net.run_until_quiet()
    # (n-3) x MRAI = 3.0 plus link/notification skew below 100 ms.
    assert net.last_activity - t0 == pytest.approx(3.0, abs=0.1)
