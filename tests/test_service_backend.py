"""Tests for the store backend layer under the campaign service.

Covers the durable queue's lease protocol (exclusivity, expiry
re-dispatch, heartbeat, backoff gates, release), ticket persistence,
the :class:`StoreBackend` protocol + URL registry, and the multi-writer
hardening of :class:`ResultStore` (thread sharing, busy-timeout
wait-out of a competing writer's lock).
"""

import sqlite3
import threading
import time

import pytest

from repro.core.experiment import TrialResult
from repro.service.backend import (
    StoreBackend,
    open_backend,
    register_store_backend,
)
from repro.store import QUEUE_STATES, ResultStore


@pytest.fixture()
def store(tmp_path):
    with ResultStore(tmp_path / "store.db") as s:
        yield s


def make_trial(seed=1, delay=2.5):
    return TrialResult(
        convergence_delay=delay,
        messages_sent=10,
        withdrawals_sent=1,
        updates_processed=9,
        stale_dropped=0,
        route_changes=4,
        failure_size=2,
        failure_time=50.0,
        warmup_time=40.0,
        warmup_messages=30,
        events_executed=100,
        seed=seed,
        truncated=False,
        warmup_wall=0.01,
        convergence_wall=0.02,
    )


# ----------------------------------------------------------------------
# Queue: enqueue / dedupe / revive
# ----------------------------------------------------------------------
def test_enqueue_dedupes_open_tasks(store):
    tid, created = store.enqueue("k1", {"seed": 1})
    assert created
    tid2, created2 = store.enqueue("k1", {"seed": 1})
    assert tid2 == tid and not created2
    assert store.queue_counts()["pending"] == 1


def test_enqueue_revives_terminally_failed_task(store):
    tid, _ = store.enqueue("k1", {"seed": 1})
    [task] = store.lease_tasks("w", 1, lease_seconds=30)
    store.fail_task(task.id, "boom")  # terminal
    assert store.queue_counts()["failed"] == 1
    tid2, created = store.enqueue("k1", {"seed": 1}, ticket="t2")
    assert created and tid2 == tid
    [revived] = store.queue_entries(state="pending")
    assert revived.attempts == 0
    assert revived.error is None
    assert revived.ticket == "t2"


def test_running_task_blocks_duplicate_enqueue(store):
    store.enqueue("k1", {"seed": 1})
    store.lease_tasks("w", 1, lease_seconds=30)
    _tid, created = store.enqueue("k1", {"seed": 1})
    assert not created
    assert store.queue_counts()["running"] == 1


# ----------------------------------------------------------------------
# Queue: lease protocol
# ----------------------------------------------------------------------
def test_lease_is_exclusive_across_handles(store):
    for i in range(4):
        store.enqueue(f"k{i}", {"seed": i})
    other = ResultStore(store.path)
    try:
        mine = store.lease_tasks("a", 3, lease_seconds=30)
        theirs = other.lease_tasks("b", 3, lease_seconds=30)
        assert len(mine) == 3 and len(theirs) == 1
        assert {t.id for t in mine}.isdisjoint({t.id for t in theirs})
    finally:
        other.close()


def test_expired_lease_is_redispatched(store):
    store.enqueue("k1", {"seed": 1})
    t0 = time.time()
    [task] = store.lease_tasks("dead", 1, lease_seconds=5, now=t0)
    # Within the lease nothing is runnable...
    assert store.lease_tasks("live", 1, lease_seconds=5, now=t0 + 4) == []
    # ...after expiry the task hands over, attempts preserved.
    [stolen] = store.lease_tasks("live", 1, lease_seconds=5, now=t0 + 6)
    assert stolen.id == task.id
    assert stolen.lease_owner == "live"


def test_heartbeat_extends_only_owned_running_leases(store):
    store.enqueue("k1", {"seed": 1})
    store.enqueue("k2", {"seed": 2})
    t0 = time.time()
    tasks = store.lease_tasks("a", 2, lease_seconds=5, now=t0)
    ids = [t.id for t in tasks]
    # Owner extends both; a stranger extends none.
    assert store.heartbeat_tasks("a", ids, 100, now=t0 + 1) == 2
    assert store.heartbeat_tasks("b", ids, 100, now=t0 + 1) == 0
    # The extension really moved the expiry: not claimable at t0+50.
    assert store.lease_tasks("b", 2, lease_seconds=5, now=t0 + 50) == []


def test_heartbeat_does_not_resurrect_stolen_task(store):
    store.enqueue("k1", {"seed": 1})
    t0 = time.time()
    [task] = store.lease_tasks("slow", 1, lease_seconds=1, now=t0)
    [stolen] = store.lease_tasks("fast", 1, lease_seconds=30, now=t0 + 2)
    assert stolen.id == task.id
    assert store.heartbeat_tasks("slow", [task.id], 30, now=t0 + 3) == 0


def test_fail_with_retry_gates_until_backoff_passes(store):
    store.enqueue("k1", {"seed": 1})
    t0 = time.time()
    [task] = store.lease_tasks("w", 1, lease_seconds=30, now=t0)
    state = store.fail_task(task.id, "flaky", retry_at=t0 + 10)
    assert state == "pending"
    assert store.lease_tasks("w", 1, lease_seconds=30, now=t0 + 5) == []
    [retried] = store.lease_tasks("w", 1, lease_seconds=30, now=t0 + 11)
    assert retried.attempts == 1
    assert retried.error == "flaky"


def test_release_returns_running_tasks_to_pending(store):
    for i in range(3):
        store.enqueue(f"k{i}", {"seed": i})
    tasks = store.lease_tasks("w", 3, lease_seconds=300)
    released = store.release_tasks("w", [t.id for t in tasks[:2]])
    assert released == 2
    counts = store.queue_counts()
    assert counts["pending"] == 2 and counts["running"] == 1
    # Released tasks are claimable immediately, not after lease expiry.
    assert len(store.lease_tasks("x", 3, lease_seconds=30)) == 2


def test_complete_task_and_counts(store):
    store.enqueue("k1", {"seed": 1})
    [task] = store.lease_tasks("w", 1, lease_seconds=30)
    store.complete_task(task.id)
    counts = store.queue_counts()
    assert counts == {"pending": 0, "running": 0, "done": 1, "failed": 0}
    assert set(counts) == set(QUEUE_STATES)


def test_queue_states_for_reports_latest_row(store):
    store.enqueue("k1", {"seed": 1})
    states = store.queue_states_for(["k1", "never-queued"])
    assert states["k1"]["state"] == "pending"
    assert "never-queued" not in states


# ----------------------------------------------------------------------
# Tickets
# ----------------------------------------------------------------------
def test_ticket_roundtrip_with_campaign_doc(store):
    doc = {"name": "c", "topology": {"kind": "skewed", "nodes": 24}}
    store.record_ticket("t1", "c", ["k1", "k2"], campaign=doc)
    info = store.ticket_info("t1")
    assert info["keys"] == ["k1", "k2"]
    assert info["campaign"] == doc
    assert store.ticket_info("nope") is None
    assert store.ticket_count() == 1


# ----------------------------------------------------------------------
# StoreBackend protocol + registry
# ----------------------------------------------------------------------
def test_result_store_satisfies_backend_protocol(store):
    assert isinstance(store, StoreBackend)


def test_open_backend_resolves_bare_path_and_scheme(tmp_path):
    for url in (str(tmp_path / "a.db"), f"sqlite://{tmp_path / 'b.db'}"):
        backend = open_backend(url)
        try:
            assert isinstance(backend, ResultStore)
        finally:
            backend.close()


def test_open_backend_rejects_unknown_scheme(tmp_path):
    with pytest.raises(ValueError, match="unknown store backend"):
        open_backend("postgres://nope")


def test_register_store_backend_plugs_in(tmp_path):
    opened = []

    def factory(rest):
        store = ResultStore(tmp_path / rest)
        opened.append(store)
        return store

    register_store_backend("testmem", factory)
    try:
        backend = open_backend("testmem://x.db")
        assert backend is opened[0]
        backend.close()
    finally:
        from repro.service import backend as backend_mod

        backend_mod._BACKENDS.pop("testmem", None)


# ----------------------------------------------------------------------
# Multi-writer hardening
# ----------------------------------------------------------------------
def test_one_handle_shared_across_threads(store):
    errors = []

    def worker(n):
        try:
            for i in range(25):
                key = f"t{n}-{i}"
                store.put(key, make_trial(seed=i))
                assert store.get(key) is not None
                store.enqueue(f"q{n}-{i}", {"seed": i})
        except Exception as exc:  # noqa: BLE001 - reported to assert
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(n,)) for n in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(store) == 100
    assert store.queue_counts()["pending"] == 100


def test_write_waits_out_competing_writers_lock(store):
    """A write that meets another connection's lock succeeds (no
    'database is locked' escape) once the lock clears — the
    busy_timeout + retry layers working together."""
    blocker = sqlite3.connect(
        str(store.path), check_same_thread=False
    )
    blocker.execute("BEGIN IMMEDIATE")
    release = threading.Timer(0.3, blocker.commit)
    release.start()
    try:
        store.put("contended", make_trial())  # must not raise
    finally:
        release.cancel()
        blocker.close()
    assert store.has("contended")


def test_stats_reports_sizes_and_queue(store):
    store.put("k1", make_trial())
    store.enqueue("cold", {"seed": 9})
    store.record_ticket("t1", "c", ["k1"])
    stats = store.stats()
    assert stats["trials"] == 1
    assert stats["tickets"] == 1
    assert stats["queue"]["pending"] == 1
    assert stats["banked_wall_seconds"] == pytest.approx(0.03)
    assert stats["db_bytes"] > 0
    assert stats["schema_version"] >= 2
