"""Tests for parallel trial execution (repro.core.parallel).

The headline property under test: ``jobs=N`` is bit-identical to
``jobs=1`` on the same seeds, including everything an observability
session records.
"""

import multiprocessing

import pytest

from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import ExperimentSpec, run_trials
from repro.core.parallel import (
    ProcessExecutor,
    SerialExecutor,
    TrialExecutionError,
    TrialTask,
    WorkerPool,
    derive_trial_seeds,
    get_default_jobs,
    make_executor,
    parallel_jobs,
)
from repro.core.sweep import failure_size_sweep
from repro.obs.session import ObsSession
from repro.topology.skewed import skewed_topology

SEEDS = (1, 2, 3)


def factory(seed):
    return skewed_topology(24, seed=seed)


def spec_05():
    return ExperimentSpec(mrai=ConstantMRAI(0.5), failure_fraction=0.1)


def result_signature(result):
    """Every measured number, per trial (wall-clock fields excluded)."""
    return [
        (
            t.seed,
            t.convergence_delay,
            t.messages_sent,
            t.route_changes,
            t.events_executed,
        )
        for t in result.trials
    ]


# ----------------------------------------------------------------------
# Determinism: parallel == serial, bit for bit
# ----------------------------------------------------------------------
def test_parallel_matches_serial_bitwise():
    spec = spec_05()
    serial = run_trials(factory, spec, SEEDS, jobs=1)
    parallel = run_trials(factory, spec, SEEDS, jobs=4)
    assert serial.mean_delay == parallel.mean_delay
    assert serial.mean_messages == parallel.mean_messages
    assert result_signature(serial) == result_signature(parallel)


def test_serial_executor_matches_inline():
    spec = spec_05()
    inline = run_trials(factory, spec, SEEDS)
    explicit = run_trials(factory, spec, SEEDS, executor=SerialExecutor())
    assert result_signature(inline) == result_signature(explicit)


def test_sweep_parallel_identical():
    spec = spec_05()
    serial = failure_size_sweep(factory, spec, (0.1, 0.2), (1, 2), jobs=1)
    parallel = failure_size_sweep(factory, spec, (0.1, 0.2), (1, 2), jobs=2)
    assert serial.delays == parallel.delays
    assert serial.message_counts == parallel.message_counts


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------
def test_derive_trial_seeds_unique_and_deterministic():
    seeds = derive_trial_seeds(42, 500)
    assert len(seeds) == 500
    assert len(set(seeds)) == 500
    assert all(s >= 0 for s in seeds)
    assert seeds == derive_trial_seeds(42, 500)
    # A prefix is stable: asking for fewer seeds never reshuffles.
    assert derive_trial_seeds(42, 10) == seeds[:10]


def test_derive_trial_seeds_depend_on_master():
    assert derive_trial_seeds(1, 20) != derive_trial_seeds(2, 20)
    assert derive_trial_seeds(1, 5, name="a") != derive_trial_seeds(
        1, 5, name="b"
    )


# ----------------------------------------------------------------------
# Failure handling
# ----------------------------------------------------------------------
def test_worker_failure_surfaces():
    # An impossibly small warm-up budget makes every trial raise inside
    # the worker; the executor must surface which trial and why.
    spec = spec_05().with_(max_warmup_time=1e-6)
    with pytest.raises(TrialExecutionError) as exc_info:
        run_trials(factory, spec, (7, 8), jobs=2)
    assert "seed" in str(exc_info.value)
    assert exc_info.value.seed in (7, 8)


def test_serial_failure_surfaces_too():
    spec = spec_05().with_(max_warmup_time=1e-6)
    with pytest.raises(TrialExecutionError):
        run_trials(factory, spec, (7,), executor=SerialExecutor())


# ----------------------------------------------------------------------
# Progress and jobs plumbing
# ----------------------------------------------------------------------
def test_progress_ticks_monotonic_and_complete():
    ticks = []
    run_trials(factory, spec_05(), SEEDS, progress=ticks.append, jobs=2)
    dones = [t.done for t in ticks]
    assert dones == sorted(dones)
    assert dones[-1] == len(SEEDS)
    assert all(t.total == len(SEEDS) for t in ticks)


def test_parallel_jobs_context_scopes_default():
    assert get_default_jobs() == 1
    with parallel_jobs(3):
        assert get_default_jobs() == 3
    assert get_default_jobs() == 1


def test_make_executor_backends():
    assert isinstance(make_executor(1), SerialExecutor)
    assert make_executor(4).jobs == 4
    with pytest.raises(ValueError):
        make_executor(0)


# ----------------------------------------------------------------------
# Observability round-trip
# ----------------------------------------------------------------------
def observed_run(jobs):
    records = []
    obs = ObsSession(trace=True, profile=True, trace_sink=records.append)
    result = run_trials(factory, spec_05(), SEEDS, obs=obs, jobs=jobs)
    return obs, result, records


def test_obs_aggregation_roundtrip():
    serial_obs, serial_result, serial_trace = observed_run(1)
    parallel_obs, parallel_result, parallel_trace = observed_run(2)

    assert result_signature(serial_result) == result_signature(
        parallel_result
    )

    # Trial snapshots: one per trial, in seed order.
    assert len(parallel_obs.trial_snapshots) == len(SEEDS)
    assert [s["seed"] for s in parallel_obs.trial_snapshots] == list(SEEDS)
    assert [s["trial"] for s in parallel_obs.trial_snapshots] == [0, 1, 2]

    # Phase timings: same labels in the same order (wall times differ).
    assert [p.name for p in parallel_obs.phases] == [
        p.name for p in serial_obs.phases
    ]

    # Path exploration is simulation state, so it matches exactly.
    assert (
        parallel_obs.exploration_summaries
        == serial_obs.exploration_summaries
    )
    assert parallel_obs.last_exploration == serial_obs.last_exploration

    # Metrics: counters and gauges are exact; histogram means can drift
    # by float-summation order (serial folds observations one by one,
    # parallel merges per-trial sums), so compare approximately.
    serial_snap = serial_obs.registry.snapshot()
    parallel_snap = parallel_obs.registry.snapshot()
    assert sorted(serial_snap) == sorted(parallel_snap)
    for name, value in serial_snap.items():
        assert parallel_snap[name] == pytest.approx(value, rel=1e-9), name

    # Profiler: identical event counts per run (wall time differs).
    assert (
        parallel_obs.profiler.total_events
        == serial_obs.profiler.total_events
    )

    # Trace records survive the worker round-trip.
    assert len(parallel_trace) == len(serial_trace)
    assert [r.category for r in parallel_trace] == [
        r.category for r in serial_trace
    ]


def test_unobserved_parallel_run_has_no_payload_cost():
    # No session: workers must not build one either.
    result = run_trials(factory, spec_05(), (1, 2), jobs=2)
    assert len(result.trials) == 2


# ----------------------------------------------------------------------
# The persistent warm worker pool
# ----------------------------------------------------------------------
def test_warm_pool_reuse_bitwise_across_runs():
    # Two consecutive run_trials calls against the same pool: the
    # second must reuse every worker (no respawn, no spin-up) and both
    # must match the serial baseline bit for bit.
    spec = spec_05()
    serial = run_trials(factory, spec, SEEDS, jobs=1)
    pool = WorkerPool()
    try:
        executor = ProcessExecutor(2, pool=pool)
        first = run_trials(factory, spec, SEEDS, executor=executor)
        stats1 = executor.last_stats
        assert stats1.workers_spawned == 2
        assert stats1.workers_reused == 0
        second = run_trials(factory, spec, SEEDS, executor=executor)
        stats2 = executor.last_stats
        assert stats2.workers_spawned == 0
        assert stats2.workers_reused == 2
        assert stats2.spinup_seconds == 0.0
        # The warm pool already holds every topology: all cache hits,
        # nothing re-shipped.
        assert stats2.cache_hits == len(SEEDS)
        assert stats2.cache_misses == 0
        assert stats2.shipped_topologies == 0
        assert result_signature(first) == result_signature(serial)
        assert result_signature(second) == result_signature(serial)
    finally:
        pool.close()


def test_fork_and_spawn_start_methods_identical():
    spec = spec_05()
    serial = run_trials(factory, spec, SEEDS, jobs=1)
    methods = [
        m
        for m in ("fork", "spawn")
        if m in multiprocessing.get_all_start_methods()
    ]
    assert methods, "no usable start method?"
    for method in methods:
        pool = WorkerPool(start_method=method)
        try:
            executor = ProcessExecutor(2, pool=pool)
            result = run_trials(factory, spec, SEEDS, executor=executor)
            assert result_signature(result) == result_signature(
                serial
            ), method
        finally:
            pool.close()


def test_topology_cache_eviction_on_digest_change():
    # A capacity-1 cache with three distinct topologies forces
    # evictions (spawn: nothing is fork-pinned, every topology goes
    # through the LRU) — results must stay correct throughout.
    spec = spec_05()
    serial = run_trials(factory, spec, SEEDS, jobs=1)
    pool = WorkerPool(start_method="spawn", cache_capacity=1)
    try:
        executor = ProcessExecutor(2, pool=pool)
        result = run_trials(factory, spec, SEEDS, executor=executor)
        stats = executor.last_stats
        assert result_signature(result) == result_signature(serial)
        assert stats.unique_topologies == len(SEEDS)
        assert stats.cache_misses == len(SEEDS)  # each shipped once
        assert stats.evictions >= 1  # capacity 1 cannot hold two
        # Re-running re-ships whatever was evicted; the parent's mirror
        # of each worker cache must stay exact (a divergence would
        # surface as a "worker lost topology" trial error).
        again = run_trials(factory, spec, SEEDS, executor=executor)
        assert result_signature(again) == result_signature(serial)
    finally:
        pool.close()


def test_midchunk_failure_surfaces_trial_execution_error():
    # All three trials ride ONE chunk (chunk_size=3, same topology);
    # the poisoned middle trial must surface as TrialExecutionError
    # with its index and seed, even though the chunk started fine.
    topology = factory(1)
    good = spec_05()
    poisoned = good.with_(max_warmup_time=1e-6)
    tasks = [
        TrialTask(index=0, topology=topology, spec=good, seed=11),
        TrialTask(index=1, topology=topology, spec=poisoned, seed=12),
        TrialTask(index=2, topology=topology, spec=good, seed=13),
    ]
    pool = WorkerPool()
    try:
        executor = ProcessExecutor(2, pool=pool, chunk_size=3)
        with pytest.raises(TrialExecutionError) as exc_info:
            executor.run(tasks)
        assert exc_info.value.index == 1
        assert exc_info.value.seed == 12
        # The pool survives the failure: the next run works and reuses
        # the same workers.
        outcomes = executor.run(
            [TrialTask(index=0, topology=topology, spec=good, seed=11)]
        )
        assert len(outcomes) == 1
        assert executor.last_stats.workers_spawned == 0
    finally:
        pool.close()


def test_run_guarded_reports_errors_without_aborting():
    # The campaign backend: failures come back as error outcomes, the
    # healthy trials still complete.
    topology = factory(1)
    good = spec_05()
    poisoned = good.with_(max_warmup_time=1e-6)
    tasks = [
        TrialTask(index=0, topology=topology, spec=good, seed=21),
        TrialTask(index=1, topology=topology, spec=poisoned, seed=22),
        TrialTask(index=2, topology=topology, spec=good, seed=23),
    ]
    pool = WorkerPool()
    try:
        outcomes = sorted(pool.run_guarded(tasks, jobs=2))
        assert [index for index, *_ in outcomes] == [0, 1, 2]
        by_index = {index: rest for index, *rest in outcomes}
        assert by_index[0][0] is not None and by_index[0][2] is None
        assert by_index[2][0] is not None and by_index[2][2] is None
        assert by_index[1][0] is None
        assert by_index[1][2]  # the error string names the exception
    finally:
        pool.close()


def test_obs_spans_dataplane_roundtrip_jobs2():
    # Spans, metrics and data-plane summaries must survive the worker
    # round-trip with the renumbering the serial path would produce.
    def observed(jobs):
        obs = ObsSession(spans=True, dataplane=True)
        result = run_trials(factory, spec_05(), SEEDS, obs=obs, jobs=jobs)
        return obs, result

    serial_obs, serial_result = observed(1)
    parallel_obs, parallel_result = observed(2)
    assert result_signature(serial_result) == result_signature(
        parallel_result
    )
    # Data-plane summaries are simulation state: exact match, in order.
    assert parallel_obs.dataplane_summaries == serial_obs.dataplane_summaries
    assert [t.dataplane for t in parallel_result.trials] == [
        t.dataplane for t in serial_result.trials
    ]
    # Worker spans land under the workers/ prefix; every trial must
    # contribute its execute span to the grafted tree.
    paths = [
        record["path"] for record in parallel_obs.span_recorder.records
    ]
    worker_execs = [
        p
        for p in paths
        if p.startswith("workers/") and p.endswith("trial.execute")
    ]
    assert len(worker_execs) == len(SEEDS)
