"""DataPlaneTimeline analytics, JSONL loading, report CLI."""

import json

import pytest

from repro.analysis.dataplane import (
    DataPlaneTimeline,
    analyze_dataplane_file,
    load_dataplane_trials,
    render_dataplane_report,
)
from repro.obs.dataplane import DataPlaneJsonlSink


def _timeline(transitions, t0=0.0, end=None):
    return DataPlaneTimeline.from_transitions(transitions, t0=t0, end=end)


# ----------------------------------------------------------------------
# Timeline construction and windowing
# ----------------------------------------------------------------------
def test_segments_clip_to_window():
    tl = _timeline(
        [
            (0.0, 1, 9, "ok", 2),
            (5.0, 1, 9, "blackhole", None),
            (8.0, 1, 9, "ok", 3),
        ],
        t0=4.0,
        end=10.0,
    )
    segs = tl.pair_segments(1, 9)
    assert segs == [
        ("ok", 4.0, 5.0, 2),
        ("blackhole", 5.0, 8.0, None),
        ("ok", 8.0, 10.0, 3),
    ]
    head = tl.headline()
    assert head["unreachable_seconds_total"] == pytest.approx(3.0)
    assert head["blackhole_episodes"] == 1
    assert head["loop_episodes"] == 0
    assert head["window_seconds"] == pytest.approx(6.0)
    # Worst transient ok path was 3 hops; it settles at 3: stretch 1.0...
    assert head["stretch_max"] == pytest.approx(1.0)


def test_pre_window_transitions_establish_initial_state():
    tl = _timeline(
        [(1.0, 1, 9, "loop", None), (6.0, 1, 9, "ok", 1)],
        t0=5.0,
        end=7.0,
    )
    segs = tl.pair_segments(1, 9)
    assert segs == [("loop", 5.0, 6.0, None), ("ok", 6.0, 7.0, 1)]
    assert tl.headline()["loop_episodes"] == 1


def test_adjacent_same_status_segments_merge_into_one_episode():
    # hops changes within ok, and two distinct blackhole stints.
    tl = _timeline(
        [
            (0.0, 1, 9, "ok", 2),
            (1.0, 1, 9, "ok", 4),
            (2.0, 1, 9, "blackhole", None),
            (3.0, 1, 9, "ok", 2),
            (4.0, 1, 9, "blackhole", None),
            (5.0, 1, 9, "ok", 2),
        ],
        t0=0.0,
        end=6.0,
    )
    head = tl.headline()
    assert head["blackhole_episodes"] == 2
    assert head["blackhole_seconds"] == pytest.approx(2.0)
    assert head["stretch_max"] == pytest.approx(2.0)  # 4 hops vs final 2


def test_down_time_excluded_from_unreachability():
    tl = _timeline(
        [
            (0.0, 1, 9, "ok", 1),
            (2.0, 1, 9, "down", None),
        ],
        t0=0.0,
        end=10.0,
    )
    head = tl.headline()
    assert head["unreachable_seconds_total"] == 0.0
    assert head["down_seconds"] == pytest.approx(8.0)
    assert head["pairs_never_recovered"] == 0


def test_never_recovered_and_destination_percentiles():
    transitions = [(0.0, n, 9, "blackhole", None) for n in (1, 2, 3)]
    transitions += [(0.0, n, 8, "ok", 1) for n in (1, 2, 3)]
    transitions += [(2.0, 1, 8, "blackhole", None), (3.0, 1, 8, "ok", 1)]
    tl = _timeline(transitions, t0=0.0, end=4.0)
    head = tl.headline()
    assert head["pairs_never_recovered"] == 3
    assert head["destinations"] == 2
    per_dest = tl.destination_unreachability()
    assert per_dest[9] == pytest.approx(12.0)  # 3 nodes x 4 s
    assert per_dest[8] == pytest.approx(1.0)
    assert head["unreachable_dest_max"] == pytest.approx(12.0)
    worst = tl.worst_destinations(1)
    assert worst == [{"dest": 9, "unreachable_seconds": 12.0}]


def test_dict_transitions_accepted():
    tl = _timeline(
        [
            {"kind": "dataplane", "time": 0.0, "node": 1, "dest": 9,
             "status": "loop", "hops": None},
            {"kind": "dataplane", "time": 1.0, "node": 1, "dest": 9,
             "status": "ok", "hops": 2},
        ],
        t0=0.0,
    )
    assert tl.headline()["loop_seconds"] == pytest.approx(1.0)


# ----------------------------------------------------------------------
# JSONL loading + file-level analysis
# ----------------------------------------------------------------------
def _write_sink(path, trials):
    with DataPlaneJsonlSink(path) as sink:
        for meta, transitions in trials:
            sink(meta)
            for t, node, dest, status, hops in transitions:
                sink({"kind": "dataplane", "time": t, "node": node,
                      "dest": dest, "status": status, "hops": hops})
    return path


def test_load_dataplane_trials_split_and_anonymous(tmp_path):
    path = _write_sink(
        tmp_path / "dp.jsonl",
        [
            ({"kind": "dataplane_trial", "trial": 0, "seed": 1,
              "t0": 1.0, "end": 3.0},
             [(1.0, 1, 9, "blackhole", None), (2.0, 1, 9, "ok", 1)]),
            ({"kind": "dataplane_trial", "trial": 1, "seed": 2,
              "t0": 0.0, "end": 2.0},
             [(0.0, 1, 9, "ok", 1)]),
        ],
    )
    trials = load_dataplane_trials(path)
    assert len(trials) == 2
    assert trials[0]["seed"] == 1 and len(trials[0]["transitions"]) == 2
    # No meta records at all: one anonymous trial.
    bare = tmp_path / "bare.jsonl"
    bare.write_text(
        json.dumps({"kind": "dataplane", "time": 0.0, "node": 1,
                    "dest": 9, "status": "ok", "hops": 1}) + "\n",
        encoding="utf-8",
    )
    assert len(load_dataplane_trials(bare)) == 1


def test_load_rejects_malformed_lines(tmp_path):
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n", encoding="utf-8")
    with pytest.raises(ValueError, match="invalid JSON"):
        load_dataplane_trials(bad)
    arr = tmp_path / "arr.jsonl"
    arr.write_text("[1, 2]\n", encoding="utf-8")
    with pytest.raises(ValueError, match="expected an object"):
        load_dataplane_trials(arr)


def test_analyze_file_aggregate_and_render(tmp_path):
    path = _write_sink(
        tmp_path / "dp.jsonl",
        [
            ({"kind": "dataplane_trial", "trial": 0, "seed": 1,
              "t0": 0.0, "end": 4.0},
             [(0.0, 1, 9, "blackhole", None), (1.0, 1, 9, "ok", 1),
              (0.0, 2, 9, "ok", 1)]),
            ({"kind": "dataplane_trial", "trial": 1, "seed": 2,
              "t0": 0.0, "end": 4.0},
             [(0.0, 1, 9, "loop", None), (3.0, 1, 9, "ok", 2)]),
        ],
    )
    report = analyze_dataplane_file(path)
    assert report["trials"] == 2
    agg = report["aggregate"]
    assert agg["unreachable_seconds_total"] == pytest.approx(4.0)
    assert agg["unreachable_seconds_max"] == pytest.approx(3.0)
    assert agg["blackhole_episodes"] == 1
    assert agg["loop_episodes"] == 1
    text = render_dataplane_report(report)
    assert "data-plane impact report: 2 trial(s)" in text
    assert "trial 0 (seed 1)" in text
    assert "dest 9" in text
    # --t0 override narrows the window for every trial.
    narrowed = analyze_dataplane_file(path, t0=3.5)
    assert narrowed["aggregate"]["unreachable_seconds_total"] == 0.0


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_dataplane_report(tmp_path, capsys):
    from repro.cli import main

    path = _write_sink(
        tmp_path / "dp.jsonl",
        [({"kind": "dataplane_trial", "trial": 0, "seed": 1,
           "t0": 0.0, "end": 2.0},
          [(0.0, 1, 9, "blackhole", None), (1.0, 1, 9, "ok", 1)])],
    )
    out_path = tmp_path / "report.json"
    assert main(
        ["dataplane", "report", str(path), "--out", str(out_path)]
    ) == 0
    text = capsys.readouterr().out
    assert "data-plane impact report" in text
    saved = json.loads(out_path.read_text(encoding="utf-8"))
    assert saved["trials"] == 1

    assert main(["dataplane", "report", str(path), "--json"]) == 0
    parsed = json.loads(capsys.readouterr().out)
    assert parsed["aggregate"]["unreachable_seconds_total"] == 1.0

    assert main(
        ["dataplane", "report", str(tmp_path / "missing.jsonl")]
    ) == 2
    assert "cannot analyze" in capsys.readouterr().err
