"""Fig 3 — Variation in convergence delay with MRAI.

Paper claims (Sec 4.1):

* delay vs MRAI is V-shaped (down to an optimum, then up) — the
  Griffin-Premore curve;
* the optimal MRAI *increases with failure size* (~0.5 s at 1%, ~1.25 s at
  5% on the paper's 120-node 70-30 topology), so "it is not possible to
  select a single ideal MRAI value for a network ... if we take multiple
  failures into account".
"""

from __future__ import annotations

from repro.analysis.shapes import is_v_shaped, optimal_x
from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    series_for_mrai_grid,
    skewed_factory,
)

FIGURE_ID = "fig03"
CAPTION = "Convergence delay vs MRAI for three failure sizes (70-30)"


def compute(profile: ScaleProfile) -> FigureOutput:
    factory = skewed_factory(profile)
    series = [
        series_for_mrai_grid(
            profile, factory, fraction, label=f"{fraction:.1%} failure"
        )
        for fraction in profile.fig3_fractions
    ]
    optima = [optimal_x(s.xs, s.delays) for s in series]
    checks = [
        Check(
            "optimal MRAI is non-decreasing in failure size",
            all(a <= b for a, b in zip(optima, optima[1:])),
            f"optima {optima}",
        ),
        Check(
            "optimal MRAI strictly grows from smallest to largest failure",
            optima[0] < optima[-1],
            f"{optima[0]:g} -> {optima[-1]:g}",
        ),
        Check(
            "largest-failure curve falls then rises (V shape)",
            is_v_shaped(series[-1].xs, series[-1].delays, tolerance=0.35),
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
