"""Benchmark-suite support.

Each module in ``benchmarks/`` regenerates one figure of the paper via the
shared harness in :mod:`repro.figures`, prints the series table (the same
rows/series the paper plots), saves it under ``results/`` at the repo root
and asserts the figure's *strict* shape checks — the paper's qualitative
claims.

Scale: ``REPRO_BENCH_SCALE=quick`` (default: 60-node topologies, minutes
for the whole suite) or ``full`` (the paper's 120-node scale, 3 trials per
point; expect an hour or more).
"""

from __future__ import annotations

import pathlib

from repro.figures import FigureOutput, compute_figure, resolve_profile


def results_dir() -> pathlib.Path:
    """``results/`` next to the installed source tree's repository root."""
    here = pathlib.Path(__file__).resolve()
    # src/repro/figures/bench.py -> repository root is 3 levels above src.
    root = here.parents[3]
    if root.name == "src":
        root = root.parent
    return root / "results"


def run_figure_benchmark(benchmark, figure_id: str) -> FigureOutput:
    """Standard body for one figure benchmark."""
    profile = resolve_profile(None)
    output = benchmark.pedantic(
        compute_figure,
        args=(figure_id, profile.name),
        rounds=1,
        iterations=1,
    )
    rendered = output.render()
    print()
    print(rendered)
    out_dir = results_dir()
    out_dir.mkdir(exist_ok=True)
    out_path = out_dir / f"{figure_id}_{profile.name}.txt"
    out_path.write_text(rendered + "\n", encoding="utf-8")
    # Machine-readable companions for plotting.
    from repro.analysis.export import series_to_csv

    csv_path = out_dir / f"{figure_id}_{profile.name}.csv"
    csv_path.write_text(series_to_csv(output.series), encoding="utf-8")
    failed = output.failed_strict()
    assert not failed, (
        f"{figure_id}: strict shape checks failed: "
        + "; ".join(f"{c.name} ({c.detail})" for c in failed)
    )
    return output
