"""Fig DP1 — Data-plane unreachability vs failure size (not in the paper).

The paper argues that shrinking convergence delay shrinks the window in
which the data plane is broken; this companion figure measures that
window directly.  Every scheme from the dynamic-vs-constant comparison
(Fig 7's set) is re-run with the data-plane monitor on, and schemes are
compared on *unreachable node-seconds* — the time integral, over alive
(source, destination) pairs, of packets being blackholed or caught in
transient forwarding loops — instead of settle time.

Expected shape: a low constant MRAI converges slowly for large failures
(path hunting), a high constant MRAI converges slowly for small ones
(idle timer padding); either way the data plane stays broken for longer.
Dynamic MRAI tracks the better constant across the range, so its total
unreachability over the sweep should undercut every constant.

Monitors perturb nothing (the trajectory is bit-identical — see
tests/test_obs_dataplane.py), so the delay/message numbers here match
the unmonitored figures; the sweep is recomputed rather than shared with
:func:`~repro.figures.common.three_mrai_failure_sweep` because that
cache holds monitor-less results.
"""

from __future__ import annotations

from repro.figures.common import (
    FigureOutput,
    ScaleProfile,
    check_le,
    scheme_set_failure_sweep,
)
from contextlib import nullcontext

from repro.obs.session import ObsSession, active_session, observe

FIGURE_ID = "figdp01"
CAPTION = "Data-plane unreachability vs failure size (dynamic vs constant MRAI)"


def compute(profile: ScaleProfile) -> FigureOutput:
    # Reuse the caller's session when it already monitors the data
    # plane (e.g. `sweep --figure figdp01 --dataplane-out ...`) so its
    # sink sees the transitions; otherwise install a private one.
    outer = active_session()
    if outer is not None and outer.dataplane_enabled:
        scope = nullcontext()
    else:
        scope = observe(ObsSession(dataplane=True))
    with scope:
        series = list(
            scheme_set_failure_sweep("dynamic_vs_constant", profile)
        )
    constants, dynamic = series[:-1], series[-1]
    f_large = profile.largest_fraction

    checks = []
    for constant in constants:
        checks.append(
            check_le(
                f"dynamic total unreachability <= {constant.label} "
                f"over the sweep",
                sum(dynamic.unreachables),
                sum(constant.unreachables),
                slack=1.05,
            )
        )
    low = constants[0]
    checks.append(
        check_le(
            "dynamic beats the low constant MRAI on unreachability "
            "for the largest failure",
            dynamic.unreachable_at(f_large),
            low.unreachable_at(f_large),
            slack=1.05,
            strict=False,
        )
    )
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("unreachable", "delay"),
        checks=checks,
        profile_name=profile.name,
    )
