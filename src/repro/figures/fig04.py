"""Fig 4 — Convergence delay for different degree distributions.

Paper claim (Sec 4.1): at the same average degree (3.8), the optimal MRAI
tracks the degree of the *high-degree nodes*: ~1.0 s for 50-50 (highs 5-6),
~1.25 s for 70-30 (highs 8), ~2.25 s for 85-15 (highs 14) — because the
high-degree nodes receive the most messages and overload first.
"""

from __future__ import annotations

from repro.analysis.shapes import optimal_x
from repro.core.sweep import mrai_sweep
from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    skewed_factory,
)
from repro.specs import build_spec, distribution_spec

FIGURE_ID = "fig04"
CAPTION = "Delay vs MRAI at 5% failure for 50-50 / 70-30 / 85-15"

#: Named distributions compared, resolved via the repro.specs table.
DISTRIBUTIONS = ("50-50", "70-30", "85-15")


def compute(profile: ScaleProfile) -> FigureOutput:
    series = []
    for label in DISTRIBUTIONS:
        factory = skewed_factory(profile, distribution_spec(label))
        series.append(
            mrai_sweep(
                factory,
                build_spec({"failure_fraction": 0.05}),
                profile.mrai_grid,
                profile.seeds,
                label=label,
            )
        )
    optima = {
        s.label: optimal_x(s.xs, s.delays) for s in series
    }
    checks = [
        Check(
            "optimal MRAI grows with the degree of the high-degree nodes "
            "(50-50 <= 85-15)",
            optima["50-50"] <= optima["85-15"],
            f"optima {optima}",
        ),
        Check(
            "full ordering 50-50 <= 70-30 <= 85-15",
            optima["50-50"] <= optima["70-30"] <= optima["85-15"],
            f"optima {optima}",
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
