"""Fig 12 — Effect of batching with different MRAIs (5% failure).

Paper claim (Sec 4.4): "the convergence delay decreases significantly with
batching if the MRAI is less than the optimal value; however batching does
not have much of an impact otherwise" — batching only helps when nodes are
actually overloaded.
"""

from __future__ import annotations

from repro.analysis.shapes import optimal_x
from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    check_ratio,
    series_for_mrai_grid,
    skewed_factory,
)

FIGURE_ID = "fig12"
CAPTION = "Batching vs FIFO across MRAI values (5% failure, 70-30)"


def compute(profile: ScaleProfile) -> FigureOutput:
    factory = skewed_factory(profile)
    fifo = series_for_mrai_grid(
        profile, factory, 0.05, label="FIFO", queue_discipline="fifo"
    )
    batched = series_for_mrai_grid(
        profile, factory, 0.05, label="batching", queue_discipline="dest_batch"
    )
    lowest = min(profile.mrai_grid)
    highest = max(profile.mrai_grid)
    high_ratio = (
        batched.delay_at(highest) / fifo.delay_at(highest)
        if fifo.delay_at(highest)
        else 1.0
    )
    checks = [
        check_ratio(
            "batching helps significantly below the optimal MRAI",
            fifo.delay_at(lowest),
            batched.delay_at(lowest),
            minimum=1.25,
        ),
        Check(
            "batching has little effect above the optimal MRAI",
            0.60 <= high_ratio <= 1.40,
            f"batched/FIFO delay ratio at MRAI={highest:g}: {high_ratio:.2f}",
            strict=False,
        ),
        Check(
            "batching's optimum is at or below the FIFO optimum",
            optimal_x(batched.xs, batched.delays)
            <= optimal_x(fifo.xs, fifo.delays),
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=[fifo, batched],
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
