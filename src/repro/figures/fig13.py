"""Fig 13 — Convergence delay on realistic topologies.

Paper claim (Sec 4.4): on topologies with multiple routers per AS and an
Internet-derived inter-AS degree distribution (max degree 40), batching and
dynamic MRAI behave just like on the synthetic flat topologies: batching
keeps delays low across the failure range, dynamic MRAI is near-optimal,
and the constant-low configuration degrades for large failures.

The paper found the optimal MRAI on these topologies was 0.5 s for small
failures and 3.5 s for large (10%) ones, so the dynamic ladder here tops
out at 3.5 s rather than 2.25 s.
"""

from __future__ import annotations

from repro.figures.common import (
    FigureOutput,
    ScaleProfile,
    check_le,
    multirouter_factory,
    scheme_set_failure_sweep,
)
from repro.specs.scheme_sets import REALISTIC_LEVELS  # noqa: F401 (re-export)

FIGURE_ID = "fig13"
CAPTION = "Batching & dynamic MRAI on multi-router / Internet-derived topologies"


def compute(profile: ScaleProfile) -> FigureOutput:
    # Failure sizes up to the profile maximum: the realistic topologies
    # only show overload once several ASes' worth of routers disappear.
    fractions = (0.05, 0.10, profile.largest_fraction)
    series = list(
        scheme_set_failure_sweep(
            "realistic",
            profile,
            factory=multirouter_factory(profile),
            fractions=fractions,
        )
    )
    const_low, const_high, dynamic, batching, combined = series
    f_small = fractions[0]
    f_large = fractions[-1]
    checks = [
        check_le(
            "batching beats constant-low for the largest failure",
            batching.delay_at(f_large),
            const_low.delay_at(f_large),
        ),
        check_le(
            "batching keeps the smallest-failure delay near constant-low",
            batching.delay_at(f_small),
            # Small-failure delays here are a couple of seconds at most, so
            # allow one second of absolute slack on top of the 35%.
            const_low.delay_at(f_small) + 1.0,
            slack=1.35,
        ),
        check_le(
            "dynamic beats constant-low for the largest failure",
            dynamic.delay_at(f_large),
            const_low.delay_at(f_large),
            slack=1.05,
            strict=False,
        ),
        check_le(
            "constant-high beats constant-low for the largest failure "
            "(same trend as the flat topologies)",
            const_high.delay_at(f_large),
            const_low.delay_at(f_large),
            slack=1.05,
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
