"""Fig 1 — Convergence delay for different sized failures.

Paper claim (Sec 4.1): with a low MRAI the delay is small for small
failures but "increases sharply as the size of the failure goes up"; with
higher MRAIs the small-failure delay is larger but the growth is gentler.
"""

from __future__ import annotations

from repro.analysis.shapes import monotone_increasing
from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    check_le,
    three_mrai_failure_sweep,
)

FIGURE_ID = "fig01"
CAPTION = "Convergence delay vs failure size (70-30 topology)"


def compute(profile: ScaleProfile) -> FigureOutput:
    series = list(three_mrai_failure_sweep(profile))
    low, __, high = (s for s in series)
    f_small = profile.smallest_fraction
    f_large = profile.largest_fraction

    low_growth = low.delays[-1] / low.delays[0]
    high_growth = high.delays[-1] / high.delays[0]
    checks = [
        check_le(
            "low MRAI gives the lowest delay for the smallest failure",
            low.delay_at(f_small),
            high.delay_at(f_small),
        ),
        check_le(
            "high MRAI gives the lowest delay for the largest failure",
            high.delay_at(f_large),
            low.delay_at(f_large),
        ),
        Check(
            "low-MRAI delay grows steeper with failure size than high-MRAI",
            low_growth > high_growth,
            f"growth x{low_growth:.2f} (low) vs x{high_growth:.2f} (high)",
        ),
        Check(
            "low-MRAI delay increases with failure size",
            monotone_increasing(low.delays, tolerance=0.35),
            f"delays {['%.1f' % d for d in low.delays]}",
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
