"""Fig 5 — Effect of average degree on convergence delay.

Paper claim (Sec 4.1): comparing two 50-50 topologies, avg degree 3.8
(highs 5-6) vs 7.6 (highs 13-14): "both the optimal MRAI and the
convergence delay are greater for the topology with the higher degree" —
the larger optimum because of the higher-degree highs (matching the 85-15
optimum, ~2 s), the larger delay because more alternate paths must be
explored.
"""

from __future__ import annotations

from repro.analysis.shapes import optimal_x
from repro.core.sweep import mrai_sweep
from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    skewed_factory,
)
from repro.specs import build_spec, distribution_spec

FIGURE_ID = "fig05"
CAPTION = "Delay vs MRAI at 5% failure: avg degree 3.8 vs 7.6 (50-50)"


def compute(profile: ScaleProfile) -> FigureOutput:
    series = []
    for label, dist_name in (
        ("avg degree 3.8", "50-50"),
        ("avg degree 7.6", "50-50-dense"),
    ):
        factory = skewed_factory(profile, distribution_spec(dist_name))
        series.append(
            mrai_sweep(
                factory,
                build_spec({"failure_fraction": 0.05}),
                profile.mrai_grid,
                profile.seeds,
                label=label,
            )
        )
    sparse, dense = series
    opt_sparse = optimal_x(sparse.xs, sparse.delays)
    opt_dense = optimal_x(dense.xs, dense.delays)
    checks = [
        Check(
            "higher average degree -> optimal MRAI at least as large",
            opt_dense >= opt_sparse,
            f"optima {opt_sparse:g} (3.8) vs {opt_dense:g} (7.6)",
        ),
        Check(
            "higher average degree -> higher delay at the optimum",
            min(dense.delays) >= min(sparse.delays),
            f"min delay {min(sparse.delays):.1f} vs {min(dense.delays):.1f}",
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
