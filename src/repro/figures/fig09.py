"""Fig 9 — Effect of downTh on the dynamic scheme (upTh = 0.65 s).

Paper claim (Sec 4.3): "As we increase downTh, more nodes decrease their
MRAI and the delays for larger failures are increased"; results are again
similar over a range of values.
"""

from __future__ import annotations

from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    scheme_set_failure_sweep,
)

FIGURE_ID = "fig09"
CAPTION = "Dynamic MRAI: sensitivity to downTh (upTh=0.65)"

#: Swept values; the scheme list itself is the 'dynamic_down_th' set.
DOWN_THRESHOLDS = (0.0, 0.05, 0.30)


def compute(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("dynamic_down_th", profile))
    zero, paper_value, high = series
    f_large = profile.largest_fraction
    checks = [
        Check(
            "raising downTh does not help the largest failures",
            high.delay_at(f_large) >= zero.delay_at(f_large) * 0.75,
            f"downTh=0: {zero.delay_at(f_large):.1f}s, "
            f"downTh=0.3: {high.delay_at(f_large):.1f}s",
            strict=False,
        ),
        Check(
            "results are robust over a range of downTh (0 vs 0.05 close)",
            paper_value.delay_at(f_large) <= zero.delay_at(f_large) * 1.75
            and zero.delay_at(f_large) <= paper_value.delay_at(f_large) * 1.75,
            f"{zero.delay_at(f_large):.1f} vs {paper_value.delay_at(f_large):.1f}",
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
