"""Fig 10 — Performance of the batching scheme (delay).

Paper claims (Sec 4.4): with MRAI 0.5 s, batching "is able to reduce the
convergence delay for larger failures significantly while keeping the
delays low for small failures" — by a factor of 3 or more vs the plain
constant-0.5 configuration — and beats the dynamic MRAI scheme; combining
batching with dynamic MRAI reduces delays "even further".
"""

from __future__ import annotations

from repro.figures.common import (
    FigureOutput,
    ScaleProfile,
    batching_scheme_sweep,
    check_le,
    check_ratio,
)

FIGURE_ID = "fig10"
CAPTION = "Batching vs dynamic MRAI vs constants (70-30 topology)"


def compute(profile: ScaleProfile) -> FigureOutput:
    series = list(batching_scheme_sweep(profile))
    const_low, const_high, dynamic, batching, combined = series
    f_small = profile.smallest_fraction
    f_large = profile.largest_fraction
    checks = [
        check_ratio(
            "batching cuts the largest-failure delay vs constant-low "
            "(paper: factor of 3 or more)",
            const_low.delay_at(f_large),
            batching.delay_at(f_large),
            minimum=2.0,
        ),
        check_le(
            "batching keeps the smallest-failure delay low "
            "(near constant-low)",
            batching.delay_at(f_small),
            const_low.delay_at(f_small),
            slack=1.30,
        ),
        check_le(
            "batching at or below the dynamic scheme for the largest failure",
            batching.delay_at(f_large),
            dynamic.delay_at(f_large),
            slack=1.15,
            strict=False,
        ),
        check_le(
            "batch+dynamic is competitive with the best scheme at the "
            "largest failure",
            combined.delay_at(f_large),
            min(batching.delay_at(f_large), dynamic.delay_at(f_large)),
            slack=1.40,
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
