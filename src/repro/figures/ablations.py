"""Ablation experiments.

Beyond the 13 figures, the paper makes several side claims and design
choices in prose.  Each ablation here isolates one of them:

* ``ab_per_dest_mrai`` — per-peer vs per-destination MRAI timers (Sec 2:
  per-destination is the "straightforward" but unscalable design).
* ``ab_tcp_batch`` — the paper's per-destination batching vs the
  router-style fixed-size TCP-buffer batch (end of Sec 4.4: the latter's
  dedup probability "will progressively decrease" with failure size).
* ``ab_monitors`` — the three overload monitors for dynamic MRAI (Sec 4.3:
  queue-based works, utilization "promising", message-count "not very
  successful").
* ``ab_high_degree_only`` — dynamic MRAI at all nodes vs only at
  high-degree nodes (Sec 4.3: "effectively the same", because low-degree
  nodes never overload).
* ``ab_failure_geometry`` — geographically contiguous vs scattered random
  failures of the same size.
* ``ab_withdrawal_rl`` — RFC-default immediate withdrawals vs rate-limited
  withdrawals.
* ``ab_processing`` — the paper's uniform(1, 30) ms processing model vs no
  processing cost (Sec 5: without overload "the convergence delays will be
  unchanged" by the schemes).
"""

from __future__ import annotations

from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    check_le,
    check_ratio,
    scheme_set_failure_sweep,
    skewed_factory,
)


# ---------------------------------------------------------------------------
def compute_per_dest_mrai(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("ab_per_dest_mrai", profile))
    per_peer, per_dest = series
    f_large = profile.largest_fraction
    checks = [
        Check(
            "both timer granularities converge at every failure size",
            all(d > 0 for d in per_peer.delays + per_dest.delays),
        ),
        Check(
            "per-destination timers change behaviour under load "
            "(the designs are not equivalent)",
            per_dest.delay_at(f_large) != per_peer.delay_at(f_large),
            f"{per_dest.delay_at(f_large):.1f}s vs "
            f"{per_peer.delay_at(f_large):.1f}s",
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_per_dest_mrai",
        caption="Ablation: per-peer vs per-destination MRAI timers",
        series=series,
        metrics=("delay", "messages"),
        checks=checks,
        profile_name=profile.name,
    )


# ---------------------------------------------------------------------------
def compute_tcp_batch(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("ab_tcp_batch", profile))
    fifo, tcp, dest = series
    f_large = profile.largest_fraction
    checks = [
        check_le(
            "per-destination batching beats router-style TCP batching "
            "for the largest failure",
            dest.delay_at(f_large),
            tcp.delay_at(f_large),
            slack=1.05,
        ),
        check_ratio(
            "per-destination batching beats plain FIFO for the largest "
            "failure",
            fifo.delay_at(f_large),
            dest.delay_at(f_large),
            minimum=1.5,
        ),
        check_le(
            "TCP batching is no worse than FIFO",
            tcp.delay_at(f_large),
            fifo.delay_at(f_large),
            slack=1.15,
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_tcp_batch",
        caption="Ablation: FIFO vs TCP-buffer batching vs per-destination batching",
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )


# ---------------------------------------------------------------------------
def compute_monitors(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("ab_monitors", profile))
    queue, util, msg, static_low = series
    f_large = profile.largest_fraction
    checks = [
        check_le(
            "queue-based dynamic MRAI beats the static low constant "
            "for the largest failure",
            queue.delay_at(f_large),
            static_low.delay_at(f_large),
        ),
        check_le(
            "utilization-based monitor also helps (paper: 'promising')",
            util.delay_at(f_large),
            static_low.delay_at(f_large),
            slack=1.05,
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_monitors",
        caption="Ablation: dynamic-MRAI overload monitors (queue / utilization / msgcount)",
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )


# ---------------------------------------------------------------------------
def compute_high_degree_only(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("ab_high_degree_only", profile))
    everywhere, high_only = series
    f_large = profile.largest_fraction
    ratio = high_only.delay_at(f_large) / everywhere.delay_at(f_large)
    checks = [
        Check(
            "restricting the dynamic scheme to high-degree nodes is "
            "effectively the same (paper Sec 4.3)",
            0.5 <= ratio <= 2.0,
            f"largest-failure delay ratio {ratio:.2f}",
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_high_degree_only",
        caption="Ablation: dynamic MRAI at all nodes vs high-degree nodes only",
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )


# ---------------------------------------------------------------------------
def compute_failure_geometry(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("ab_failure_geometry", profile))
    checks = [
        Check(
            "both geometries converge and grow with failure size",
            all(d > 0 for s in series for d in s.delays),
        ),
    ]
    return FigureOutput(
        figure_id="ab_failure_geometry",
        caption="Ablation: contiguous geographic vs scattered random failures",
        series=series,
        metrics=("delay", "messages"),
        checks=checks,
        profile_name=profile.name,
    )


# ---------------------------------------------------------------------------
def compute_withdrawal_rl(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("ab_withdrawal_rl", profile))
    immediate, limited = series
    checks = [
        Check(
            "rate-limiting withdrawals changes message counts",
            any(
                immediate.messages_at(f) != limited.messages_at(f)
                for f in profile.fractions
            ),
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_withdrawal_rl",
        caption="Ablation: immediate (RFC default) vs rate-limited withdrawals",
        series=series,
        metrics=("delay", "messages"),
        checks=checks,
        profile_name=profile.name,
    )


# ---------------------------------------------------------------------------
def compute_processing(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("ab_processing", profile))
    loaded_fifo, loaded_batch, free_fifo, free_batch = series
    f_large = profile.largest_fraction
    free_ratio = (
        free_batch.delay_at(f_large) / free_fifo.delay_at(f_large)
        if free_fifo.delay_at(f_large)
        else 1.0
    )
    checks = [
        check_ratio(
            "with processing overhead, batching helps at the largest failure",
            loaded_fifo.delay_at(f_large),
            loaded_batch.delay_at(f_large),
            minimum=1.5,
        ),
        Check(
            "without processing overhead, batching changes nothing "
            "(paper Sec 5)",
            0.8 <= free_ratio <= 1.2,
            f"zero-cost batch/FIFO delay ratio {free_ratio:.2f}",
        ),
        check_le(
            "overload, not propagation, dominates the loaded delay",
            free_fifo.delay_at(f_large),
            loaded_fifo.delay_at(f_large),
        ),
    ]
    return FigureOutput(
        figure_id="ab_processing",
        caption="Ablation: the processing-overhead model is what the schemes fix",
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )


def compute_future_work(profile: ScaleProfile) -> FigureOutput:
    """The paper's Sec-5 future-work schemes, implemented and measured.

    * failure-extent-adaptive MRAI ("a scheme that can accurately and
      quickly set the MRAI consistent with the extent of failure");
    * withdrawal-first batching ("the batching scheme can be improved
      further to remove conflicting/superfluous updates");
    * the analytically derived MRAI ladder from repro.core.theory ("it is
      necessary to develop a suitable theory for choosing various
      parameters"), feeding the paper's own dynamic scheme.
    """
    # The adaptive/theory schemes resolve against the seed[0] topology
    # (failure extents and recommended ladders are topology properties).
    factory = skewed_factory(profile)
    sample_topology = factory(profile.seeds[0])
    series = list(
        scheme_set_failure_sweep(
            "ab_future_work", profile, topology=sample_topology
        )
    )
    const_low, dynamic, batching, adaptive, wf_batch, theory = series
    f_small = profile.smallest_fraction
    f_large = profile.largest_fraction
    checks = [
        check_le(
            "adaptive-extent MRAI beats the constant-low meltdown",
            adaptive.delay_at(f_large),
            const_low.delay_at(f_large),
        ),
        check_le(
            "adaptive-extent MRAI is competitive with the paper's dynamic "
            "scheme at the largest failure",
            adaptive.delay_at(f_large),
            dynamic.delay_at(f_large),
            slack=1.25,
            strict=False,
        ),
        check_le(
            "withdrawal-first batching stays in the batching class",
            wf_batch.delay_at(f_large),
            batching.delay_at(f_large),
            slack=1.5,
        ),
        check_le(
            "the analytic ladder needs no measured sweep yet performs "
            "like the hand-tuned one",
            theory.delay_at(f_large),
            dynamic.delay_at(f_large),
            slack=1.75,
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_future_work",
        caption="Ablation: the paper's future-work schemes, implemented",
        series=series,
        metrics=("delay", "messages"),
        checks=checks,
        profile_name=profile.name,
    )


def compute_detection_delay(profile: ScaleProfile) -> FigureOutput:
    """Hold-timer failure detection vs the paper's instantaneous model.

    The paper starts its convergence clock at the failure instant with
    immediate session teardown.  Real BGP waits out the hold timer; this
    ablation shows the detection delay adds roughly additively and does
    not change which scheme wins.
    """
    series = list(scheme_set_failure_sweep("ab_detection_delay", profile))
    instant, one_second, three_seconds = series
    f_small = profile.smallest_fraction
    checks = [
        check_le(
            "hold-timer detection adds roughly its own delay for small "
            "failures",
            three_seconds.delay_at(f_small),
            instant.delay_at(f_small) + 3.0 + 1.5,
        ),
        Check(
            "detection delay never speeds convergence up",
            all(
                three_seconds.delay_at(f) >= instant.delay_at(f) * 0.8
                for f in profile.fractions
            ),
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_detection_delay",
        caption="Ablation: instantaneous vs hold-timer failure detection",
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )


def compute_flap_damping(profile: ScaleProfile) -> FigureOutput:
    """RFC-2439 route flap damping vs the paper's schemes.

    Damping was the deployed answer to update storms in the paper's era.
    After a *single* large failure event, path exploration looks like
    flapping, so damping suppresses recovery routes.  That cuts update
    volume (and hence, in the overload regime, measured convergence time)
    — but at the price of temporarily blackholing suppressed routes until
    their penalties decay (Mao et al., SIGCOMM 2002).  The paper's
    batching scheme achieves a bigger delay reduction with no suppression
    at all, which is what the strict check pins down.  Damping half-life
    is scaled to the simulation's seconds-scale dynamics.
    """
    series = list(scheme_set_failure_sweep("ab_flap_damping", profile))
    plain, damped, batching = series
    f_large = profile.largest_fraction
    checks = [
        check_le(
            "batching beats flap damping for large-scale failures "
            "(and without damping's suppression blackholes)",
            batching.delay_at(f_large),
            damped.delay_at(f_large),
        ),
        Check(
            "damping works by suppressing updates: fewer messages than "
            "plain BGP at the largest failure",
            damped.messages_at(f_large) < plain.messages_at(f_large),
            f"{damped.messages_at(f_large):.0f} vs "
            f"{plain.messages_at(f_large):.0f}",
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_flap_damping",
        caption="Ablation: RFC-2439 flap damping vs the paper's schemes",
        series=series,
        metrics=("delay", "messages"),
        checks=checks,
        profile_name=profile.name,
    )


def compute_policy_routing(profile: ScaleProfile) -> FigureOutput:
    """Policy routing vs the paper's "no policy restrictions" setting.

    The paper selects routes by path length alone.  Under Gao-Rexford
    commercial policies (customer > peer > provider, valley-free export)
    fewer alternate paths exist, so path exploration — the engine of the
    paper's convergence problem — has less to explore.  The topology is
    held fixed across trials so the inferred AS relationships stay
    consistent; relationships are inferred hierarchically, which keeps
    valley-free reachability complete and the comparison apples-to-apples.
    """
    # The topology is pinned so the inferred relationships stay valid for
    # every trial; the scheme set's inferred-policy block resolves
    # against the same pinned topology.
    fixed_topology = skewed_factory(profile)(profile.seeds[0])
    series = list(
        scheme_set_failure_sweep(
            "ab_policy_routing",
            profile,
            factory=lambda seed: fixed_topology,
            topology=fixed_topology,
        )
    )
    unrestricted, policied = series
    f_large = profile.largest_fraction
    checks = [
        Check(
            "policies shrink the exploration space: fewer update messages "
            "at the largest failure",
            policied.messages_at(f_large) < unrestricted.messages_at(f_large),
            f"{policied.messages_at(f_large):.0f} vs "
            f"{unrestricted.messages_at(f_large):.0f}",
        ),
        check_le(
            "policied convergence is no slower than unrestricted at the "
            "largest failure",
            policied.delay_at(f_large),
            unrestricted.delay_at(f_large),
            slack=1.25,
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id="ab_policy_routing",
        caption="Ablation: Gao-Rexford policies vs unrestricted shortest-path",
        series=series,
        metrics=("delay", "messages"),
        checks=checks,
        profile_name=profile.name,
    )


ABLATIONS = {
    "ab_future_work": compute_future_work,
    "ab_detection_delay": compute_detection_delay,
    "ab_flap_damping": compute_flap_damping,
    "ab_policy_routing": compute_policy_routing,
    "ab_per_dest_mrai": compute_per_dest_mrai,
    "ab_tcp_batch": compute_tcp_batch,
    "ab_monitors": compute_monitors,
    "ab_high_degree_only": compute_high_degree_only,
    "ab_failure_geometry": compute_failure_geometry,
    "ab_withdrawal_rl": compute_withdrawal_rl,
    "ab_processing": compute_processing,
}
