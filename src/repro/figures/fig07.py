"""Fig 7 — Effect of dynamic MRAI.

Paper claims (Sec 4.3): with levels {0.5, 1.25, 2.25}, upTh=0.65 s,
downTh=0.05 s, the dynamic scheme's delay is at or below the constant-0.5
delay for small failures (some nodes overload even there), about the
constant-1.25 delay at 5%, and for larger failures above constant-2.25 but
well below constant-1.25 and constant-0.5 — i.e. near-optimal across the
whole range.
"""

from __future__ import annotations

from repro.figures.common import (
    FigureOutput,
    ScaleProfile,
    check_le,
    scheme_set_failure_sweep,
)

FIGURE_ID = "fig07"
CAPTION = "Dynamic MRAI vs constant MRAIs (70-30 topology)"


def compute(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("dynamic_vs_constant", profile))
    const_low, const_mid, const_high, dynamic = series
    f_small = profile.smallest_fraction
    f_large = profile.largest_fraction
    checks = [
        check_le(
            "dynamic tracks the constant-low delay for the smallest failure",
            dynamic.delay_at(f_small),
            const_low.delay_at(f_small),
            slack=1.30,
        ),
        check_le(
            "dynamic beats constant-low for the largest failure",
            dynamic.delay_at(f_large),
            const_low.delay_at(f_large),
        ),
        check_le(
            "dynamic at or below the constant-mid delay for the largest failure",
            dynamic.delay_at(f_large),
            const_mid.delay_at(f_large),
            slack=1.10,
        ),
        check_le(
            "dynamic within 2x of the best constant at every failure size",
            max(
                dynamic.delay_at(f)
                / min(
                    const_low.delay_at(f),
                    const_mid.delay_at(f),
                    const_high.delay_at(f),
                )
                for f in profile.fractions
            ),
            2.0,
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
