"""Shared infrastructure for the figure-reproduction harness.

A :class:`ScaleProfile` fixes the experiment scale:

* ``quick`` — 60-node topologies, single trial, coarse sweep grids.  Runs
  the full 13-figure suite in minutes; the default for the benchmark
  suite.  The phenomena (V-shapes, moving optima, scheme orderings) are
  already present at this scale.
* ``full`` — the paper's 120-node topologies, 3 trials per point, dense
  grids.  Expect an hour or more for the complete suite; enable with
  ``REPRO_BENCH_SCALE=full``.

Each figure module computes a :class:`FigureOutput`: the series behind the
plot, plus named *shape checks* encoding the paper's qualitative claims
(who wins, by roughly what factor, where the crossover falls).  Strict
checks are asserted by the benchmark suite; soft checks are recorded but
tolerated, since single-trial quick runs are noisy the same way the
paper's individual runs were.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.report import format_figure
from repro.core.experiment import ExperimentSpec
from repro.core.sweep import Series, failure_size_sweep, mrai_sweep
from repro.topology.degree import SkewedDegreeSpec
from repro.topology.graph import Topology
from repro.topology.multirouter import MultiRouterSpec, multi_router_topology
from repro.topology.skewed import skewed_topology

#: Environment variable selecting the default scale.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class ScaleProfile:
    """Experiment scale: topology size, trial count and sweep grids."""

    name: str
    nodes: int
    seeds: Tuple[int, ...]
    fractions: Tuple[float, ...]
    mrai_grid: Tuple[float, ...]
    #: The three headline MRAI values swept in Figs 1/2/6/7/10/11.
    mrai_three: Tuple[float, float, float]
    #: Ladder for the dynamic scheme (the per-failure-size optima).
    dynamic_levels: Tuple[float, ...]
    #: Failure sizes for the Fig 3 delay-vs-MRAI curves.
    fig3_fractions: Tuple[float, ...]
    #: Number of ASes in the Fig 13 multi-router topologies.
    multirouter_ases: int

    @property
    def smallest_fraction(self) -> float:
        return self.fractions[0]

    @property
    def largest_fraction(self) -> float:
        return self.fractions[-1]


QUICK = ScaleProfile(
    name="quick",
    nodes=60,
    seeds=(1,),
    fractions=(1.0 / 60.0, 0.05, 0.10, 0.20),
    mrai_grid=(0.25, 0.5, 1.25, 2.25, 3.5),
    mrai_three=(0.5, 1.25, 2.25),
    dynamic_levels=(0.5, 1.25, 2.25),
    fig3_fractions=(1.0 / 60.0, 0.05, 0.10),
    multirouter_ases=48,
)

FULL = ScaleProfile(
    name="full",
    nodes=120,
    seeds=(1, 2, 3),
    fractions=(0.01, 0.025, 0.05, 0.10, 0.15, 0.20),
    mrai_grid=(0.25, 0.5, 0.75, 1.0, 1.25, 1.75, 2.25, 3.0, 4.0),
    mrai_three=(0.5, 1.25, 2.25),
    dynamic_levels=(0.5, 1.25, 2.25),
    fig3_fractions=(0.01, 0.05, 0.10),
    multirouter_ases=60,
)

PROFILES: Dict[str, ScaleProfile] = {"quick": QUICK, "full": FULL}


def resolve_profile(scale: str | None = None) -> ScaleProfile:
    """Profile by name, by ``REPRO_BENCH_SCALE``, or the quick default."""
    if scale is None:
        scale = os.environ.get(SCALE_ENV_VAR, "quick")
    try:
        return PROFILES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(PROFILES)}"
        ) from None


# ---------------------------------------------------------------------------
# Topology factories
# ---------------------------------------------------------------------------
def skewed_factory(
    profile: ScaleProfile, spec: SkewedDegreeSpec | None = None
) -> Callable[[int], Topology]:
    """Factory for the paper's skewed flat topologies at profile scale."""
    the_spec = spec if spec is not None else SkewedDegreeSpec.paper_70_30()

    def build(seed: int) -> Topology:
        return skewed_topology(profile.nodes, the_spec, seed=seed)

    return build


def multirouter_factory(profile: ScaleProfile) -> Callable[[int], Topology]:
    """Factory for the Fig 13 realistic topologies at profile scale."""
    spec = MultiRouterSpec(num_ases=profile.multirouter_ases)

    def build(seed: int) -> Topology:
        return multi_router_topology(spec, seed=seed)

    return build


# ---------------------------------------------------------------------------
# Checks and outputs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Check:
    """One qualitative claim from the paper, evaluated on our data."""

    name: str
    passed: bool
    detail: str = ""
    #: Strict checks are asserted by the benchmarks; soft ones recorded.
    strict: bool = True

    def __str__(self) -> str:
        mark = "PASS" if self.passed else ("FAIL" if self.strict else "soft-fail")
        strictness = "" if self.strict else " [soft]"
        detail = f" — {self.detail}" if self.detail else ""
        return f"  [{mark}]{strictness} {self.name}{detail}"


@dataclass
class FigureOutput:
    """Everything a reproduced figure yields."""

    figure_id: str
    caption: str
    series: List[Series]
    metrics: Tuple[str, ...]
    checks: List[Check] = field(default_factory=list)
    profile_name: str = "quick"

    @property
    def strict_ok(self) -> bool:
        return all(c.passed for c in self.checks if c.strict)

    def failed_strict(self) -> List[Check]:
        return [c for c in self.checks if c.strict and not c.passed]

    def render(self) -> str:
        body = format_figure(
            self.figure_id, self.caption, self.series, self.metrics
        )
        check_lines = "\n".join(str(c) for c in self.checks)
        footer = f"(scale profile: {self.profile_name})"
        return f"{body}\n\nShape checks:\n{check_lines}\n{footer}"


def check_ratio(
    name: str,
    numerator: float,
    denominator: float,
    minimum: float,
    strict: bool = True,
) -> Check:
    """Check ``numerator / denominator >= minimum``."""
    ratio = numerator / denominator if denominator else float("inf")
    return Check(
        name=name,
        passed=ratio >= minimum,
        detail=f"ratio {ratio:.2f} (needed >= {minimum:g})",
        strict=strict,
    )


def check_le(
    name: str,
    lhs: float,
    rhs: float,
    slack: float = 1.0,
    strict: bool = True,
) -> Check:
    """Check ``lhs <= rhs * slack``."""
    return Check(
        name=name,
        passed=lhs <= rhs * slack,
        detail=f"{lhs:.2f} vs {rhs:.2f} (slack x{slack:g})",
        strict=strict,
    )


# ---------------------------------------------------------------------------
# Shared (memoized) sweeps — several figures reuse the same computation
# ---------------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def three_mrai_failure_sweep(profile: ScaleProfile) -> Tuple[Series, ...]:
    """Delay+messages vs failure size for the three headline MRAIs.

    Shared by Fig 1 (delay) and Fig 2 (messages).
    """
    factory = skewed_factory(profile)
    out = []
    for mrai_value in profile.mrai_three:
        from repro.bgp.mrai import ConstantMRAI

        spec = ExperimentSpec(mrai=ConstantMRAI(mrai_value))
        out.append(
            failure_size_sweep(
                factory,
                spec,
                profile.fractions,
                profile.seeds,
                label=f"MRAI={mrai_value:g}s",
            )
        )
    return tuple(out)


@functools.lru_cache(maxsize=None)
def batching_scheme_sweep(profile: ScaleProfile) -> Tuple[Series, ...]:
    """Delay+messages vs failure size for the Fig 10/11 scheme set."""
    from repro.bgp.mrai import ConstantMRAI
    from repro.core.dynamic_mrai import DynamicMRAI

    factory = skewed_factory(profile)
    low, __, high = profile.mrai_three
    schemes = [
        (f"MRAI={low:g}s", ExperimentSpec(mrai=ConstantMRAI(low))),
        (f"MRAI={high:g}s", ExperimentSpec(mrai=ConstantMRAI(high))),
        (
            "dynamic",
            ExperimentSpec(mrai=DynamicMRAI(levels=profile.dynamic_levels)),
        ),
        (
            "batching",
            ExperimentSpec(
                mrai=ConstantMRAI(low), queue_discipline="dest_batch"
            ),
        ),
        (
            "batch+dynamic",
            ExperimentSpec(
                mrai=DynamicMRAI(levels=profile.dynamic_levels),
                queue_discipline="dest_batch",
            ),
        ),
    ]
    return tuple(
        failure_size_sweep(
            factory, spec, profile.fractions, profile.seeds, label=label
        )
        for label, spec in schemes
    )


def series_for_mrai_grid(
    profile: ScaleProfile,
    factory: Callable[[int], Topology],
    fraction: float,
    label: str,
    queue_discipline: str = "fifo",
    grid: Sequence[float] | None = None,
) -> Series:
    """One delay-vs-MRAI curve at a fixed failure size."""
    spec = ExperimentSpec(
        failure_fraction=fraction, queue_discipline=queue_discipline
    )
    return mrai_sweep(
        factory,
        spec,
        grid if grid is not None else profile.mrai_grid,
        profile.seeds,
        label=label,
    )
