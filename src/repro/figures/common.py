"""Shared infrastructure for the figure-reproduction harness.

A :class:`ScaleProfile` fixes the experiment scale:

* ``quick`` — 60-node topologies, single trial, coarse sweep grids.  Runs
  the full 13-figure suite in minutes; the default for the benchmark
  suite.  The phenomena (V-shapes, moving optima, scheme orderings) are
  already present at this scale.
* ``full`` — the paper's 120-node topologies, 3 trials per point, dense
  grids.  Expect an hour or more for the complete suite; enable with
  ``REPRO_BENCH_SCALE=full``.

Each figure module computes a :class:`FigureOutput`: the series behind the
plot, plus named *shape checks* encoding the paper's qualitative claims
(who wins, by roughly what factor, where the crossover falls).  Strict
checks are asserted by the benchmark suite; soft checks are recorded but
tolerated, since single-trial quick runs are noisy the same way the
paper's individual runs were.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from repro.analysis.report import format_figure
from repro.core.sweep import Series, failure_size_sweep, mrai_sweep
from repro.specs import build_spec, scheme_set_specs
from repro.topology.degree import SkewedDegreeSpec
from repro.topology.graph import Topology
from repro.topology.multirouter import MultiRouterSpec, multi_router_topology
from repro.topology.skewed import skewed_topology

#: Environment variable selecting the default scale.
SCALE_ENV_VAR = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class ScaleProfile:
    """Experiment scale: topology size, trial count and sweep grids."""

    name: str
    nodes: int
    seeds: Tuple[int, ...]
    fractions: Tuple[float, ...]
    mrai_grid: Tuple[float, ...]
    #: The three headline MRAI values swept in Figs 1/2/6/7/10/11.
    mrai_three: Tuple[float, float, float]
    #: Ladder for the dynamic scheme (the per-failure-size optima).
    dynamic_levels: Tuple[float, ...]
    #: Failure sizes for the Fig 3 delay-vs-MRAI curves.
    fig3_fractions: Tuple[float, ...]
    #: Number of ASes in the Fig 13 multi-router topologies.
    multirouter_ases: int

    @property
    def smallest_fraction(self) -> float:
        return self.fractions[0]

    @property
    def largest_fraction(self) -> float:
        return self.fractions[-1]


QUICK = ScaleProfile(
    name="quick",
    nodes=60,
    seeds=(1,),
    fractions=(1.0 / 60.0, 0.05, 0.10, 0.20),
    mrai_grid=(0.25, 0.5, 1.25, 2.25, 3.5),
    mrai_three=(0.5, 1.25, 2.25),
    dynamic_levels=(0.5, 1.25, 2.25),
    fig3_fractions=(1.0 / 60.0, 0.05, 0.10),
    multirouter_ases=48,
)

FULL = ScaleProfile(
    name="full",
    nodes=120,
    seeds=(1, 2, 3),
    fractions=(0.01, 0.025, 0.05, 0.10, 0.15, 0.20),
    mrai_grid=(0.25, 0.5, 0.75, 1.0, 1.25, 1.75, 2.25, 3.0, 4.0),
    mrai_three=(0.5, 1.25, 2.25),
    dynamic_levels=(0.5, 1.25, 2.25),
    fig3_fractions=(0.01, 0.05, 0.10),
    multirouter_ases=60,
)

PROFILES: Dict[str, ScaleProfile] = {"quick": QUICK, "full": FULL}


def resolve_profile(scale: str | None = None) -> ScaleProfile:
    """Profile by name, by ``REPRO_BENCH_SCALE``, or the quick default."""
    if scale is None:
        scale = os.environ.get(SCALE_ENV_VAR, "quick")
    try:
        return PROFILES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose from {sorted(PROFILES)}"
        ) from None


# ---------------------------------------------------------------------------
# Topology factories
# ---------------------------------------------------------------------------
def skewed_factory(
    profile: ScaleProfile, spec: SkewedDegreeSpec | None = None
) -> Callable[[int], Topology]:
    """Factory for the paper's skewed flat topologies at profile scale."""
    the_spec = spec if spec is not None else SkewedDegreeSpec.paper_70_30()

    def build(seed: int) -> Topology:
        return skewed_topology(profile.nodes, the_spec, seed=seed)

    return build


def multirouter_factory(profile: ScaleProfile) -> Callable[[int], Topology]:
    """Factory for the Fig 13 realistic topologies at profile scale."""
    spec = MultiRouterSpec(num_ases=profile.multirouter_ases)

    def build(seed: int) -> Topology:
        return multi_router_topology(spec, seed=seed)

    return build


# ---------------------------------------------------------------------------
# Checks and outputs
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Check:
    """One qualitative claim from the paper, evaluated on our data."""

    name: str
    passed: bool
    detail: str = ""
    #: Strict checks are asserted by the benchmarks; soft ones recorded.
    strict: bool = True

    def __str__(self) -> str:
        mark = "PASS" if self.passed else ("FAIL" if self.strict else "soft-fail")
        strictness = "" if self.strict else " [soft]"
        detail = f" — {self.detail}" if self.detail else ""
        return f"  [{mark}]{strictness} {self.name}{detail}"


@dataclass
class FigureOutput:
    """Everything a reproduced figure yields."""

    figure_id: str
    caption: str
    series: List[Series]
    metrics: Tuple[str, ...]
    checks: List[Check] = field(default_factory=list)
    profile_name: str = "quick"

    @property
    def strict_ok(self) -> bool:
        return all(c.passed for c in self.checks if c.strict)

    def failed_strict(self) -> List[Check]:
        return [c for c in self.checks if c.strict and not c.passed]

    def render(self) -> str:
        body = format_figure(
            self.figure_id, self.caption, self.series, self.metrics
        )
        check_lines = "\n".join(str(c) for c in self.checks)
        footer = f"(scale profile: {self.profile_name})"
        return f"{body}\n\nShape checks:\n{check_lines}\n{footer}"


def check_ratio(
    name: str,
    numerator: float,
    denominator: float,
    minimum: float,
    strict: bool = True,
) -> Check:
    """Check ``numerator / denominator >= minimum``."""
    ratio = numerator / denominator if denominator else float("inf")
    return Check(
        name=name,
        passed=ratio >= minimum,
        detail=f"ratio {ratio:.2f} (needed >= {minimum:g})",
        strict=strict,
    )


def check_le(
    name: str,
    lhs: float,
    rhs: float,
    slack: float = 1.0,
    strict: bool = True,
) -> Check:
    """Check ``lhs <= rhs * slack``."""
    return Check(
        name=name,
        passed=lhs <= rhs * slack,
        detail=f"{lhs:.2f} vs {rhs:.2f} (slack x{slack:g})",
        strict=strict,
    )


# ---------------------------------------------------------------------------
# Shared (memoized) sweeps — several figures reuse the same computation
# ---------------------------------------------------------------------------
def scheme_set_failure_sweep(
    name: str,
    profile: ScaleProfile,
    factory: Callable[[int], Topology] | None = None,
    fractions: Sequence[float] | None = None,
    topology: Topology | None = None,
) -> Tuple[Series, ...]:
    """Failure-size sweep of a registered scheme set, one series per
    scheme, labels taken from the set declaration.

    ``topology`` is only needed for sets with topology-resolved schemes
    (adaptive/theory MRAI, inferred policy relationships).
    """
    factory = factory if factory is not None else skewed_factory(profile)
    specs = scheme_set_specs(name, profile, topology=topology)
    return tuple(
        failure_size_sweep(
            factory,
            spec,
            tuple(fractions) if fractions is not None else profile.fractions,
            profile.seeds,
            label=label,
        )
        for label, spec in specs
    )


@functools.lru_cache(maxsize=None)
def three_mrai_failure_sweep(profile: ScaleProfile) -> Tuple[Series, ...]:
    """Delay+messages vs failure size for the three headline MRAIs.

    Shared by Fig 1 (delay) and Fig 2 (messages); the scheme list is the
    registered ``mrai_three`` set.
    """
    return scheme_set_failure_sweep("mrai_three", profile)


@functools.lru_cache(maxsize=None)
def batching_scheme_sweep(profile: ScaleProfile) -> Tuple[Series, ...]:
    """Delay+messages vs failure size for the Fig 10/11 scheme set."""
    return scheme_set_failure_sweep("batching", profile)


def series_for_mrai_grid(
    profile: ScaleProfile,
    factory: Callable[[int], Topology],
    fraction: float,
    label: str,
    queue_discipline: str = "fifo",
    grid: Sequence[float] | None = None,
) -> Series:
    """One delay-vs-MRAI curve at a fixed failure size."""
    spec = build_spec(
        {"failure_fraction": fraction, "queue": queue_discipline}
    )
    return mrai_sweep(
        factory,
        spec,
        grid if grid is not None else profile.mrai_grid,
        profile.seeds,
        label=label,
    )
