"""The figure-reproduction registry.

One module per figure of the paper (the DSN 2006 paper has 13 figures and
no tables).  Each module exposes ``FIGURE_ID``, ``CAPTION`` and
``compute(profile) -> FigureOutput``; this package maps ids to modules and
offers :func:`compute_figure` / :func:`run_figure`, used by both the CLI
(``repro-bgp sweep --figure fig03``) and the benchmark suite.
"""

from __future__ import annotations

import functools
from types import ModuleType
from typing import Dict, Optional

from repro.figures import (
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    figdp01,
)
from repro.figures.common import (
    FULL,
    PROFILES,
    QUICK,
    Check,
    FigureOutput,
    ScaleProfile,
    resolve_profile,
)

_MODULES = (
    fig01,
    fig02,
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    figdp01,
)

FIGURES: Dict[str, ModuleType] = {m.FIGURE_ID: m for m in _MODULES}


class _AblationModule:
    """Adapter presenting an ablation function with the module interface."""

    def __init__(self, figure_id: str, fn) -> None:
        self.FIGURE_ID = figure_id
        self.CAPTION = f"ablation: {figure_id[3:].replace('_', ' ')}"
        self.compute = fn


def _register_ablations() -> None:
    from repro.figures.ablations import ABLATIONS

    for figure_id, fn in ABLATIONS.items():
        FIGURES[figure_id] = _AblationModule(figure_id, fn)


_register_ablations()


@functools.lru_cache(maxsize=None)
def _compute_cached(figure_id: str, profile: ScaleProfile) -> FigureOutput:
    return FIGURES[figure_id].compute(profile)


def compute_figure(
    figure_id: str, scale: Optional[str] = None
) -> FigureOutput:
    """Compute (with in-process caching) one figure's reproduction."""
    if figure_id not in FIGURES:
        raise KeyError(
            f"unknown figure {figure_id!r}; choose from {sorted(FIGURES)}"
        )
    return _compute_cached(figure_id, resolve_profile(scale))


def run_figure(figure_id: str, scale: Optional[str] = None) -> str:
    """Compute one figure and render its table + shape checks."""
    return compute_figure(figure_id, scale).render()


__all__ = [
    "Check",
    "FIGURES",
    "FULL",
    "FigureOutput",
    "PROFILES",
    "QUICK",
    "ScaleProfile",
    "compute_figure",
    "resolve_profile",
    "run_figure",
]
