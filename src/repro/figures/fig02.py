"""Fig 2 — Number of generated messages for different MRAI values.

Paper claim (Sec 4.1): "For small failures, the number of messages is low
and about the same for all the MRAI values.  The message count for
MRAI=0.5 seconds shoots up as the size of the failure is increased"; the
higher-MRAI counts grow more gradually.
"""

from __future__ import annotations

from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    check_ratio,
    three_mrai_failure_sweep,
)

FIGURE_ID = "fig02"
CAPTION = "Update messages vs failure size (70-30 topology)"


def compute(profile: ScaleProfile) -> FigureOutput:
    series = list(three_mrai_failure_sweep(profile))
    low, __, high = (s for s in series)
    f_small = profile.smallest_fraction
    f_large = profile.largest_fraction

    small_ratio = (
        low.messages_at(f_small) / high.messages_at(f_small)
        if high.messages_at(f_small)
        else float("inf")
    )
    checks = [
        Check(
            "message counts are comparable across MRAIs for the smallest failure",
            small_ratio <= 2.5,
            f"low/high message ratio {small_ratio:.2f}",
        ),
        check_ratio(
            "low-MRAI message count shoots up for the largest failure",
            low.messages_at(f_large),
            high.messages_at(f_large),
            minimum=2.0,
        ),
        Check(
            "message trend mirrors the delay trend (low MRAI grows fastest)",
            low.messages_at(f_large) / low.messages_at(f_small)
            > high.messages_at(f_large) / high.messages_at(f_small),
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("messages",),
        checks=checks,
        profile_name=profile.name,
    )
