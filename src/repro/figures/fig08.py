"""Fig 8 — Effect of upTh on the dynamic scheme (downTh = 0).

Paper claims (Sec 4.3): a low upTh behaves like a constant high MRAI (too
many nodes step up): comparatively high delay for small failures, low for
large ones.  Raising upTh lowers the small-failure delays and raises the
large-failure ones; results are good over a *range* of values (0.65 vs
1.25 "doesn't have a big impact").
"""

from __future__ import annotations

from repro.figures.common import (
    Check,
    FigureOutput,
    ScaleProfile,
    scheme_set_failure_sweep,
)

FIGURE_ID = "fig08"
CAPTION = "Dynamic MRAI: sensitivity to upTh (downTh=0)"

#: Swept values; the scheme list itself is the 'dynamic_up_th' set.
UP_THRESHOLDS = (0.05, 0.65, 1.25)


def compute(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("dynamic_up_th", profile))
    lowest, middle, highest = series
    f_small = profile.smallest_fraction
    f_large = profile.largest_fraction
    checks = [
        Check(
            "low upTh hurts the smallest failures (acts like constant-high)",
            lowest.delay_at(f_small) >= middle.delay_at(f_small) * 0.9,
            f"{lowest.delay_at(f_small):.1f} vs {middle.delay_at(f_small):.1f}",
            strict=False,
        ),
        Check(
            "low upTh helps the largest failures",
            lowest.delay_at(f_large) <= highest.delay_at(f_large) * 1.1,
            f"{lowest.delay_at(f_large):.1f} vs {highest.delay_at(f_large):.1f}",
            strict=False,
        ),
        Check(
            "results are robust over a range of upTh (0.65 vs 1.25 close)",
            middle.delay_at(f_large) <= highest.delay_at(f_large) * 1.75
            and highest.delay_at(f_large) <= middle.delay_at(f_large) * 1.75,
            f"{middle.delay_at(f_large):.1f} vs {highest.delay_at(f_large):.1f}",
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
