"""Fig 6 — Effect of degree-dependent MRAI.

Paper claims (Sec 4.2): with low MRAI (0.5 s) at the 70% low-degree nodes
and high MRAI (2.25 s) at the 30% high-degree nodes, the large-failure
delay is "almost the same as that with a constant MRAI of 2.25 seconds ...
but significantly lower for small failures".  The reversed assignment
behaves like the bad constant-0.5 configuration for large failures —
convergence is governed by the high-degree nodes.
"""

from __future__ import annotations

from repro.figures.common import (
    FigureOutput,
    ScaleProfile,
    check_le,
    check_ratio,
    scheme_set_failure_sweep,
)

FIGURE_ID = "fig06"
CAPTION = "Degree-dependent MRAI vs constants (70-30 topology)"


def compute(profile: ScaleProfile) -> FigureOutput:
    series = list(scheme_set_failure_sweep("degree_mrai", profile))
    const_low, const_high, good, reversed_ = series
    f_small = profile.smallest_fraction
    f_large = profile.largest_fraction
    checks = [
        check_le(
            "degree-dependent (low fast, high slow) tracks constant-high "
            "for the largest failure",
            good.delay_at(f_large),
            const_high.delay_at(f_large),
            slack=1.5,
        ),
        check_le(
            "degree-dependent beats constant-high for the smallest failure",
            good.delay_at(f_small),
            const_high.delay_at(f_small),
        ),
        check_le(
            "degree-dependent beats constant-low for the largest failure",
            good.delay_at(f_large),
            const_low.delay_at(f_large),
        ),
        check_ratio(
            "reversed assignment is bad for the largest failure "
            "(near constant-low)",
            reversed_.delay_at(f_large),
            const_high.delay_at(f_large),
            minimum=1.0,
            strict=False,
        ),
    ]
    return FigureOutput(
        figure_id=FIGURE_ID,
        caption=CAPTION,
        series=series,
        metrics=("delay",),
        checks=checks,
        profile_name=profile.name,
    )
