"""The BGP speaker: protocol engine + update-processing model.

Each router runs one :class:`BGPSpeaker`.  The speaker models what the paper
measures:

* a single update processor with a FIFO (or batched) input queue and
  uniform(1 ms, 30 ms) service times — the overload bottleneck;
* per-peer MRAI timers (per-destination as an option) with RFC-1771 jitter;
  withdrawals bypass the MRAI by default;
* the standard RIB pipeline: store in Adj-RIB-In, run the decision process,
  update Loc-RIB, and schedule (MRAI-governed) advertisements whose content
  is computed *at send time* against Adj-RIB-Out, so superseded changes
  collapse into a single message per peer and no-op updates are suppressed.

Failure handling: ``peer_down`` flushes everything learned from the peer and
re-selects affected destinations; ``fail`` silences the node itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.bgp.config import BGPConfig
from repro.bgp.damping import DampingState
from repro.bgp.messages import Update
from repro.bgp.mrai import MRAIController
from repro.bgp.session import Session, SessionMessage
from repro.bgp.queues import QueueDiscipline, make_queue
from repro.bgp.rib import AdjRibIn, LocRib, run_decision
from repro.bgp.routes import Route, intern_path
from repro.sim.timers import Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.network import BGPNetwork

#: Sentinel distinguishing "never advertised" from "advertised a withdrawal".
_NEVER_SENT = object()


class PeerState:
    """Per-peer session state held by a speaker."""

    __slots__ = (
        "peer_id",
        "asn",
        "delay",
        "ebgp",
        "session_up",
        "timer",
        "dest_timers",
        "pending",
        "pending_cause",
        "adj_rib_out",
    )

    def __init__(self, peer_id: int, asn: int, delay: float, ebgp: bool) -> None:
        self.peer_id = peer_id
        self.asn = asn
        self.delay = delay
        self.ebgp = ebgp
        self.session_up = True
        #: Per-peer MRAI timer (the Internet-prevalent mode).
        self.timer: Optional[Timer] = None
        #: Per-destination timers, populated lazily in that mode.
        self.dest_timers: Dict[int, Timer] = {}
        #: Destinations with a change waiting for the MRAI to expire.
        self.pending: Set[int] = set()
        #: Provenance of pending changes (dest -> cause uid).  Allocated
        #: lazily and only while causal tracing is enabled, so the
        #: untraced path never touches it.
        self.pending_cause: Optional[Dict[int, int]] = None
        #: What was last sent: dest -> path tuple, or None for "withdrawn".
        self.adj_rib_out: Dict[int, Optional[Tuple[int, ...]]] = {}


class BGPSpeaker:
    """One BGP router."""

    def __init__(
        self,
        network: "BGPNetwork",
        node_id: int,
        asn: int,
        config: BGPConfig,
        controller: MRAIController,
    ) -> None:
        self.network = network
        self.sim = network.sim
        self.node_id = node_id
        self.asn = asn
        self.config = config
        self.controller = controller
        self.alive = True

        self.adj_rib_in = AdjRibIn()
        self.loc_rib = LocRib()
        self.own_prefixes: Set[int] = set()
        self.peers: Dict[int, PeerState] = {}

        self.queue: QueueDiscipline = make_queue(
            config.queue_discipline, config.tcp_batch_size
        )
        self._busy = False
        self._busy_since = 0.0
        self._svc_rng = network.sim.rng.get(f"svc/{node_id}")
        self._jitter_rng = network.sim.rng.get(f"jitter/{node_id}")
        # Structured metrics (cached children so the hot path is a None
        # check + method call; all None when observability is off).
        metrics = network.metrics
        if metrics is not None:
            from repro.obs.metrics import (
                DEFAULT_COUNT_BUCKETS,
                DEFAULT_TIME_BUCKETS,
            )

            self._m_processed = metrics.counter(
                "updates_processed", node=node_id
            )
            self._m_queue_depth = metrics.gauge("queue_depth", node=node_id)
            self._m_service = metrics.histogram(
                "update_service_seconds", buckets=DEFAULT_TIME_BUCKETS
            )
            self._m_batch = metrics.histogram(
                "batch_updates", buckets=DEFAULT_COUNT_BUCKETS
            )
        else:
            self._m_processed = None
            self._m_queue_depth = None
            self._m_service = None
            self._m_batch = None
        #: Provenance context: uid of the event whose processing the
        #: speaker is currently inside, stamped onto every update sent
        #: from that context.  Only maintained while causal tracing is
        #: enabled; stays -1 (and costs nothing) otherwise.
        self._cause_uid = -1
        #: Flap-damping penalty per (peer, dest); only populated when the
        #: config enables damping.
        self._damping: Dict[Tuple[int, int], DampingState] = {}
        #: Explicit sessions (per peer), populated only in explicit mode.
        self.sessions: Dict[int, Session] = {}

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_peer(self, peer_id: int, asn: int, delay: float, ebgp: bool) -> None:
        if peer_id in self.peers:
            raise ValueError(f"duplicate peer {peer_id} at node {self.node_id}")
        ps = PeerState(peer_id, asn, delay, ebgp)
        self.peers[peer_id] = ps
        if self.config.session is not None:
            # Explicit mode: sessions start down and must be established.
            ps.session_up = False
            self.sessions[peer_id] = Session(self, peer_id, self.config.session)

    def originate(self, prefix: int) -> None:
        """Start advertising ``prefix`` as locally originated."""
        self.own_prefixes.add(prefix)
        self._reselect(prefix)

    @property
    def degree(self) -> int:
        """Number of configured peers (including iBGP sessions)."""
        return len(self.peers)

    @property
    def busy(self) -> bool:
        return self._busy

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    def unfinished_work(self) -> float:
        """Queue length x mean service time — the dynamic scheme's signal."""
        return len(self.queue) * self.config.mean_processing_delay

    # ------------------------------------------------------------------
    # Receive path / processing model
    # ------------------------------------------------------------------
    def receive(self, msg: Update) -> None:
        """Deliver a message from the wire into the input queue."""
        if not self.alive:
            return
        ps = self.peers.get(msg.sender)
        if ps is None or not ps.session_up:
            self.network.counters.incr("updates_dropped_dead_session")
            return
        self.network.counters.incr("updates_received")
        self.queue.push(msg)
        now = self.sim.now
        self.controller.on_update_received(now)
        self.controller.on_queue_sample(len(self.queue), now)
        if self._m_queue_depth is not None:
            self._m_queue_depth.set(len(self.queue))
        if not self._busy:
            self._begin_service()

    def _begin_service(self) -> None:
        batch, dropped = self.queue.pop_batch()
        if dropped:
            self.network.counters.incr("updates_dropped_stale", dropped)
        lo, hi = self.config.processing_delay_range
        if hi <= 0.0:
            service = 0.0
        elif len(batch) == 1:
            # FIFO (batch size 1) is the common case: skip the generator
            # machinery.  Same single RNG draw, so trajectories match.
            service = self._svc_rng.uniform(lo, hi)
        else:
            service = sum(self._svc_rng.uniform(lo, hi) for __ in batch)
        if self._m_service is not None:
            self._m_service.observe(service)
            self._m_batch.observe(len(batch))
        self._busy = True
        self._busy_since = self.sim.now
        self.sim.schedule(service, self._complete_batch, batch)

    def _complete_batch(self, batch: List[Update]) -> None:
        if not self.alive:
            return
        now = self.sim.now
        self._busy = False
        self.controller.on_busy_interval(self._busy_since, now)
        affected: Set[int] = set()
        if batch:
            self.network.counters.incr("updates_processed", len(batch))
        if self.sim.tracer.enabled:
            # Traced twin of the loop below: remember, per destination,
            # which received update last changed the RIB-In, so the
            # advertisements the reselection emits carry their cause.
            cause_by_dest: Dict[int, int] = {}
            for msg in batch:
                if self._apply_update(msg):
                    affected.add(msg.dest)
                    cause_by_dest[msg.dest] = msg.uid
            for dest in affected:
                self._cause_uid = cause_by_dest[dest]
                self._reselect(dest)
            self._cause_uid = -1
        else:
            for msg in batch:
                if self._apply_update(msg):
                    affected.add(msg.dest)
            for dest in affected:
                self._reselect(dest)
        self.controller.on_queue_sample(len(self.queue), now)
        if self._m_processed is not None:
            self._m_processed.inc(len(batch))
            self._m_queue_depth.set(len(self.queue))
        self.network.note_activity()
        if len(self.queue):
            self._begin_service()

    def _apply_update(self, msg: Update) -> bool:
        """Fold one update into Adj-RIB-In; True when the RIB-In changed."""
        ps = self.peers.get(msg.sender)
        if ps is None or not ps.session_up:
            # The session died while the message sat in the queue.
            self.network.counters.incr("updates_dropped_dead_session")
            return False
        if msg.is_withdrawal:
            changed = self.adj_rib_in.withdraw(msg.dest, msg.sender)
            if changed and ps.ebgp and self.config.damping is not None:
                self._record_flap(ps, msg.dest, withdrawal=True)
            return changed
        assert msg.path is not None
        if ps.ebgp and self.asn in msg.path:
            # Receiver-side AS-path loop detection: infeasible route; any
            # previous route from this peer is implicitly replaced.
            self.network.counters.incr("updates_loop_rejected")
            return self.adj_rib_in.withdraw(msg.dest, msg.sender)
        existing = self.adj_rib_in.get(msg.dest, msg.sender)
        if (
            existing is not None
            and existing.path == msg.path
            and existing.ebgp == ps.ebgp
        ):
            return False
        if ps.ebgp and self.config.damping is not None and existing is not None:
            # RFC 2439: route changes are flaps; the *first* advertisement
            # of a destination carries no penalty.
            self._record_flap(ps, msg.dest, withdrawal=False)
        rank = 0
        if self.config.policy is not None and msg.path:
            # Import policy: rank by preference class; None rejects.  The
            # ranking neighbor AS is the first hop of the AS path — for
            # eBGP that is the sending peer's AS, for iBGP it is the eBGP
            # neighbor the route entered this AS through, so every router
            # of the AS ranks consistently.
            imported = self.config.policy.import_rank(
                self.asn,
                msg.path[0],
                Route(msg.dest, msg.path, msg.sender, ps.ebgp),
            )
            if imported is None:
                self.network.counters.incr("updates_policy_rejected")
                return self.adj_rib_in.withdraw(msg.dest, msg.sender)
            rank = imported
        self.adj_rib_in.store(
            Route(msg.dest, intern_path(msg.path), msg.sender, ps.ebgp, rank=rank)
        )
        return True

    # ------------------------------------------------------------------
    # Route flap damping (RFC 2439)
    # ------------------------------------------------------------------
    def _record_flap(self, ps: PeerState, dest: int, withdrawal: bool) -> None:
        key = (ps.peer_id, dest)
        state = self._damping.get(key)
        if state is None:
            state = DampingState(self.config.damping)
            self._damping[key] = state
        was_suppressed = state.suppressed
        now = self.sim.now
        if withdrawal:
            state.record_withdrawal(now)
        else:
            state.record_readvertisement(now)
        if state.suppressed and not was_suppressed:
            self.network.counters.incr("routes_suppressed")
            delay = state.time_until_reuse(now)
            assert delay is not None
            # Small epsilon so the decayed penalty is strictly below reuse.
            self.sim.schedule(delay + 1e-6, self._reuse_check, ps.peer_id, dest)

    def _reuse_check(self, peer_id: int, dest: int) -> None:
        if not self.alive:
            return
        state = self._damping.get((peer_id, dest))
        if state is None:
            return
        if state.maybe_reuse(self.sim.now):
            self.network.counters.incr("routes_reused")
            self._reselect(dest)
        elif state.suppressed:
            delay = state.time_until_reuse(self.sim.now)
            assert delay is not None
            self.sim.schedule(delay + 1e-6, self._reuse_check, peer_id, dest)

    def _suppressed_peers(self, dest: int) -> Optional[Set[int]]:
        """Peers whose route for ``dest`` is currently damped."""
        if self.config.damping is None or not self._damping:
            return None
        excluded = {
            peer_id
            for (peer_id, d), state in self._damping.items()
            if d == dest and state.suppressed
        }
        return excluded or None

    # ------------------------------------------------------------------
    # Decision + advertisement scheduling
    # ------------------------------------------------------------------
    def _reselect(self, dest: int) -> None:
        old = self.loc_rib.get(dest)
        new = run_decision(
            self.adj_rib_in,
            dest,
            self.own_prefixes,
            excluded_peers=self._suppressed_peers(dest),
        )
        if new is None and old is None:
            return
        if new is not None and new.same_selection(old):
            return
        self.loc_rib.set(dest, new)
        dataplane = self.network.dataplane
        if dataplane is not None:
            dataplane.on_best_route(self.node_id, dest, new, self.sim.now)
        self.network.counters.incr("route_changes")
        if self.sim.tracer.enabled:
            self.sim.tracer.emit(
                self.sim.now,
                "route_change",
                self.node_id,
                dest,
                None if new is None else new.path,
            )
        self.controller.on_destination_changed(dest, self.sim.now)
        self.network.note_activity()
        self._schedule_advertisements(dest)

    def export_route(self, ps: PeerState, dest: int) -> Optional[Tuple[int, ...]]:
        """The path this node would advertise to ``ps`` for ``dest`` now.

        ``None`` means "no advertisement" (withdraw if something was sent
        before).  Encodes eBGP AS-prepending, iBGP non-reflection, and
        optional sender-side loop suppression.
        """
        best = self.loc_rib.get(dest)
        if best is None:
            return None
        if ps.ebgp:
            if (
                self.config.sender_side_loop_detection
                and ps.asn in best.path
            ):
                return None
            if self.config.policy is not None:
                # The first AS on the stored path is the eBGP neighbor the
                # route entered this AS through (None for local origin).
                learned_from = best.path[0] if best.path else None
                if not self.config.policy.export_allowed(
                    self.asn, learned_from, ps.asn
                ):
                    return None
            return intern_path((self.asn,) + best.path)
        # iBGP export: local and eBGP-learned routes only (full-mesh rule:
        # a route learned over iBGP is never re-advertised over iBGP).
        if not best.is_local and not best.ebgp:
            return None
        return best.path

    def _schedule_advertisements(self, dest: int) -> None:
        for ps in self.peers.values():
            if not ps.session_up:
                continue
            export = self.export_route(ps, dest)
            last = ps.adj_rib_out.get(dest, _NEVER_SENT)
            if export == last:
                ps.pending.discard(dest)
                continue
            if export is None:
                if last is _NEVER_SENT:
                    # Nothing was ever advertised: nothing to withdraw.
                    ps.pending.discard(dest)
                    continue
                if not self.config.withdrawal_rate_limiting:
                    # RFC 1771: MinRouteAdvertisementInterval does not
                    # apply to withdrawals.
                    self._send(ps, dest, None)
                    ps.pending.discard(dest)
                    continue
            timer = self._timer_for(ps, dest)
            if timer is not None and timer.running:
                ps.pending.add(dest)
                if self.sim.tracer.enabled:
                    if ps.pending_cause is None:
                        ps.pending_cause = {}
                    ps.pending_cause[dest] = self._cause_uid
            else:
                self._send(ps, dest, export)
                ps.pending.discard(dest)
                # Advertisements always (re)arm the MRAI; withdrawals only
                # do so when withdrawal rate limiting is enabled.
                if export is not None or self.config.withdrawal_rate_limiting:
                    self._start_timer(ps, dest)

    def _timer_for(self, ps: PeerState, dest: int) -> Optional[Timer]:
        """The (existing) MRAI timer governing ``dest`` towards ``ps``."""
        if self.config.per_destination_mrai:
            return ps.dest_timers.get(dest)
        return ps.timer

    def _start_timer(self, ps: PeerState, dest: int) -> None:
        base = self.controller.value()
        if base <= 0.0:
            return
        if self.config.per_destination_mrai:
            timer = ps.dest_timers.get(dest)
            if timer is None:
                timer = Timer(
                    self.sim,
                    self._mrai_expired_dest,
                    ps,
                    dest,
                    jitter=self.config.mrai_jitter,
                    rng=self._jitter_rng,
                )
                ps.dest_timers[dest] = timer
            timer.start(base)
        else:
            if ps.timer is None:
                ps.timer = Timer(
                    self.sim,
                    self._mrai_expired_peer,
                    ps,
                    jitter=self.config.mrai_jitter,
                    rng=self._jitter_rng,
                )
            ps.timer.start(base)

    def _mrai_expired_peer(self, ps: PeerState) -> None:
        if not self.alive or not ps.session_up or not ps.pending:
            return
        tracing = self.sim.tracer.enabled
        restart = False
        for dest in sorted(ps.pending):
            export = self.export_route(ps, dest)
            last = ps.adj_rib_out.get(dest, _NEVER_SENT)
            if export == last:
                continue
            if export is None and last is _NEVER_SENT:
                continue
            if tracing and ps.pending_cause is not None:
                # A deferred send is caused by whatever last marked the
                # destination pending while the timer ran.
                self._cause_uid = ps.pending_cause.get(dest, -1)
            self._send(ps, dest, export)
            if export is not None or self.config.withdrawal_rate_limiting:
                restart = True
        ps.pending.clear()
        if ps.pending_cause is not None:
            ps.pending_cause.clear()
        if tracing:
            self._cause_uid = -1
        if restart:
            self._start_timer(ps, -1)

    def _mrai_expired_dest(self, ps: PeerState, dest: int) -> None:
        if not self.alive or not ps.session_up or dest not in ps.pending:
            return
        ps.pending.discard(dest)
        export = self.export_route(ps, dest)
        last = ps.adj_rib_out.get(dest, _NEVER_SENT)
        if export == last:
            return
        if export is None and last is _NEVER_SENT:
            return
        if self.sim.tracer.enabled and ps.pending_cause is not None:
            self._cause_uid = ps.pending_cause.pop(dest, -1)
            self._send(ps, dest, export)
            self._cause_uid = -1
        else:
            self._send(ps, dest, export)
        if export is not None or self.config.withdrawal_rate_limiting:
            self._start_timer(ps, dest)

    def _send(
        self, ps: PeerState, dest: int, export: Optional[Tuple[int, ...]]
    ) -> None:
        ps.adj_rib_out[dest] = export
        msg = Update(dest, export, self.node_id, self.sim.now)
        tracer = self.sim.tracer
        if tracer.enabled:
            msg.uid = self.network.next_uid()
            msg.cause_uid = self._cause_uid
            tracer.emit(
                self.sim.now,
                "causality",
                self.node_id,
                "send",
                msg.uid,
                msg.cause_uid,
                dest,
                ps.peer_id,
                export,
            )
        self.network.transmit(self.node_id, ps.peer_id, msg, ps.delay)

    # ------------------------------------------------------------------
    # Explicit session management
    # ------------------------------------------------------------------
    def start_sessions(self) -> None:
        """Begin establishing all explicit sessions (explicit mode only)."""
        for session in self.sessions.values():
            session.start()

    def send_session_message(self, peer_id: int, kind: str) -> None:
        ps = self.peers[peer_id]
        self.network.transmit_session(
            self.node_id, peer_id, SessionMessage(kind, self.node_id), ps.delay
        )

    def receive_session(self, msg: SessionMessage) -> None:
        """Session messages are handled out-of-band (no queueing cost)."""
        if not self.alive:
            return
        session = self.sessions.get(msg.sender)
        if session is not None:
            session.handle(msg)

    def session_established(self, peer_id: int) -> None:
        """Callback from the FSM: (re)open the routing exchange."""
        ps = self.peers[peer_id]
        ps.session_up = True
        ps.adj_rib_out.clear()
        ps.pending.clear()
        ps.pending_cause = None
        self.network.counters.incr("sessions_established")
        self.network.note_activity()
        # Full table transfer: advertise everything eligible, then arm the
        # MRAI once for the whole initial burst.
        sent_any = False
        for dest in sorted(self.loc_rib.destinations()):
            export = self.export_route(ps, dest)
            if export is not None:
                self._send(ps, dest, export)
                sent_any = True
        if sent_any:
            self._start_timer(ps, -1)

    # ------------------------------------------------------------------
    # Failure handling
    # ------------------------------------------------------------------
    def peer_down(self, peer_id: int, cause_uid: int = -1) -> None:
        """Tear down the session to ``peer_id`` and re-select routes.

        ``cause_uid`` is the provenance uid of the failure-injection
        event that killed the session (causal tracing only): every
        update the teardown emits is attributed to it.
        """
        ps = self.peers.get(peer_id)
        if ps is None or not ps.session_up:
            return
        ps.session_up = False
        session = self.sessions.get(peer_id)
        if session is not None and session.established:
            # The teardown originated outside the FSM (e.g. an injected
            # failure with implicit detection): bring the FSM along.
            session.force_down()
        if ps.timer is not None:
            ps.timer.stop()
        for timer in ps.dest_timers.values():
            timer.stop()
        ps.dest_timers.clear()
        ps.pending.clear()
        ps.pending_cause = None
        ps.adj_rib_out.clear()
        self.network.counters.incr("sessions_down")
        if self.sim.tracer.enabled:
            self._cause_uid = cause_uid
            self.sim.tracer.emit(
                self.sim.now, "peer_down", self.node_id, peer_id
            )
        for dest in self.adj_rib_in.drop_peer(peer_id):
            if ps.ebgp and self.config.damping is not None:
                # RFC 2439: route loss through a session reset is a
                # withdrawal flap like any other.
                self._record_flap(ps, dest, withdrawal=True)
            self._reselect(dest)
        self._cause_uid = -1
        self.network.note_activity()

    def fail(self) -> None:
        """Take this router out of service entirely."""
        if not self.alive:
            return
        self.alive = False
        self.queue.clear()
        for session in self.sessions.values():
            session.shutdown()
        for ps in self.peers.values():
            ps.session_up = False
            if ps.timer is not None:
                ps.timer.stop()
            for timer in ps.dest_timers.values():
                timer.stop()
            ps.dest_timers.clear()
            ps.pending.clear()
            ps.pending_cause = None

    def revive(self) -> None:
        """Bring a failed router back with a cold control plane.

        RIBs, damping history and queue state are wiped (a rebooted router
        remembers nothing); own prefixes are re-originated.  Session
        re-establishment is the network's job (implicit mode marks both
        ends up and triggers full-table exchanges; explicit mode restarts
        the FSMs).
        """
        if self.alive:
            return
        self.alive = True
        self._busy = False
        self.queue.clear()
        self.adj_rib_in = AdjRibIn()
        self.loc_rib = LocRib()
        self._damping.clear()
        for ps in self.peers.values():
            ps.session_up = False
            ps.pending.clear()
            ps.pending_cause = None
            ps.adj_rib_out.clear()
        for prefix in sorted(self.own_prefixes):
            self._reselect(prefix)

    # ------------------------------------------------------------------
    # Introspection (tests, validation)
    # ------------------------------------------------------------------
    def best_route(self, dest: int) -> Optional[Route]:
        return self.loc_rib.get(dest)

    def has_pending_work(self) -> bool:
        """Anything still in flight at this node?"""
        if self._busy or len(self.queue):
            return True
        return any(
            ps.pending for ps in self.peers.values() if ps.session_up
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BGPSpeaker node={self.node_id} as={self.asn} "
            f"peers={len(self.peers)} routes={len(self.loc_rib)}>"
        )
