"""Explicit BGP session management (OPEN / KEEPALIVE / hold timer).

The paper — like most SSFNet convergence studies — starts from established
sessions and detects failures instantaneously.  This module provides the
*explicit* session mode for experiments that need the full lifecycle:

* a simplified RFC-1771 FSM per session: IDLE -> OPEN_SENT ->
  OPEN_CONFIRM -> ESTABLISHED (the TCP connect dance is collapsed into
  the OPEN exchange; there is no transport model underneath, so CONNECT /
  ACTIVE add nothing);
* KEEPALIVEs every ``keepalive_time``, jittered per RFC 1771;
* a hold timer refreshed by any message from the peer; expiry tears the
  session down and notifies the speaker (``peer_down``) — so failure
  detection *emerges* from silence instead of being injected;
* on reaching ESTABLISHED, the speaker (re)advertises its full table to
  the peer, as a real session reset would.

Session messages are processed out-of-band (no service-time cost): they
are tiny compared to table transfers, and charging them to the update
processor would pollute the overload signal the paper's schemes monitor.

In explicit mode the event queue never drains (keepalives recur), so
convergence is detected by an *activity gap* instead of quiescence — see
:meth:`repro.bgp.network.BGPNetwork.run_until_converged`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.timers import Jitter, Timer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bgp.speaker import BGPSpeaker

# FSM states.
IDLE = "idle"
OPEN_SENT = "open_sent"
OPEN_CONFIRM = "open_confirm"
ESTABLISHED = "established"

# Session message kinds.
OPEN = "open"
KEEPALIVE = "keepalive"
NOTIFICATION = "notification"


class SessionConfig:
    """Timing parameters for explicit sessions.

    RFC 1771 suggests hold 90 s / keepalive 30 s; the defaults here are
    scaled to simulation dynamics (hold 9 s / keepalive 3 s) while keeping
    the RFC's 3:1 ratio.
    """

    __slots__ = ("hold_time", "keepalive_time", "retry_time")

    def __init__(
        self,
        hold_time: float = 9.0,
        keepalive_time: float = 3.0,
        retry_time: float = 2.0,
    ) -> None:
        if hold_time <= 0 or keepalive_time <= 0 or retry_time <= 0:
            raise ValueError("session timers must be positive")
        if keepalive_time >= hold_time:
            raise ValueError("keepalive_time must be below hold_time")
        self.hold_time = hold_time
        self.keepalive_time = keepalive_time
        self.retry_time = retry_time


class SessionMessage:
    """An OPEN / KEEPALIVE / NOTIFICATION on the wire."""

    __slots__ = ("kind", "sender")

    def __init__(self, kind: str, sender: int) -> None:
        self.kind = kind
        self.sender = sender

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SessionMessage {self.kind} from={self.sender}>"


class Session:
    """FSM for one direction's view of a BGP session."""

    __slots__ = (
        "speaker",
        "peer_id",
        "config",
        "state",
        "hold_timer",
        "keepalive_timer",
        "retry_timer",
    )

    def __init__(
        self, speaker: "BGPSpeaker", peer_id: int, config: SessionConfig
    ) -> None:
        self.speaker = speaker
        self.peer_id = peer_id
        self.config = config
        self.state = IDLE
        sim = speaker.sim
        rng = sim.rng.get(f"session/{speaker.node_id}")
        self.hold_timer = Timer(
            sim, self._hold_expired, jitter=Jitter.none()
        )
        self.keepalive_timer = Timer(
            sim, self._keepalive_due, jitter=Jitter(), rng=rng
        )
        self.retry_timer = Timer(
            sim, self._retry, jitter=Jitter(), rng=rng
        )

    # ------------------------------------------------------------------
    @property
    def established(self) -> bool:
        return self.state == ESTABLISHED

    def start(self) -> None:
        """Begin session establishment (IDLE -> OPEN_SENT)."""
        if self.state != IDLE:
            return
        self.state = OPEN_SENT
        self._send(OPEN)
        self.hold_timer.start(self.config.hold_time)

    def handle(self, msg: SessionMessage) -> None:
        """Process a session message from the peer."""
        if not self.speaker.alive:
            return
        if msg.kind == NOTIFICATION:
            self._drop("notification received")
            return
        if self.state == IDLE and msg.kind != OPEN:
            # A stray message from a previous incarnation of the session;
            # only an OPEN may (passively) restart the FSM.
            return
        # Any live message refreshes the hold timer.
        self.hold_timer.start(self.config.hold_time)
        if msg.kind == OPEN:
            if self.state == IDLE:
                # Passive open: answer with our own OPEN, then confirm.
                self.state = OPEN_SENT
                self._send(OPEN)
            if self.state == OPEN_SENT:
                self.state = OPEN_CONFIRM
                self._send(KEEPALIVE)
        elif msg.kind == KEEPALIVE:
            if self.state == OPEN_CONFIRM:
                self._establish()
            elif self.state == OPEN_SENT:
                # Peer confirmed before our OPEN arrived — benign race;
                # treat as confirm.
                self.state = OPEN_CONFIRM
                self._send(KEEPALIVE)

    # ------------------------------------------------------------------
    def _establish(self) -> None:
        self.state = ESTABLISHED
        self.keepalive_timer.start(self.config.keepalive_time)
        self.speaker.session_established(self.peer_id)

    def _keepalive_due(self) -> None:
        if self.state == ESTABLISHED and self.speaker.alive:
            self._send(KEEPALIVE)
            self.keepalive_timer.start(self.config.keepalive_time)

    def _hold_expired(self) -> None:
        self._drop("hold timer expired")

    def _drop(self, reason: str) -> None:
        was_established = self.state == ESTABLISHED
        self.state = IDLE
        self.hold_timer.stop()
        self.keepalive_timer.stop()
        if was_established:
            self.speaker.network.counters.incr("sessions_hold_expired")
            self.speaker.peer_down(self.peer_id)
        if self.speaker.alive:
            # Retry later: the peer may come back (or never — dead peers
            # simply leave us retrying IDLE->OPEN_SENT against silence,
            # which the hold timer times out again).
            self.retry_timer.start(self.config.retry_time)

    def _retry(self) -> None:
        if self.speaker.alive and self.state == IDLE:
            self.start()

    def _send(self, kind: str) -> None:
        self.speaker.send_session_message(self.peer_id, kind)

    def force_down(self) -> None:
        """Administratively drop the session without re-notifying the
        speaker (used when ``peer_down`` originated outside the FSM)."""
        self.state = IDLE
        self.hold_timer.stop()
        self.keepalive_timer.stop()
        if self.speaker.alive:
            self.retry_timer.start(self.config.retry_time)

    def shutdown(self) -> None:
        """Stop all timers (the owning speaker failed)."""
        self.state = IDLE
        self.hold_timer.stop()
        self.keepalive_timer.stop()
        self.retry_timer.stop()
