"""Network assembly: topology + config -> a running BGP system.

:class:`BGPNetwork` instantiates one speaker per router, wires eBGP sessions
along inter-AS links and an iBGP full mesh inside every multi-router AS,
originates one prefix per AS, and provides the run/failure/measurement
surface the experiment layer drives:

* ``start()`` + ``run_until_quiet()`` — initial convergence (warm-up);
* ``fail_nodes(...)`` — kill routers, tear down their sessions at T0;
* ``last_activity`` — timestamp of the most recent routing activity, which
  is what convergence delay is measured from;
* ``counters`` — network-wide message/route accounting.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Set

from repro.bgp.config import BGPConfig
from repro.bgp.messages import Update
from repro.bgp.speaker import BGPSpeaker
from repro.sim.engine import Simulator
from repro.sim.trace import Counter, Tracer
from repro.topology.graph import DEFAULT_LINK_DELAY, Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.dataplane import DataPlaneMonitor
    from repro.obs.metrics import MetricsRegistry


class BGPNetwork:
    """A simulated network of BGP speakers over a :class:`Topology`."""

    def __init__(
        self,
        topology: Topology,
        config: Optional[BGPConfig] = None,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        ibgp_delay: float = DEFAULT_LINK_DELAY,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self.topology = topology
        self.config = config if config is not None else BGPConfig()
        self.sim = Simulator(seed=seed, tracer=tracer)
        #: Optional structured-metrics registry; when present the legacy
        #: counters mirror into it and speakers record gauges/histograms.
        self.metrics = metrics
        self.counters = Counter(registry=metrics)
        if metrics is not None:
            self._g_in_flight = metrics.gauge("updates_in_flight")
        else:
            self._g_in_flight = None
        self.last_activity = 0.0
        self.speakers: Dict[int, BGPSpeaker] = {}
        self._failed: Set[int] = set()
        #: Optional data-plane impact monitor (None = off; the hot path
        #: pays one attribute read + None check per best-route change).
        self.dataplane: Optional["DataPlaneMonitor"] = None
        #: Next provenance uid for causal tracing; advances only while a
        #: real tracer is attached (see :meth:`next_uid`).
        self._next_uid = 0
        #: UPDATE messages currently on the wire (explicit-mode convergence
        #: detection needs this, since the event queue never drains there).
        self._in_flight_updates = 0
        self._build(ibgp_delay)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ibgp_delay: float) -> None:
        topo = self.topology
        for node_id in topo.node_ids():
            router = topo.routers[node_id]
            degree = topo.degree(node_id)
            controller = self.config.mrai_policy.controller_for(
                node_id, degree
            )
            self.speakers[node_id] = BGPSpeaker(
                network=self,
                node_id=node_id,
                asn=router.asn,
                config=self.config,
                controller=controller,
            )
        # eBGP sessions along inter-AS links (and, in flat topologies,
        # every link is inter-AS).
        for link in topo.links:
            as_a = topo.as_of(link.a)
            as_b = topo.as_of(link.b)
            if link.kind == "inter_as" and as_a != as_b:
                self.speakers[link.a].add_peer(
                    link.b, as_b, link.delay, ebgp=True
                )
                self.speakers[link.b].add_peer(
                    link.a, as_a, link.delay, ebgp=True
                )
        # iBGP full mesh inside every multi-router AS.
        for asn in topo.as_numbers():
            members = topo.as_members(asn)
            if len(members) < 2:
                continue
            for a, b in itertools.combinations(members, 2):
                self.speakers[a].add_peer(b, asn, ibgp_delay, ebgp=False)
                self.speakers[b].add_peer(a, asn, ibgp_delay, ebgp=False)

    # ------------------------------------------------------------------
    # Message plane
    # ------------------------------------------------------------------
    def transmit(
        self, sender_id: int, receiver_id: int, msg: Update, delay: float
    ) -> None:
        """Put one update on the wire (called by speakers)."""
        self.counters.incr("updates_sent")
        if msg.is_withdrawal:
            self.counters.incr("withdrawals_sent")
        if self.sim.tracer.enabled:
            self.sim.tracer.emit(
                self.sim.now,
                "withdraw_sent" if msg.is_withdrawal else "update_sent",
                sender_id,
                msg.dest,
                receiver_id,
                msg.path,
            )
        self.note_activity()
        self._in_flight_updates += 1
        if self._g_in_flight is not None:
            self._g_in_flight.set(self._in_flight_updates)
        self.sim.schedule(delay, self._deliver, receiver_id, msg)

    def _deliver(self, receiver_id: int, msg: Update) -> None:
        self._in_flight_updates -= 1
        if self._g_in_flight is not None:
            self._g_in_flight.set(self._in_flight_updates)
        speaker = self.speakers[receiver_id]
        if not speaker.alive:
            self.counters.incr("updates_lost")
            return
        speaker.receive(msg)

    def transmit_session(
        self, sender_id: int, receiver_id: int, msg, delay: float
    ) -> None:
        """Put a session (OPEN/KEEPALIVE/NOTIFICATION) message on the wire."""
        self.counters.incr("session_messages_sent")
        self.sim.schedule(delay, self._deliver_session, receiver_id, msg)

    def _deliver_session(self, receiver_id: int, msg) -> None:
        speaker = self.speakers[receiver_id]
        if speaker.alive:
            speaker.receive_session(msg)

    def note_activity(self) -> None:
        """Record routing activity at the current simulation time."""
        if self.sim.now > self.last_activity:
            self.last_activity = self.sim.now

    def next_uid(self) -> int:
        """Allocate the next provenance uid (causal tracing only).

        Uids are network-global and monotonically increasing, shared
        between UPDATE messages and failure-injection events so a cause
        chain can mix both.
        """
        uid = self._next_uid
        self._next_uid = uid + 1
        return uid

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Originate every AS's prefix at every one of its routers.

        In explicit-session mode this also kicks off session
        establishment; route exchange begins as sessions come up.
        """
        for speaker in self.speakers.values():
            if speaker.alive:
                speaker.originate(speaker.asn)
        if self.config.session is not None:
            for speaker in self.speakers.values():
                if speaker.alive:
                    speaker.start_sessions()

    def run_until_quiet(
        self,
        max_time: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Run the simulation to quiescence; returns the stop time.

        Only meaningful in implicit-session mode — explicit sessions keep
        the event queue alive forever; use :meth:`run_until_converged`.
        """
        return self.sim.run(until=max_time, max_events=max_events)

    def routing_quiet(self) -> bool:
        """No updates in flight and no speaker holding routing work.

        Unlike :meth:`is_quiescent` this ignores session housekeeping
        (keepalive timers), so it works in explicit-session mode.
        """
        if self._in_flight_updates:
            return False
        return not any(s.has_pending_work() for s in self.alive_speakers())

    def run_until_converged(
        self,
        idle_window: float = 2.0,
        max_time: float = 3600.0,
    ) -> float:
        """Run until no routing activity occurs for ``idle_window`` seconds.

        The explicit-session replacement for quiescence detection: returns
        the time of the last routing activity.  ``max_time`` is an
        absolute simulation-time ceiling (a safety net).
        """
        if idle_window <= 0:
            raise ValueError("idle_window must be positive")
        while True:
            horizon = max(self.last_activity, self.sim.now) + idle_window
            if horizon > max_time:
                horizon = max_time
            self.sim.run(until=horizon)
            settled = (
                self.sim.now >= self.last_activity + idle_window
                and self.routing_quiet()
            )
            if settled or self.sim.now >= max_time:
                return self.last_activity
            if self.sim.pending_events == 0:
                # Fully quiescent (implicit mode): nothing more can happen.
                return self.last_activity

    def fail_nodes(
        self,
        node_ids: Iterable[int],
        detection_delay: float = 0.0,
        detection_jitter: float = 0.0,
    ) -> float:
        """Fail ``node_ids`` (and all their sessions) at the current time.

        By default surviving neighbors detect the dead sessions
        immediately — the paper's convergence clock starts at the failure
        instant.  ``detection_delay`` models hold-timer-based detection
        instead: each surviving neighbor notices after
        ``detection_delay + Uniform(0, detection_jitter)`` seconds (BGP
        speakers' hold timers are not synchronized).  In explicit-session
        mode neighbors are not notified at all: their hold timers expire
        on their own once the dead node's keepalives stop.  Returns the
        failure time T0.
        """
        if detection_delay < 0 or detection_jitter < 0:
            raise ValueError("detection delay/jitter must be non-negative")
        t0 = self.sim.now
        failing = sorted(set(node_ids))
        failure_uid = -1
        if self.sim.tracer.enabled:
            # The failure itself is a provenance root: every teardown
            # update the survivors emit chains back to this uid.
            failure_uid = self.next_uid()
            self.sim.tracer.emit(
                t0,
                "causality",
                None,
                "failure",
                failure_uid,
                -1,
                None,
                None,
                tuple(failing),
            )
        failed_now = []
        for node_id in failing:
            speaker = self.speakers[node_id]
            if speaker.alive:
                speaker.fail()
                self._failed.add(node_id)
                failed_now.append(node_id)
        if self.dataplane is not None and failed_now:
            self.dataplane.on_nodes_failed(failed_now, t0)
        if self.config.session is not None:
            # Detection emerges from hold-timer expiry.
            return t0
        detect_rng = self.sim.rng.get("failure-detection")
        for node_id in failing:
            for peer_id in self.speakers[node_id].peers:
                survivor = self.speakers[peer_id]
                if not survivor.alive:
                    continue
                if detection_delay == 0.0 and detection_jitter == 0.0:
                    survivor.peer_down(node_id, failure_uid)
                else:
                    delay = detection_delay + detect_rng.uniform(
                        0.0, detection_jitter
                    )
                    self.sim.schedule(
                        delay, survivor.peer_down, node_id, failure_uid
                    )
        return t0

    def recover_nodes(self, node_ids: Iterable[int]) -> float:
        """Bring failed routers back into service at the current time.

        Control-plane state is cold (see :meth:`BGPSpeaker.revive`).  In
        implicit-session mode, sessions to live neighbors come up
        immediately and both ends exchange full tables; in explicit mode
        the OPEN handshake is restarted and the table exchange follows
        establishment.  Returns the recovery time.
        """
        t0 = self.sim.now
        recovering = sorted(set(node_ids))
        for node_id in recovering:
            speaker = self.speakers[node_id]
            if not speaker.alive:
                # Mark the node alive for the data-plane monitor first:
                # revive() immediately re-originates own prefixes, and
                # those best-route hooks must land on an alive node.
                if self.dataplane is not None:
                    self.dataplane.on_node_recovered(node_id, t0)
                speaker.revive()
                self._failed.discard(node_id)
                self.counters.incr("nodes_recovered")
        for node_id in recovering:
            speaker = self.speakers[node_id]
            for peer_id in speaker.peers:
                neighbor = self.speakers[peer_id]
                if not neighbor.alive:
                    continue
                if self.config.session is not None:
                    speaker.sessions[peer_id].start()
                    neighbor_session = neighbor.sessions[node_id]
                    if not neighbor_session.established:
                        neighbor_session.start()
                else:
                    # Implicit mode: the session is simply up again; both
                    # ends behave as freshly established.
                    speaker.session_established(peer_id)
                    neighbor.session_established(node_id)
        self.note_activity()
        return t0

    def fail_link(self, a: int, b: int) -> float:
        """Fail a single link: both endpoints drop the session."""
        t0 = self.sim.now
        failure_uid = -1
        if self.sim.tracer.enabled:
            failure_uid = self.next_uid()
            self.sim.tracer.emit(
                t0,
                "causality",
                None,
                "link_failure",
                failure_uid,
                -1,
                None,
                None,
                (a, b),
            )
        if self.speakers[a].alive:
            self.speakers[a].peer_down(b, failure_uid)
        if self.speakers[b].alive:
            self.speakers[b].peer_down(a, failure_uid)
        return t0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def failed_nodes(self) -> Set[int]:
        return set(self._failed)

    def alive_speakers(self) -> List[BGPSpeaker]:
        return [s for s in self.speakers.values() if s.alive]

    def alive_prefixes(self) -> Set[int]:
        """Prefixes originated by at least one surviving router."""
        return {s.asn for s in self.speakers.values() if s.alive}

    def is_quiescent(self) -> bool:
        """No pending events and no speaker holding queued work."""
        if self.sim.pending_events:
            return False
        return not any(s.has_pending_work() for s in self.alive_speakers())

    def total_loc_rib_routes(self) -> int:
        return sum(len(s.loc_rib) for s in self.alive_speakers())
