"""Routing Information Bases.

Standard BGP structure:

* **Adj-RIB-In** — per destination, the latest route advertised by each
  peer (one slot per (destination, peer); a newer update from the same peer
  replaces the older one, a withdrawal clears the slot).
* **Loc-RIB** — the selected best route per destination.
* **Adj-RIB-Out** — per peer, what was last *sent* to that peer (a path, or
  ``None`` meaning "explicitly withdrawn").  Used to suppress no-op updates:
  BGP never re-sends an identical advertisement.

Adj-RIB-Out lives inside :class:`~repro.bgp.speaker.PeerState`; this module
holds the shared in/loc structures plus the decision process.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.bgp.routes import Route, local_route


class AdjRibIn:
    """Latest route per (destination, peer).

    Maintains a per-destination *best candidate* cache so the decision
    process does not rescan every peer's advertisement when nothing
    relevant changed.  The cache is invalidated exactly when a mutation
    could change the answer: a stored route either beats the incumbent
    (cache updates in O(1)) or replaces the incumbent's slot (cache entry
    dropped, recomputed lazily); a withdrawal only invalidates when it
    removes the incumbent.  Route preference is a strict total order
    (see :meth:`~repro.bgp.routes.Route.preference_key`), so the cached
    best is independent of iteration order and selection results are
    bit-identical to a full scan.
    """

    __slots__ = ("_table", "_best")

    def __init__(self) -> None:
        # dest -> peer -> Route
        self._table: Dict[int, Dict[int, Route]] = {}
        # dest -> best stored candidate; a missing key means "recompute".
        self._best: Dict[int, Route] = {}

    def store(self, route: Route) -> None:
        """Record ``route`` as peer's current advertisement for its dest."""
        if route.peer is None:
            raise ValueError("Adj-RIB-In only holds peer-learned routes")
        dest = route.dest
        peers = self._table.setdefault(dest, {})
        old = peers.get(route.peer)
        peers[route.peer] = route
        best = self._best.get(dest)
        if best is None:
            return
        if old is best:
            # The incumbent's slot was overwritten: recompute lazily.
            del self._best[dest]
        elif route.better_than(best):
            self._best[dest] = route

    def withdraw(self, dest: int, peer: int) -> bool:
        """Clear peer's slot for ``dest``; returns whether a route existed."""
        peers = self._table.get(dest)
        if peers and peer in peers:
            del peers[peer]
            if not peers:
                del self._table[dest]
            best = self._best.get(dest)
            if best is not None and best.peer == peer:
                del self._best[dest]
            return True
        return False

    def drop_peer(self, peer: int) -> List[int]:
        """Remove every route learned from ``peer``; returns affected dests."""
        affected = [
            dest for dest, peers in self._table.items() if peer in peers
        ]
        for dest in affected:
            self.withdraw(dest, peer)
        return affected

    def candidates(self, dest: int) -> Iterable[Route]:
        return self._table.get(dest, {}).values()

    def best_candidate(self, dest: int) -> Optional[Route]:
        """Best stored candidate for ``dest`` (cached; no exclusions).

        Recomputes with a full scan only when the cache was invalidated
        by a mutation since the last call.
        """
        best = self._best.get(dest)
        if best is not None:
            return best
        for candidate in self._table.get(dest, {}).values():
            if candidate.better_than(best):
                best = candidate
        if best is not None:
            self._best[dest] = best
        return best

    def get(self, dest: int, peer: int) -> Optional[Route]:
        return self._table.get(dest, {}).get(peer)

    def destinations(self) -> Set[int]:
        return set(self._table)

    def route_count(self) -> int:
        """Total number of stored routes (all peers, all destinations)."""
        return sum(len(peers) for peers in self._table.values())


class LocRib:
    """Selected best route per destination."""

    __slots__ = ("_table",)

    def __init__(self) -> None:
        self._table: Dict[int, Route] = {}

    def get(self, dest: int) -> Optional[Route]:
        return self._table.get(dest)

    def set(self, dest: int, route: Optional[Route]) -> None:
        if route is None:
            self._table.pop(dest, None)
        else:
            self._table[dest] = route

    def destinations(self) -> Set[int]:
        return set(self._table)

    def items(self) -> Iterable[Tuple[int, Route]]:
        return self._table.items()

    def __len__(self) -> int:
        return len(self._table)


def run_decision(
    adj_rib_in: AdjRibIn,
    dest: int,
    own_prefixes: Set[int],
    excluded_peers: Optional[Set[int]] = None,
) -> Optional[Route]:
    """The decision process: pick the best candidate for ``dest``.

    Candidates are every peer's current advertisement plus, when ``dest`` is
    one of the node's own prefixes, the locally originated route (which
    always wins by path length).  ``excluded_peers`` removes candidates
    whose advertising peer is currently ineligible (route flap damping
    suppression).  Returns ``None`` when no feasible route exists.
    """
    if excluded_peers:
        # Damping exclusions shrink the candidate set in ways the cache
        # does not model; fall back to the full scan without touching it.
        best: Optional[Route] = None
        if dest in own_prefixes:
            best = local_route(dest)
        for candidate in adj_rib_in.candidates(dest):
            if candidate.peer in excluded_peers:
                continue
            if candidate.better_than(best):
                best = candidate
        return best
    best = adj_rib_in.best_candidate(dest)
    if dest in own_prefixes:
        local = local_route(dest)
        if local.better_than(best):
            return local
    return best
