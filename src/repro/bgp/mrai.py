"""MRAI policies and controllers.

Two layers:

* :class:`MRAIPolicy` — a network-wide *configuration*: given a node (and
  its degree), produce the node's :class:`MRAIController`.  The constant
  policy lives here; the paper's degree-dependent and dynamic schemes are
  policies in :mod:`repro.core` (they are the contribution, the protocol
  layer only defines the interface they plug into).
* :class:`MRAIController` — per-node runtime object the speaker consults
  whenever a per-peer (or per-destination) MRAI timer is *restarted*; the
  paper's dynamic scheme deliberately never modifies running timers
  ("the change takes effect only when the timers are restarted").

Controllers also receive the monitoring signals the paper's dynamic schemes
use: queue-length samples (unfinished work), busy intervals (processor
utilization) and received-update ticks (message counting).
"""

from __future__ import annotations

from typing import Optional


class MRAIController:
    """Per-node runtime MRAI source + overload-monitor hooks."""

    def value(self) -> float:
        """The MRAI (seconds, pre-jitter) to use for the next timer start."""
        raise NotImplementedError

    # Monitoring hooks (no-ops by default) ------------------------------
    def on_queue_sample(self, queue_len: int, now: float) -> None:
        """Called after every enqueue and every batch completion."""

    def on_busy_interval(self, start: float, end: float) -> None:
        """Called when the update processor finishes a busy period."""

    def on_update_received(self, now: float) -> None:
        """Called for every update message accepted into the queue."""

    def on_destination_changed(self, dest: int, now: float) -> None:
        """Called when the Loc-RIB selection for ``dest`` changes."""


class StaticController(MRAIController):
    """A fixed MRAI value."""

    __slots__ = ("_value",)

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError("MRAI must be non-negative")
        self._value = value

    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StaticController({self._value})"


class MRAIPolicy:
    """Factory of per-node controllers; identifies a scheme in reports."""

    #: Human-readable scheme name used in series labels.
    name: str = "mrai"

    def controller_for(self, node_id: int, degree: int) -> MRAIController:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name

    # Policies are compared by configuration so that a spec deserialized
    # from its declarative dict equals the spec it was built from
    # (``spec_from_dict(spec.to_dict()) == spec``).
    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self), getattr(self, "name", "")))


class ConstantMRAI(MRAIPolicy):
    """Every node uses the same MRAI — the Internet's default configuration.

    ``ConstantMRAI(30.0)`` is the RFC-1771 default the paper's earlier study
    used; the experiments here sweep 0.25-4 s.  ``ConstantMRAI(0.0)``
    disables rate limiting entirely (updates sent immediately, no timers).
    """

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError("MRAI must be non-negative")
        self.value = value
        self.name = f"mrai={value:g}s"

    def controller_for(self, node_id: int, degree: int) -> MRAIController:
        return StaticController(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstantMRAI({self.value})"


def effective_mrai(controller: Optional[MRAIController]) -> float:
    """Convenience: a controller's current value, 0.0 when absent."""
    return controller.value() if controller is not None else 0.0
