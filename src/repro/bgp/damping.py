"""Route flap damping (RFC 2439).

The mechanism the operator community actually deployed against update
storms in the paper's era — and the natural comparison point for its
schemes.  Each (peer, destination) slot accumulates a *penalty*:
withdrawals and re-advertisements add fixed amounts, and the penalty
decays exponentially with a configured half-life.  While the penalty
exceeds the *cut* threshold the route is **suppressed**: stored in
Adj-RIB-In but ineligible for selection (and hence never re-advertised);
once the penalty decays below the *reuse* threshold the route becomes
eligible again.

The well-known pathology (Mao et al., SIGCOMM 2002) is that a *single*
failure event triggers path exploration, exploration looks like flapping,
and damping then suppresses perfectly good recovery routes — lengthening
convergence precisely when the paper's schemes shorten it.  The
``ab_flap_damping`` ablation reproduces that comparison.

Defaults follow RFC 2439 / common Cisco practice, with the half-life
scaled down (seconds instead of minutes) to match the simulation's
time scale; pass your own :class:`DampingConfig` for RFC wall-clock
values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class DampingConfig:
    """Flap-damping parameters.

    Penalties are in RFC 2439's customary units (a withdrawal costs 1000).
    """

    #: Penalty half-life in (simulated) seconds.
    half_life: float = 15.0
    #: Suppress the route when the penalty exceeds this.
    cut_threshold: float = 2000.0
    #: Un-suppress when the penalty decays below this.
    reuse_threshold: float = 750.0
    #: Penalty added per withdrawal.
    withdrawal_penalty: float = 1000.0
    #: Penalty added per re-advertisement / attribute change.
    readvertisement_penalty: float = 500.0
    #: Penalty ceiling (RFC 2439's "maximum suppress" equivalent).
    max_penalty: float = 12000.0

    def __post_init__(self) -> None:
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        if not (0 < self.reuse_threshold < self.cut_threshold):
            raise ValueError("need 0 < reuse_threshold < cut_threshold")
        if self.withdrawal_penalty < 0 or self.readvertisement_penalty < 0:
            raise ValueError("penalties must be non-negative")
        if self.max_penalty < self.cut_threshold:
            raise ValueError("max_penalty must be at least cut_threshold")

    @property
    def decay_rate(self) -> float:
        """Exponential decay constant: penalty(t) = p0 * exp(-rate * t)."""
        return math.log(2.0) / self.half_life

    def reuse_delay(self, penalty: float) -> float:
        """Seconds until ``penalty`` decays to the reuse threshold."""
        if penalty <= self.reuse_threshold:
            return 0.0
        return math.log(penalty / self.reuse_threshold) / self.decay_rate


class DampingState:
    """Penalty accumulator for one (peer, destination) slot."""

    __slots__ = ("config", "penalty", "last_update", "suppressed")

    def __init__(self, config: DampingConfig) -> None:
        self.config = config
        self.penalty = 0.0
        self.last_update = 0.0
        self.suppressed = False

    def current_penalty(self, now: float) -> float:
        """Penalty decayed to ``now`` (does not mutate state)."""
        elapsed = max(0.0, now - self.last_update)
        return self.penalty * math.exp(-self.config.decay_rate * elapsed)

    def _decay_to(self, now: float) -> None:
        self.penalty = self.current_penalty(now)
        self.last_update = now

    def record_withdrawal(self, now: float) -> bool:
        """Fold in a withdrawal; returns the new suppressed flag."""
        return self._add(self.config.withdrawal_penalty, now)

    def record_readvertisement(self, now: float) -> bool:
        """Fold in a (re-)advertisement; returns the new suppressed flag."""
        return self._add(self.config.readvertisement_penalty, now)

    def _add(self, amount: float, now: float) -> bool:
        self._decay_to(now)
        self.penalty = min(self.config.max_penalty, self.penalty + amount)
        if self.penalty > self.config.cut_threshold:
            self.suppressed = True
        return self.suppressed

    def maybe_reuse(self, now: float) -> bool:
        """Clear suppression if the penalty has decayed enough.

        Returns True when the route just became reusable.
        """
        if not self.suppressed:
            return False
        if self.current_penalty(now) < self.config.reuse_threshold:
            self._decay_to(now)
            self.suppressed = False
            return True
        return False

    def time_until_reuse(self, now: float) -> Optional[float]:
        """Seconds until reuse, or None when not suppressed."""
        if not self.suppressed:
            return None
        return self.config.reuse_delay(self.current_penalty(now))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "SUPPRESSED" if self.suppressed else "ok"
        return f"<DampingState penalty={self.penalty:.0f} {state}>"
