"""Routes and route comparison.

A :class:`Route` is a candidate entry in a RIB: the destination, the AS path
*as received* (i.e. not including the local AS), which peer advertised it,
and whether it was learned over eBGP.  Locally originated routes have an
empty path and ``peer is None``.

The decision process follows the paper's configuration — "the path length
was the only criterion used for selecting the routes" — with deterministic
tie-breaks so simulations are exactly reproducible:

1. lower import-preference rank wins (always 0 unless a routing policy
   is configured; Gao-Rexford ranks customer < peer < provider);
2. shorter AS path wins;
3. locally originated beats learned;
4. eBGP-learned beats iBGP-learned (standard BGP, relevant only for the
   multi-router topologies);
5. lowest advertising peer id wins.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Canonical instances of AS-path tuples (see :func:`intern_path`).
_PATH_INTERN: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

#: Epoch-reset bound: distinct live paths in any one simulation are far
#: below this, so the table only resets across very long sweep processes.
_PATH_INTERN_MAX = 1 << 18


def intern_path(path: Tuple[int, ...]) -> Tuple[int, ...]:
    """The canonical instance of an AS-path tuple.

    Simulations re-create the same few thousand paths millions of times
    (every UPDATE carries one, every RIB slot stores one).  Interning
    collapses them to one object each, which shrinks resident RIB state
    and makes the hot equality checks (``existing.path == msg.path``,
    ``export == last``) hit CPython's identity fast path.  Purely an
    object-level dedup: values are unchanged, so trajectories stay
    bit-identical.
    """
    cached = _PATH_INTERN.get(path)
    if cached is not None:
        return cached
    if len(_PATH_INTERN) >= _PATH_INTERN_MAX:
        _PATH_INTERN.clear()
    _PATH_INTERN[path] = path
    return path


class Route:
    """A single RIB entry for one destination."""

    __slots__ = ("dest", "path", "peer", "ebgp", "rank", "_key")

    def __init__(
        self,
        dest: int,
        path: Tuple[int, ...],
        peer: Optional[int],
        ebgp: bool = True,
        rank: int = 0,
    ) -> None:
        self.dest = dest
        self.path = path
        self.peer = peer
        self.ebgp = ebgp
        self.rank = rank
        #: Memoized preference key; routes are immutable once built, so
        #: the first comparison computes it and every later one reuses it.
        self._key: Optional[Tuple[int, int, int, int, int]] = None

    @property
    def is_local(self) -> bool:
        """True for a locally originated route."""
        return self.peer is None

    @property
    def path_length(self) -> int:
        return len(self.path)

    def preference_key(self) -> Tuple[int, int, int, int, int]:
        """Sort key: lower is better.  Total order over candidates.

        The last component (advertising peer id) makes the order strict
        over any candidate set — no two distinct candidates for the same
        destination compare equal — so the best route is independent of
        iteration order.
        """
        key = self._key
        if key is None:
            key = self._key = (
                self.rank,
                len(self.path),
                0 if self.peer is None else 1,
                0 if self.ebgp else 1,
                -1 if self.peer is None else self.peer,
            )
        return key

    def better_than(self, other: Optional["Route"]) -> bool:
        """Strictly preferred over ``other`` (``None`` = no route)."""
        if other is None:
            return True
        return self.preference_key() < other.preference_key()

    def same_selection(self, other: Optional["Route"]) -> bool:
        """Whether this and ``other`` denote the identical selection.

        Compares path, advertising peer and session type; used to decide
        whether a decision run actually changed the Loc-RIB.
        """
        if other is None:
            return False
        return (
            self.path == other.path
            and self.peer == other.peer
            and self.ebgp == other.ebgp
        )

    def contains_as(self, asn: int) -> bool:
        """AS-path loop check."""
        return asn in self.path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        src = "local" if self.peer is None else f"peer={self.peer}"
        kind = "eBGP" if self.ebgp else "iBGP"
        return f"<Route dest={self.dest} path={self.path} {src} {kind}>"


def local_route(dest: int) -> Route:
    """The locally originated route for the node's own prefix."""
    return Route(dest=dest, path=(), peer=None, ebgp=True)
