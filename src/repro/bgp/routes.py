"""Routes and route comparison.

A :class:`Route` is a candidate entry in a RIB: the destination, the AS path
*as received* (i.e. not including the local AS), which peer advertised it,
and whether it was learned over eBGP.  Locally originated routes have an
empty path and ``peer is None``.

The decision process follows the paper's configuration — "the path length
was the only criterion used for selecting the routes" — with deterministic
tie-breaks so simulations are exactly reproducible:

1. lower import-preference rank wins (always 0 unless a routing policy
   is configured; Gao-Rexford ranks customer < peer < provider);
2. shorter AS path wins;
3. locally originated beats learned;
4. eBGP-learned beats iBGP-learned (standard BGP, relevant only for the
   multi-router topologies);
5. lowest advertising peer id wins.
"""

from __future__ import annotations

from typing import Optional, Tuple


class Route:
    """A single RIB entry for one destination."""

    __slots__ = ("dest", "path", "peer", "ebgp", "rank")

    def __init__(
        self,
        dest: int,
        path: Tuple[int, ...],
        peer: Optional[int],
        ebgp: bool = True,
        rank: int = 0,
    ) -> None:
        self.dest = dest
        self.path = path
        self.peer = peer
        self.ebgp = ebgp
        self.rank = rank

    @property
    def is_local(self) -> bool:
        """True for a locally originated route."""
        return self.peer is None

    @property
    def path_length(self) -> int:
        return len(self.path)

    def preference_key(self) -> Tuple[int, int, int, int, int]:
        """Sort key: lower is better.  Total order over candidates."""
        return (
            self.rank,
            len(self.path),
            0 if self.peer is None else 1,
            0 if self.ebgp else 1,
            -1 if self.peer is None else self.peer,
        )

    def better_than(self, other: Optional["Route"]) -> bool:
        """Strictly preferred over ``other`` (``None`` = no route)."""
        if other is None:
            return True
        return self.preference_key() < other.preference_key()

    def same_selection(self, other: Optional["Route"]) -> bool:
        """Whether this and ``other`` denote the identical selection.

        Compares path, advertising peer and session type; used to decide
        whether a decision run actually changed the Loc-RIB.
        """
        if other is None:
            return False
        return (
            self.path == other.path
            and self.peer == other.peer
            and self.ebgp == other.ebgp
        )

    def contains_as(self, asn: int) -> bool:
        """AS-path loop check."""
        return asn in self.path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        src = "local" if self.peer is None else f"peer={self.peer}"
        kind = "eBGP" if self.ebgp else "iBGP"
        return f"<Route dest={self.dest} path={self.path} {src} {kind}>"


def local_route(dest: int) -> Route:
    """The locally originated route for the node's own prefix."""
    return Route(dest=dest, path=(), peer=None, ebgp=True)
