"""BGP-4 path-vector protocol implementation (the SSFNet-BGP substitute).

Implements exactly the protocol machinery the paper's experiments exercise:

* UPDATE messages (announcement / withdrawal) at per-destination granularity;
* Adj-RIB-In / Loc-RIB / Adj-RIB-Out with a shortest-AS-path decision process
  and deterministic tie-breaking ("path length was the only criterion");
* per-peer MRAI timers with RFC-1771 jitter, per-destination timers as an
  ablation option, immediate (non-rate-limited) withdrawals;
* a single-server update-processing model with uniform(1 ms, 30 ms) service
  times and a FIFO input queue;
* the paper's batched update processing as an alternative queue discipline,
  plus the "router-style TCP-buffer batch" baseline from Sec 4.4;
* eBGP plus the minimal iBGP (full mesh, no re-advertisement) needed for the
  multi-router-per-AS topologies of Fig 13.
"""

from repro.bgp.config import BGPConfig
from repro.bgp.damping import DampingConfig, DampingState
from repro.bgp.messages import Update
from repro.bgp.mrai import (
    ConstantMRAI,
    MRAIController,
    MRAIPolicy,
    StaticController,
)
from repro.bgp.network import BGPNetwork
from repro.bgp.queues import (
    DestinationBatchQueue,
    FIFOQueue,
    QueueDiscipline,
    TCPBatchQueue,
    make_queue,
)
from repro.bgp.routes import Route
from repro.bgp.speaker import BGPSpeaker, PeerState

__all__ = [
    "BGPConfig",
    "BGPNetwork",
    "BGPSpeaker",
    "ConstantMRAI",
    "DampingConfig",
    "DampingState",
    "DestinationBatchQueue",
    "FIFOQueue",
    "MRAIController",
    "MRAIPolicy",
    "PeerState",
    "QueueDiscipline",
    "Route",
    "StaticController",
    "TCPBatchQueue",
    "Update",
    "make_queue",
]
