"""Update-queue disciplines.

The paper's second contribution (Sec 4.4) is a change to how the update
queue at a router is organized:

* :class:`FIFOQueue` — the BGP default: messages processed strictly in
  arrival order, one decision per message.  This is what generates invalid
  transient advertisements under overload.
* :class:`DestinationBatchQueue` — the paper's scheme: a logical queue per
  destination.  The server drains *all* queued updates for the head
  destination as one batch; within the batch, only the newest update from
  each neighbor is processed, older ones are deleted unprocessed ("we can
  delete multiple update messages from the same neighbor, as the older
  updates are now invalid").
* :class:`TCPBatchQueue` — the "batching carried out in BGP routers today"
  baseline from the end of Sec 4.4: read a fixed-size batch off the FIFO
  and deduplicate (destination, sender) pairs *within that batch only*.
  Effective for small failures, progressively useless for large ones — the
  behaviour the paper predicts.

All disciplines expose the same interface: ``push``, ``pop_batch`` (returns
the retained messages plus the number of stale messages deleted without
processing) and ``__len__`` (queued message count, the signal the dynamic
MRAI controller monitors).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Tuple

from repro.bgp.messages import Update


class QueueDiscipline:
    """Interface for update-queue disciplines."""

    def push(self, msg: Update) -> None:
        raise NotImplementedError

    def pop_batch(self) -> Tuple[List[Update], int]:
        """Next unit of work: (messages to process, stale messages deleted).

        Must only be called when the queue is non-empty.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def clear(self) -> None:
        raise NotImplementedError


class FIFOQueue(QueueDiscipline):
    """Strict arrival-order processing, one message at a time."""

    def __init__(self) -> None:
        self._queue: Deque[Update] = deque()

    def push(self, msg: Update) -> None:
        self._queue.append(msg)

    def pop_batch(self) -> Tuple[List[Update], int]:
        return [self._queue.popleft()], 0

    def __len__(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        self._queue.clear()


class DestinationBatchQueue(QueueDiscipline):
    """The paper's per-destination logical queues.

    Destinations are served in the arrival order of their *oldest* queued
    message (so the scheme is work-conserving and starvation-free); all
    messages for the served destination are drained together.
    """

    def __init__(self) -> None:
        self._order: Deque[int] = deque()
        self._by_dest: Dict[int, List[Update]] = {}
        self._size = 0

    def push(self, msg: Update) -> None:
        bucket = self._by_dest.get(msg.dest)
        if bucket is None:
            self._by_dest[msg.dest] = [msg]
            self._order.append(msg.dest)
        else:
            bucket.append(msg)
        self._size += 1

    def pop_batch(self) -> Tuple[List[Update], int]:
        dest = self._order.popleft()
        bucket = self._by_dest.pop(dest)
        self._size -= len(bucket)
        # Keep only the newest update per sender; buckets are in arrival
        # order, so a later entry supersedes an earlier one from the same
        # neighbor.
        newest: Dict[int, Update] = {}
        for msg in bucket:
            newest[msg.sender] = msg
        if len(newest) == len(bucket):
            return bucket, 0
        retained_set = set(map(id, newest.values()))
        retained = [m for m in bucket if id(m) in retained_set]
        return retained, len(bucket) - len(retained)

    def __len__(self) -> int:
        return self._size

    def clear(self) -> None:
        self._order.clear()
        self._by_dest.clear()
        self._size = 0


class WithdrawalFirstBatchQueue(DestinationBatchQueue):
    """Per-destination batching with bad-news-first scheduling.

    The paper's future work asks for batching "improved further to remove
    conflicting/superfluous updates" — the biggest remaining source of
    superfluous work is a node spending its processor on re-advertisements
    while a queued *withdrawal* would invalidate the very routes being
    re-advertised.  This variant serves destinations whose queued backlog
    contains a withdrawal before destinations with only announcements, so
    bad news (which prunes state and cancels pending work downstream)
    propagates at the head of the line.  Within a destination the batch
    semantics are identical to :class:`DestinationBatchQueue`.
    """

    def __init__(self) -> None:
        super().__init__()
        self._urgent: Deque[int] = deque()
        self._urgent_set: set[int] = set()

    def push(self, msg: Update) -> None:
        super().push(msg)
        if msg.is_withdrawal and msg.dest not in self._urgent_set:
            self._urgent.append(msg.dest)
            self._urgent_set.add(msg.dest)

    def pop_batch(self) -> Tuple[List[Update], int]:
        # Prefer the oldest destination with a queued withdrawal; fall
        # back to plain arrival order.
        while self._urgent:
            dest = self._urgent[0]
            if dest in self._by_dest:
                self._urgent.popleft()
                self._urgent_set.discard(dest)
                self._order.remove(dest)
                self._order.appendleft(dest)
                break
            # The destination was already served via the normal order.
            self._urgent.popleft()
            self._urgent_set.discard(dest)
        return super().pop_batch()

    def clear(self) -> None:
        super().clear()
        self._urgent.clear()
        self._urgent_set.clear()


class TCPBatchQueue(QueueDiscipline):
    """Fixed-size FIFO batches with within-batch deduplication.

    Models today's router practice of reading one TCP buffer per peer and
    processing the collected updates as a batch: duplicates (same
    destination *and* same sender) within one batch collapse to the newest,
    but two updates for the same destination rarely co-occur in a batch when
    many destinations are churning — exactly why the paper expects this
    scheme to fade for large failures.
    """

    def __init__(self, batch_size: int = 8) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = batch_size
        self._queue: Deque[Update] = deque()

    def push(self, msg: Update) -> None:
        self._queue.append(msg)

    def pop_batch(self) -> Tuple[List[Update], int]:
        take = min(self.batch_size, len(self._queue))
        batch = [self._queue.popleft() for __ in range(take)]
        newest: Dict[Tuple[int, int], Update] = {}
        for msg in batch:
            newest[(msg.dest, msg.sender)] = msg
        if len(newest) == len(batch):
            return batch, 0
        retained_set = set(map(id, newest.values()))
        retained = [m for m in batch if id(m) in retained_set]
        return retained, len(batch) - len(retained)

    def __len__(self) -> int:
        return len(self._queue)

    def clear(self) -> None:
        self._queue.clear()


def make_queue(discipline: str, tcp_batch_size: int = 8) -> QueueDiscipline:
    """Factory: ``"fifo"``, ``"dest_batch"``, ``"dest_batch_wf"`` or
    ``"tcp_batch"``."""
    if discipline == "fifo":
        return FIFOQueue()
    if discipline == "dest_batch":
        return DestinationBatchQueue()
    if discipline == "dest_batch_wf":
        return WithdrawalFirstBatchQueue()
    if discipline == "tcp_batch":
        return TCPBatchQueue(tcp_batch_size)
    raise ValueError(f"unknown queue discipline {discipline!r}")
