"""BGP UPDATE messages.

Updates are modeled at per-destination granularity — one message announces
or withdraws exactly one destination — which matches SSFNet's accounting and
the way the paper counts "update messages".  An announcement carries the
sender's full AS path for the destination; a withdrawal carries ``path =
None``.
"""

from __future__ import annotations

from typing import Optional, Tuple


class Update:
    """One BGP UPDATE for one destination.

    Attributes
    ----------
    dest:
        Destination prefix identifier (the originating AS number).
    path:
        AS path as advertised by the sender (the sender's AS first for eBGP
        announcements), or ``None`` for a withdrawal.
    sender:
        Node id of the sending router.
    sent_at:
        Simulation time at which the message was put on the wire; used for
        latency accounting and stale-update bookkeeping in the batching
        scheme.
    uid:
        Provenance identifier, unique and monotonically increasing per
        network, assigned only while causal tracing is enabled; ``-1``
        (untraced) otherwise.
    cause_uid:
        ``uid`` of the received update — or failure-injection event —
        whose processing produced this message; ``-1`` when untraced or
        when the message has no traced cause (e.g. warm-up origination).
    """

    __slots__ = ("dest", "path", "sender", "sent_at", "uid", "cause_uid")

    def __init__(
        self,
        dest: int,
        path: Optional[Tuple[int, ...]],
        sender: int,
        sent_at: float = 0.0,
        uid: int = -1,
        cause_uid: int = -1,
    ) -> None:
        self.dest = dest
        self.path = path
        self.sender = sender
        self.sent_at = sent_at
        self.uid = uid
        self.cause_uid = cause_uid

    @property
    def is_withdrawal(self) -> bool:
        return self.path is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "WITHDRAW" if self.is_withdrawal else f"PATH={self.path}"
        return f"<Update dest={self.dest} from={self.sender} {kind}>"
