"""Routing policies and AS business relationships.

The paper deliberately disables policy: "there were no policy based
restrictions on route advertisements" — path length alone selects routes.
A production BGP substrate still needs the policy layer, both to show what
that simplification ignores (the ``ab_policy_routing`` ablation) and
because convergence work after the paper (e.g. Labovitz's policy paper,
INFOCOM 2001) shows policy changes the path-exploration space.

Implemented:

* :class:`ShortestPathPolicy` — the paper's configuration (accept all,
  export all, no preference classes).  The default; zero overhead.
* :class:`GaoRexfordPolicy` — the canonical commercial-Internet policy:

  - *import*: prefer customer-learned routes over peer-learned over
    provider-learned, before path length;
  - *export* (valley-free): routes learned from a customer go to everyone;
    routes learned from a peer or provider go to customers only.

* :func:`infer_relationships` — degree-based customer/provider/peer
  inference for generated topologies (the larger-degree AS is the
  provider; comparable degrees make peers), after the standard
  Gao-style heuristics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.bgp.routes import Route
from repro.topology.graph import Topology

#: Relationship of a neighbor AS, from the local AS's point of view.
CUSTOMER = "customer"
PEER = "peer"
PROVIDER = "provider"

#: Import-preference ranks; lower is preferred (sorts before path length).
_RANK = {CUSTOMER: 0, PEER: 1, PROVIDER: 2}


class ASRelationships:
    """Directed customer/peer/provider labels for AS adjacencies."""

    def __init__(self) -> None:
        # (a, b) -> relationship of b as seen from a.
        self._rel: Dict[Tuple[int, int], str] = {}

    def set_customer(self, provider: int, customer: int) -> None:
        """Declare ``customer`` to be a customer of ``provider``."""
        if provider == customer:
            raise ValueError("an AS cannot be its own customer")
        self._rel[(provider, customer)] = CUSTOMER
        self._rel[(customer, provider)] = PROVIDER

    def set_peers(self, a: int, b: int) -> None:
        """Declare a settlement-free peering between ``a`` and ``b``."""
        if a == b:
            raise ValueError("an AS cannot peer with itself")
        self._rel[(a, b)] = PEER
        self._rel[(b, a)] = PEER

    def relation(self, local: int, neighbor: int) -> str:
        """``neighbor``'s role from ``local``'s point of view.

        Unlabeled adjacencies default to peering (the least permissive
        symmetric assumption).
        """
        return self._rel.get((local, neighbor), PEER)

    def __len__(self) -> int:
        return len(self._rel) // 2

    def items(self) -> List[Tuple[int, int, str]]:
        """Directed ``(local, neighbor, relation)`` triples, sorted.

        The serialized form used by the declarative spec layer; feed back
        through :meth:`from_items` to reconstruct.
        """
        return sorted((a, b, rel) for (a, b), rel in self._rel.items())

    @classmethod
    def from_items(
        cls, items: Iterable[Tuple[int, int, str]]
    ) -> "ASRelationships":
        """Rebuild from :meth:`items` output (directed triples)."""
        rels = cls()
        for a, b, rel in items:
            if rel not in _RANK:
                raise ValueError(
                    f"unknown relationship {rel!r}; "
                    f"choose from {sorted(_RANK)}"
                )
            rels._rel[(int(a), int(b))] = rel
        return rels

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ASRelationships):
            return NotImplemented
        return self._rel == other._rel

    def __hash__(self) -> int:
        return hash(frozenset(self._rel.items()))


class RoutingPolicy:
    """Import/export policy interface consulted by the speaker."""

    #: Name used in scheme labels.
    name = "policy"

    def import_rank(
        self, local_asn: int, neighbor_asn: int, route: Route
    ) -> Optional[int]:
        """Preference class for an eBGP-learned route; ``None`` rejects it.

        Lower ranks are preferred ahead of path length.
        """
        raise NotImplementedError

    def export_allowed(
        self,
        local_asn: int,
        learned_from_asn: Optional[int],
        to_asn: int,
    ) -> bool:
        """May a route learned from ``learned_from_asn`` (``None`` for
        locally originated) be advertised to ``to_asn``?"""
        raise NotImplementedError

    # Value equality, like MRAIPolicy: two policies with identical
    # configuration compare equal so spec round-trips hold.
    def __eq__(self, other: object) -> bool:
        if type(self) is not type(other):
            return NotImplemented
        return self.__dict__ == other.__dict__

    def __hash__(self) -> int:
        return hash((type(self), self.name))


class ShortestPathPolicy(RoutingPolicy):
    """The paper's configuration: no restrictions, no preference classes."""

    name = "shortest-path"

    def import_rank(
        self, local_asn: int, neighbor_asn: int, route: Route
    ) -> Optional[int]:
        return 0

    def export_allowed(
        self,
        local_asn: int,
        learned_from_asn: Optional[int],
        to_asn: int,
    ) -> bool:
        return True


class GaoRexfordPolicy(RoutingPolicy):
    """Valley-free commercial routing over declared AS relationships."""

    name = "gao-rexford"

    def __init__(self, relationships: ASRelationships) -> None:
        self.relationships = relationships

    def import_rank(
        self, local_asn: int, neighbor_asn: int, route: Route
    ) -> Optional[int]:
        return _RANK[self.relationships.relation(local_asn, neighbor_asn)]

    def export_allowed(
        self,
        local_asn: int,
        learned_from_asn: Optional[int],
        to_asn: int,
    ) -> bool:
        if learned_from_asn is None:
            # Own prefixes are advertised to everyone.
            return True
        learned_rel = self.relationships.relation(local_asn, learned_from_asn)
        if learned_rel == CUSTOMER:
            # Customer routes are revenue: tell the world.
            return True
        # Peer/provider routes only flow downhill, to customers.
        return self.relationships.relation(local_asn, to_asn) == CUSTOMER


def infer_relationships_hierarchical(topology: Topology) -> ASRelationships:
    """Hierarchy-preserving relationship inference.

    Builds a provider tree by BFS from the highest-degree AS (the
    "tier 1"): every AS's BFS parent — and any neighbor strictly closer to
    the root — is a provider; neighbors at equal depth are peers.  Because
    every AS has an all-customer-provider path up to the root and down to
    any other AS, valley-free export retains *full* reachability, which
    makes policied and unrestricted convergence directly comparable (the
    ``ab_policy_routing`` ablation relies on this).
    """
    flat = topology.is_flat()
    if not flat:
        raise ValueError("relationship inference expects a flat topology")
    degrees = {
        asn: topology.inter_as_degree(asn) for asn in topology.as_numbers()
    }
    root = max(degrees, key=lambda a: (degrees[a], -a))
    # BFS depths from the root over the AS graph.
    depth = {root: 0}
    frontier = [root]
    while frontier:
        nxt = []
        for node in frontier:
            for neighbor in topology.neighbors(node):
                if neighbor not in depth:
                    depth[neighbor] = depth[node] + 1
                    nxt.append(neighbor)
        frontier = nxt
    rels = ASRelationships()
    seen = set()
    for link in topology.links:
        a, b = link.a, link.b
        key = (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        if depth[a] < depth[b]:
            rels.set_customer(provider=a, customer=b)
        elif depth[b] < depth[a]:
            rels.set_customer(provider=b, customer=a)
        else:
            rels.set_peers(a, b)
    return rels


def infer_relationships(
    topology: Topology,
    peer_degree_ratio: float = 1.5,
) -> ASRelationships:
    """Degree-heuristic relationship inference for generated topologies.

    For every inter-AS adjacency, the AS with the clearly larger inter-AS
    degree (by more than ``peer_degree_ratio``) becomes the provider;
    comparable degrees make the pair peers.  Ties in the ratio band are
    peers, which keeps the relation graph acyclic enough for valley-free
    routing to retain most of the connectivity.
    """
    if peer_degree_ratio < 1.0:
        raise ValueError("peer_degree_ratio must be >= 1")
    rels = ASRelationships()
    degrees = {asn: topology.inter_as_degree(asn) for asn in topology.as_numbers()}
    seen = set()
    for link in topology.links:
        as_a = topology.as_of(link.a)
        as_b = topology.as_of(link.b)
        if as_a == as_b:
            continue
        key = (min(as_a, as_b), max(as_a, as_b))
        if key in seen:
            continue
        seen.add(key)
        da, db = degrees[as_a], degrees[as_b]
        if da >= db * peer_degree_ratio:
            rels.set_customer(provider=as_a, customer=as_b)
        elif db >= da * peer_degree_ratio:
            rels.set_customer(provider=as_b, customer=as_a)
        else:
            rels.set_peers(as_a, as_b)
    return rels
