"""Protocol configuration.

One :class:`BGPConfig` describes everything about how the speakers behave —
the experiment layer composes these from scheme specifications.  Defaults
follow the paper's setup (Sec 3.2) except for the MRAI value, which the
experiments always set explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.bgp.damping import DampingConfig
from repro.bgp.mrai import ConstantMRAI, MRAIPolicy
from repro.bgp.policy import RoutingPolicy
from repro.bgp.session import SessionConfig
from repro.sim.timers import Jitter

#: The paper's update service times: uniform between 1 and 30 ms (Sec 3.2).
DEFAULT_PROCESSING_RANGE = (0.001, 0.030)


@dataclass
class BGPConfig:
    """Behavioural configuration shared by all speakers in a network.

    Parameters
    ----------
    mrai_policy:
        Assigns each node its MRAI controller (constant / degree-dependent /
        dynamic).  Default: the RFC-1771 30 s constant.
    processing_delay_range:
        Uniform service-time range per processed update, in seconds.
        ``(0.0, 0.0)`` disables the processing model entirely (the
        configuration of the authors' *earlier* study, kept for ablations).
    queue_discipline:
        ``"fifo"`` (BGP default), ``"dest_batch"`` (the paper's batching
        scheme), ``"dest_batch_wf"`` (the withdrawal-first refinement of
        it, from the paper's future work) or ``"tcp_batch"`` (router-style
        fixed-size batches).
    tcp_batch_size:
        Batch size for the ``"tcp_batch"`` discipline.
    withdrawal_rate_limiting:
        When False (RFC 1771 default, used by the paper) withdrawals bypass
        the MRAI and are sent immediately.
    sender_side_loop_detection:
        Skip advertising a path to a peer whose AS already appears in it
        (the receiver would reject it anyway).  Saves messages without
        changing convergence outcomes.
    per_destination_mrai:
        Use one MRAI timer per (peer, destination) instead of per peer.
        The paper notes per-peer "is more prevalent in the Internet today";
        the per-destination variant is provided for the ablation bench.
    mrai_jitter:
        Timer jitter; the RFC-1771 "reduction of up to 25%" by default.
    damping:
        Optional RFC-2439 route flap damping applied to eBGP-learned
        routes.  The paper does not use damping; it is provided as the
        deployed-practice comparison scheme (see the ``ab_flap_damping``
        ablation).
    """

    mrai_policy: MRAIPolicy = field(default_factory=lambda: ConstantMRAI(30.0))
    processing_delay_range: Tuple[float, float] = DEFAULT_PROCESSING_RANGE
    queue_discipline: str = "fifo"
    tcp_batch_size: int = 8
    withdrawal_rate_limiting: bool = False
    sender_side_loop_detection: bool = True
    per_destination_mrai: bool = False
    mrai_jitter: Jitter = field(default_factory=Jitter)
    damping: Optional[DampingConfig] = None
    #: Optional routing policy (import ranking + export filtering).  None
    #: reproduces the paper's "no policy based restrictions" setting.
    policy: Optional[RoutingPolicy] = None
    #: Optional explicit session management (OPEN/KEEPALIVE/hold timers).
    #: None reproduces the paper's implicit always-established sessions
    #: with instantaneous failure detection.  With explicit sessions the
    #: network never quiesces (keepalives recur) — measure convergence
    #: with :meth:`BGPNetwork.run_until_converged`.
    session: Optional[SessionConfig] = None

    def __post_init__(self) -> None:
        lo, hi = self.processing_delay_range
        if lo < 0 or hi < lo:
            raise ValueError(
                f"bad processing delay range {self.processing_delay_range}"
            )
        if self.queue_discipline not in (
            "fifo",
            "dest_batch",
            "dest_batch_wf",
            "tcp_batch",
        ):
            raise ValueError(
                f"unknown queue discipline {self.queue_discipline!r}"
            )
        if self.tcp_batch_size < 1:
            raise ValueError("tcp_batch_size must be >= 1")

    @property
    def mean_processing_delay(self) -> float:
        """Mean per-update service time; the dynamic scheme's multiplier."""
        lo, hi = self.processing_delay_range
        return (lo + hi) / 2.0

    @property
    def models_processing(self) -> bool:
        return self.processing_delay_range[1] > 0.0
