"""Result analysis and reporting.

Turns :class:`~repro.core.sweep.Series` objects into the text tables the
benchmark harness prints — the same rows/series the paper's figures plot —
plus small helpers for shape assertions (V-shape detection, crossover
location) used by the benchmark suite and EXPERIMENTS.md.
"""

from repro.analysis.convergence import (
    ConvergenceTimeline,
    PathHistory,
    analyze_trace,
    analyze_trace_file,
    render_report,
)
from repro.analysis.dataplane import (
    DataPlaneTimeline,
    PairStats,
    analyze_dataplane,
    analyze_dataplane_file,
    load_dataplane_trials,
    render_dataplane_report,
)
from repro.analysis.report import (
    format_figure,
    format_series_table,
    series_to_rows,
)
from repro.analysis.export import (
    save_series,
    series_to_csv,
    series_to_json,
    series_to_records,
)
from repro.analysis.shapes import (
    crossover_point,
    is_v_shaped,
    monotone_increasing,
    optimal_x,
)
from repro.analysis.timeseries import Probe, Sample, sparkline

__all__ = [
    "ConvergenceTimeline",
    "DataPlaneTimeline",
    "PairStats",
    "PathHistory",
    "Probe",
    "Sample",
    "analyze_dataplane",
    "analyze_dataplane_file",
    "analyze_trace",
    "analyze_trace_file",
    "crossover_point",
    "load_dataplane_trials",
    "render_dataplane_report",
    "format_figure",
    "format_series_table",
    "is_v_shaped",
    "monotone_increasing",
    "optimal_x",
    "render_report",
    "save_series",
    "series_to_csv",
    "series_to_json",
    "series_to_records",
    "series_to_rows",
    "sparkline",
]
