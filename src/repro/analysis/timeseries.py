"""Convergence-timeline instrumentation.

The paper's arguments are about *mechanisms*: queues build up at
high-degree nodes, invalid routes circulate until superseded, the dynamic
scheme's MRAI levels climb and fall.  A :class:`Probe` samples a running
network at a fixed interval and exposes those time series, so examples and
analyses can show the mechanism, not just the end-to-end delay.

Sampling is pure observation: the probe schedules its own events but never
touches protocol state, and it detaches automatically once the network is
quiescent (so it does not keep the simulation alive forever).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bgp.network import BGPNetwork
from repro.core.dynamic_mrai import DynamicController
from repro.core.validation import count_invalid_routes


@dataclass(frozen=True)
class Sample:
    """One snapshot of network-wide convergence state."""

    time: float
    total_queued: int
    max_queue: int
    max_queue_node: Optional[int]
    busy_nodes: int
    updates_sent: int
    invalid_routes: int
    #: Histogram of dynamic-MRAI ladder levels, level -> node count
    #: (empty when no dynamic controllers are present).
    mrai_levels: Dict[int, int] = field(default_factory=dict)


class Probe:
    """Periodic sampler attached to a :class:`BGPNetwork`.

    Parameters
    ----------
    network:
        The network to observe.
    interval:
        Sampling period in simulated seconds.
    track_invalid_routes:
        Whether to compute the invalid-route count per sample (walks every
        Loc-RIB; cheap at experiment scale, disable for very large runs).

    Usage::

        probe = Probe(network, interval=0.25)
        probe.start()
        network.fail_nodes(...)
        network.run_until_quiet()
        timeline = probe.samples
    """

    def __init__(
        self,
        network: BGPNetwork,
        interval: float = 0.25,
        track_invalid_routes: bool = True,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.network = network
        self.interval = interval
        self.track_invalid_routes = track_invalid_routes
        self.samples: List[Sample] = []
        self._armed = False

    def start(self) -> None:
        """Begin sampling: a baseline snapshot now, then periodic samples.

        The first periodic sample is scheduled unconditionally so a probe
        can be armed while the network is momentarily quiet (e.g. between
        warm-up and failure injection) without detaching prematurely.
        """
        if self._armed:
            return
        self._armed = True
        self.samples.append(self._snapshot())
        self.network.sim.schedule(self.interval, self._take_sample)

    def stop(self) -> None:
        """Stop after the current pending sample (idempotent)."""
        self._armed = False

    # ------------------------------------------------------------------
    def _take_sample(self) -> None:
        if not self._armed:
            return
        net = self.network
        self.samples.append(self._snapshot())
        # Detach at quiescence: once nothing else is scheduled, sampling
        # again would only observe the same silence forever.
        if net.sim.pending_events == 0 and net.is_quiescent():
            self._armed = False
            return
        net.sim.schedule(self.interval, self._take_sample)

    def _snapshot(self) -> Sample:
        net = self.network
        total = 0
        worst = 0
        worst_node: Optional[int] = None
        busy = 0
        levels: Dict[int, int] = {}
        for speaker in net.alive_speakers():
            qlen = speaker.queue_length
            total += qlen
            if qlen > worst:
                worst = qlen
                worst_node = speaker.node_id
            if speaker.busy:
                busy += 1
            controller = speaker.controller
            if isinstance(controller, DynamicController):
                levels[controller.level] = levels.get(controller.level, 0) + 1
        invalid = (
            count_invalid_routes(net) if self.track_invalid_routes else 0
        )
        return Sample(
            time=net.sim.now,
            total_queued=total,
            max_queue=worst,
            max_queue_node=worst_node,
            busy_nodes=busy,
            updates_sent=net.counters["updates_sent"],
            invalid_routes=invalid,
            mrai_levels=levels,
        )

    # ------------------------------------------------------------------
    # Derived series
    # ------------------------------------------------------------------
    def series(self, attr: str) -> List[float]:
        """One attribute across all samples, e.g. ``series("max_queue")``."""
        return [getattr(s, attr) for s in self.samples]

    def peak(self, attr: str) -> float:
        values = self.series(attr)
        return max(values) if values else 0.0

    def time_to_drain(self, attr: str = "total_queued") -> Optional[float]:
        """Time from the first nonzero sample of ``attr`` back to zero."""
        first_nonzero = None
        for sample in self.samples:
            value = getattr(sample, attr)
            if first_nonzero is None and value > 0:
                first_nonzero = sample.time
            elif first_nonzero is not None and value == 0:
                return sample.time - first_nonzero
        return None


def sparkline(values: List[float], width: int = 60) -> str:
    """Render a series as a one-line unicode sparkline (for examples)."""
    if not values:
        return ""
    blocks = " ▁▂▃▄▅▆▇█"
    if len(values) > width:
        # Downsample by taking the max of each bucket (peaks matter here).
        bucket = len(values) / width
        values = [
            max(values[int(i * bucket) : max(int(i * bucket) + 1, int((i + 1) * bucket))])
            for i in range(width)
        ]
    top = max(values) or 1.0
    return "".join(blocks[min(8, int(v / top * 8))] for v in values)
