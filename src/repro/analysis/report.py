"""Text rendering of sweep results.

The benchmark for each figure prints one of these tables; EXPERIMENTS.md
records them next to the paper's reported behaviour.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.core.sweep import Series


def series_to_rows(
    series_list: Sequence[Series],
    metric: str = "delay",
) -> Tuple[List[str], List[List[str]]]:
    """Tabulate several series over the union of their x values.

    Returns (header, rows); the first column is the swept parameter, one
    column per series.  ``metric`` is ``"delay"`` (seconds),
    ``"messages"``, or ``"unreachable"`` (data-plane node-seconds).
    """
    accessors = {
        "delay": (Series.delay_at, "{:.2f}"),
        "messages": (Series.messages_at, "{:.0f}"),
        "unreachable": (Series.unreachable_at, "{:.2f}"),
    }
    if metric not in accessors:
        raise ValueError(f"unknown metric {metric!r}")
    value_at, fmt_value = accessors[metric]
    xs = sorted({x for s in series_list for x in s.xs})
    header = [series_list[0].x_name if series_list else "x"]
    header += [s.label for s in series_list]
    rows: List[List[str]] = []
    for x in xs:
        row = [f"{x:g}"]
        for s in series_list:
            try:
                row.append(fmt_value.format(value_at(s, x)))
            except KeyError:
                row.append("-")
        rows.append(row)
    return header, rows


def format_series_table(
    series_list: Sequence[Series],
    metric: str = "delay",
    title: str = "",
) -> str:
    """A fixed-width text table for one metric across series."""
    header, rows = series_to_rows(series_list, metric)
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]

    def fmt(cells: Iterable[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(header))
    lines.append(fmt("-" * w for w in widths))
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def format_figure(
    figure_id: str,
    caption: str,
    series_list: Sequence[Series],
    metrics: Sequence[str] = ("delay",),
) -> str:
    """Full text block for one reproduced figure."""
    blocks = [f"=== {figure_id}: {caption} ==="]
    unit = {
        "delay": "convergence delay (s)",
        "messages": "update messages",
        "unreachable": "unreachable node-seconds",
    }
    for metric in metrics:
        blocks.append(
            format_series_table(series_list, metric, title=f"[{unit[metric]}]")
        )
    return "\n\n".join(blocks)
