"""Convergence analytics: path exploration and per-destination settling.

Path exploration is the canonical mechanism behind BGP convergence delay:
after a failure each router walks through a sequence of progressively worse
transient AS paths before settling on its final route (or on unreachable).
The trace already records every best-route change (``route_change``
records) and, with causal tracing on, every sent update; this module turns
those into the explanatory numbers the paper's delay curves hide:

* per ``(node, dest)``: how many *distinct* AS paths the node adopted
  between failure injection and quiescence (the exploration count);
* per destination: when it actually converged (the last best-route change
  anywhere in the network — the settle time);
* network-wide: p50/p95/max settle times and an exploration histogram.

:func:`analyze_trace` bundles a :class:`ConvergenceTimeline` with a
:class:`~repro.obs.causality.CausalGraph` into the report behind
``repro-bgp trace analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.obs.causality import (
    ROOT_KINDS,
    CausalGraph,
    _as_path,
    _record_fields,
    load_trace,
)
from repro.obs.probes import percentile


@dataclass
class PathHistory:
    """Best-route changes of one ``(node, dest)`` pair after the failure."""

    node: int
    dest: int
    #: ``(time, path)`` per adoption; ``path`` None = became unreachable.
    changes: List[Tuple[float, Optional[Tuple[int, ...]]]] = field(
        default_factory=list
    )

    @property
    def distinct_paths(self) -> int:
        """Distinct non-null AS paths adopted (the exploration count)."""
        return len({p for _, p in self.changes if p is not None})

    @property
    def change_count(self) -> int:
        return len(self.changes)

    @property
    def settle_time(self) -> float:
        """Time of the last best-route change (absolute sim time)."""
        return self.changes[-1][0] if self.changes else 0.0

    @property
    def final_path(self) -> Optional[Tuple[int, ...]]:
        return self.changes[-1][1] if self.changes else None


class ConvergenceTimeline:
    """Every post-failure best-route change, organized for analysis.

    Parameters
    ----------
    histories:
        One :class:`PathHistory` per ``(node, dest)`` pair that changed.
    t0:
        The failure-injection time all settle times are measured from.
    """

    def __init__(
        self, histories: Iterable[PathHistory], t0: float = 0.0
    ) -> None:
        self.t0 = t0
        self.histories: Dict[Tuple[int, int], PathHistory] = {
            (h.node, h.dest): h for h in histories
        }

    @classmethod
    def from_records(
        cls,
        records: Iterable[Any],
        t0: Optional[float] = None,
    ) -> "ConvergenceTimeline":
        """Build from a trace stream (records or JSONL dicts).

        ``t0`` defaults to the first failure-injection causality record
        in the trace; with no such record every change counts (t0 = 0),
        which makes warm-up-only traces analyzable too.
        """
        changes: List[Tuple[float, int, int, Optional[Tuple[int, ...]]]] = []
        detected_t0: Optional[float] = None
        for record in records:
            time, category, node, detail = _record_fields(record)
            if category == "route_change":
                dest, path = detail
                changes.append((time, node, dest, _as_path(path)))
            elif (
                category == "causality"
                and detail[0] in ROOT_KINDS
                and detected_t0 is None
            ):
                detected_t0 = time
        if t0 is None:
            t0 = detected_t0 if detected_t0 is not None else 0.0
        histories: Dict[Tuple[int, int], PathHistory] = {}
        for time, node, dest, path in changes:
            if time < t0:
                continue
            key = (node, dest)
            history = histories.get(key)
            if history is None:
                history = PathHistory(node, dest)
                histories[key] = history
            history.changes.append((time, path))
        return cls(histories.values(), t0=t0)

    @classmethod
    def from_jsonl(
        cls, path: Union[str, Any], t0: Optional[float] = None
    ) -> "ConvergenceTimeline":
        return cls.from_records(load_trace(path), t0=t0)

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.histories)

    def exploration(self, node: int, dest: int) -> int:
        history = self.histories.get((node, dest))
        return history.distinct_paths if history is not None else 0

    def total_paths_explored(self) -> int:
        """Sum of distinct paths adopted over all ``(node, dest)`` pairs."""
        return sum(h.distinct_paths for h in self.histories.values())

    def exploration_histogram(self) -> Dict[int, int]:
        """distinct-path count -> number of ``(node, dest)`` pairs."""
        histogram: Dict[int, int] = {}
        for history in self.histories.values():
            count = history.distinct_paths
            histogram[count] = histogram.get(count, 0) + 1
        return dict(sorted(histogram.items()))

    def max_exploration(self) -> int:
        return max(
            (h.distinct_paths for h in self.histories.values()), default=0
        )

    # ------------------------------------------------------------------
    # Settling
    # ------------------------------------------------------------------
    def settle_times(self) -> Dict[int, float]:
        """Per destination: seconds from t0 until its last change anywhere."""
        settles: Dict[int, float] = {}
        for history in self.histories.values():
            delta = history.settle_time - self.t0
            if delta > settles.get(history.dest, -1.0):
                settles[history.dest] = delta
        return settles

    def destination_timeline(self) -> List[Tuple[int, float]]:
        """Destinations in settling order: ``(dest, settle_seconds)``."""
        return sorted(self.settle_times().items(), key=lambda kv: kv[1])

    def settle_stats(self) -> Dict[str, float]:
        values = list(self.settle_times().values())
        return {
            "p50": percentile(values, 0.50),
            "p95": percentile(values, 0.95),
            "max": max(values, default=0.0),
        }

    # ------------------------------------------------------------------
    # Roll-up
    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """JSON-ready exploration + settling headline numbers."""
        pairs = len(self.histories)
        total = self.total_paths_explored()
        return {
            "t0": self.t0,
            "pairs_changed": pairs,
            "destinations": len(self.settle_times()),
            "route_changes": sum(
                h.change_count for h in self.histories.values()
            ),
            "paths_explored_total": total,
            "paths_explored_mean": round(total / pairs, 3) if pairs else 0.0,
            "paths_explored_max": self.max_exploration(),
            "exploration_histogram": self.exploration_histogram(),
            "settle": self.settle_stats(),
        }


# ----------------------------------------------------------------------
# The ``trace analyze`` report
# ----------------------------------------------------------------------
def analyze_trace(
    records: Iterable[Any],
    t0: Optional[float] = None,
    top: int = 5,
) -> Dict[str, Any]:
    """The full offline report over one trace: causality + convergence."""
    records = list(records)
    graph = CausalGraph.from_records(records)
    timeline = ConvergenceTimeline.from_records(records, t0=t0)
    report: Dict[str, Any] = {
        "causality": graph.summary(),
        "convergence": timeline.summary(),
    }
    report["causality"]["top_amplifiers"] = [
        {"node": node, "factor": round(factor, 3)}
        for node, factor in graph.top_amplifiers(top)
    ]
    report["causality"]["longest_chains"] = [
        [
            {
                "uid": e.uid,
                "kind": e.kind,
                "node": e.node,
                "dest": e.dest,
                "time": e.time,
            }
            for e in chain
        ]
        for chain in graph.longest_chains(min(top, 3))
    ]
    report["convergence"]["slowest_destinations"] = [
        {"dest": dest, "settle_seconds": round(settle, 6)}
        for dest, settle in timeline.destination_timeline()[-top:][::-1]
    ]
    return report


def analyze_trace_file(
    path: Union[str, Any], t0: Optional[float] = None, top: int = 5
) -> Dict[str, Any]:
    return analyze_trace(load_trace(path), t0=t0, top=top)


def _format_chain(chain: List[Dict[str, Any]]) -> str:
    hops = []
    for entry in chain:
        if entry["kind"] == "send":
            hops.append(f"{entry['node']}->d{entry['dest']}")
        else:
            hops.append(entry["kind"].upper())
    return " => ".join(hops)


def render_report(report: Dict[str, Any]) -> str:
    """The human-readable rendering of an :func:`analyze_trace` report."""
    causal = report["causality"]
    conv = report["convergence"]
    lines = [
        "causal trace analysis",
        "=====================",
        f"events                : {causal['events']} "
        f"({causal['sends']} sends, {causal['withdrawals']} withdrawals)",
        f"roots                 : {causal['roots']} "
        f"({len(causal['failure_roots'])} failure-injection)",
    ]
    for root in causal["failure_roots"]:
        scope = ",".join(str(n) for n in root["scope"])
        lines.append(
            f"  uid={root['uid']} {root['kind']} t={root['time']:.3f} "
            f"scope=[{scope}] cascade={root['cascade']} updates"
        )
    lines.append(f"max chain depth       : {causal['max_chain_depth']}")
    lines.append(
        f"wasted updates        : {causal['wasted_updates']} "
        "(superseded before convergence)"
    )
    if causal["top_amplifiers"]:
        lines.append("top amplifying nodes  :")
        for entry in causal["top_amplifiers"]:
            lines.append(
                f"  node {entry['node']:<5} x{entry['factor']:.2f}"
            )
    if causal["longest_chains"]:
        lines.append("longest causal chains :")
        for chain in causal["longest_chains"]:
            lines.append(f"  [{len(chain) - 1}] {_format_chain(chain)}")
    lines.extend(
        [
            "",
            "convergence timeline",
            "====================",
            f"failure time (t0)     : {conv['t0']:.3f} s",
            f"(node, dest) changed  : {conv['pairs_changed']} "
            f"({conv['route_changes']} best-route changes)",
            f"paths explored        : {conv['paths_explored_total']} total, "
            f"{conv['paths_explored_mean']:.2f} mean, "
            f"{conv['paths_explored_max']} max per (node, dest)",
            "exploration histogram : "
            + ", ".join(
                f"{k}:{v}" for k, v in conv["exploration_histogram"].items()
            ),
            f"settle time           : p50 {conv['settle']['p50']:.3f} s, "
            f"p95 {conv['settle']['p95']:.3f} s, "
            f"max {conv['settle']['max']:.3f} s",
        ]
    )
    if conv["slowest_destinations"]:
        lines.append("slowest destinations  :")
        for entry in conv["slowest_destinations"]:
            lines.append(
                f"  dest {entry['dest']:<5} "
                f"settled +{entry['settle_seconds']:.3f} s"
            )
    return "\n".join(lines)
