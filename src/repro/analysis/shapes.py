"""Curve-shape predicates.

The reproduction targets *shapes*, not absolute numbers (our substrate is a
simulator, not the authors' testbed): V-shaped delay-vs-MRAI curves, optima
that move right with failure size, crossovers between schemes.  These
helpers express those shapes as assertions the benchmark suite can check.
"""

from __future__ import annotations

from typing import Optional, Sequence


def optimal_x(xs: Sequence[float], ys: Sequence[float]) -> float:
    """The x at which y is minimal (first one on ties)."""
    if len(xs) != len(ys) or not xs:
        raise ValueError("xs and ys must be equal-length and non-empty")
    best = min(range(len(xs)), key=lambda i: (ys[i], xs[i]))
    return xs[best]


def is_v_shaped(
    xs: Sequence[float],
    ys: Sequence[float],
    tolerance: float = 0.10,
) -> bool:
    """Does the curve fall to an interiorish minimum and rise after it?

    ``tolerance`` forgives noise: a point may rise above the running
    minimum by up to ``tolerance`` fraction on the way down, and dip below
    the running maximum similarly on the way up.  A curve whose minimum is
    at either extreme endpoint still counts as V-shaped only if both arms
    exist (i.e. it does not — we require an interior minimum).
    """
    if len(xs) != len(ys) or len(xs) < 3:
        raise ValueError("need at least 3 equal-length points")
    order = sorted(range(len(xs)), key=lambda i: xs[i])
    sorted_ys = [ys[i] for i in order]
    min_index = min(range(len(sorted_ys)), key=lambda i: sorted_ys[i])
    if min_index == 0 or min_index == len(sorted_ys) - 1:
        return False
    # Descending arm: no point rises appreciably before the minimum.
    running = sorted_ys[0]
    for y in sorted_ys[1 : min_index + 1]:
        if y > running * (1 + tolerance):
            return False
        running = min(running, y)
    # Ascending arm: no point drops appreciably after the minimum.
    running = sorted_ys[min_index]
    for y in sorted_ys[min_index + 1 :]:
        if y < running * (1 - tolerance):
            return False
        running = max(running, y)
    return True


def monotone_increasing(
    ys: Sequence[float], tolerance: float = 0.10
) -> bool:
    """Approximately non-decreasing (each dip bounded by ``tolerance``)."""
    if not ys:
        raise ValueError("empty sequence")
    running = ys[0]
    for y in ys[1:]:
        if y < running * (1 - tolerance):
            return False
        running = max(running, y)
    return True


def crossover_point(
    xs: Sequence[float],
    ys_a: Sequence[float],
    ys_b: Sequence[float],
) -> Optional[float]:
    """Smallest x at which curve A stops beating curve B (None if never).

    Used for statements like "low MRAI wins for small failures, loses for
    large ones": the crossover is where the sign of (A - B) flips.
    """
    if not (len(xs) == len(ys_a) == len(ys_b)) or not xs:
        raise ValueError("sequences must be equal-length and non-empty")
    order = sorted(range(len(xs)), key=lambda i: xs[i])
    sign: Optional[bool] = None
    for i in order:
        a_wins = ys_a[i] < ys_b[i]
        if sign is None:
            sign = a_wins
        elif a_wins != sign:
            return xs[i]
    return None


def ratio_at(
    xs: Sequence[float],
    ys_num: Sequence[float],
    ys_den: Sequence[float],
    x: float,
) -> float:
    """ys_num / ys_den at a given x (for "factor of 3 or more" claims)."""
    for i, xi in enumerate(xs):
        if xi == x:
            if ys_den[i] == 0:
                raise ZeroDivisionError(f"denominator is zero at x={x}")
            return ys_num[i] / ys_den[i]
    raise KeyError(f"no point at x={x}")
