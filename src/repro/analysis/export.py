"""Machine-readable export of sweep results.

The text tables are for humans; downstream plotting (matplotlib, gnuplot,
a spreadsheet) wants CSV or JSON.  Exports carry both metrics (delay and
message count) plus the trial count and the delay's spread, so error bars
can be drawn from multi-trial runs.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence, Union

from repro.core.sweep import Series


def series_to_records(series_list: Sequence[Series]) -> list[dict]:
    """Flatten series into one record per (series, x) point."""
    records = []
    for series in series_list:
        for point in series.points:
            delay_stats = point.result.delay
            message_stats = point.result.messages
            records.append(
                {
                    "series": series.label,
                    "x_name": series.x_name,
                    "x": point.x,
                    "trials": point.result.n,
                    "delay_mean": delay_stats.mean,
                    "delay_stdev": delay_stats.stdev,
                    "delay_min": delay_stats.minimum,
                    "delay_max": delay_stats.maximum,
                    "messages_mean": message_stats.mean,
                    "messages_stdev": message_stats.stdev,
                }
            )
    return records


CSV_FIELDS = [
    "series",
    "x_name",
    "x",
    "trials",
    "delay_mean",
    "delay_stdev",
    "delay_min",
    "delay_max",
    "messages_mean",
    "messages_stdev",
]


def series_to_csv(series_list: Sequence[Series]) -> str:
    """Render series as CSV text (header + one row per point)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=CSV_FIELDS)
    writer.writeheader()
    for record in series_to_records(series_list):
        writer.writerow(record)
    return buffer.getvalue()


def series_to_json(series_list: Sequence[Series], indent: int = 2) -> str:
    """Render series as a JSON document."""
    return json.dumps(
        {"records": series_to_records(series_list)}, indent=indent
    )


def save_series(
    series_list: Sequence[Series],
    path: Union[str, Path],
) -> None:
    """Write series to ``path``; format chosen by suffix (.csv / .json)."""
    path = Path(path)
    if path.suffix == ".csv":
        path.write_text(series_to_csv(series_list), encoding="utf-8")
    elif path.suffix == ".json":
        path.write_text(series_to_json(series_list) + "\n", encoding="utf-8")
    else:
        raise ValueError(
            f"unknown export format {path.suffix!r}; use .csv or .json"
        )


def figure_to_files(figure_output, directory: Union[str, Path]) -> list[Path]:
    """Export one :class:`FigureOutput` as CSV + JSON + the text render.

    Returns the written paths.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    base = directory / figure_output.figure_id
    written = []
    for suffix, content in (
        (".csv", series_to_csv(figure_output.series)),
        (".json", series_to_json(figure_output.series) + "\n"),
        (".txt", figure_output.render() + "\n"),
    ):
        path = base.with_suffix(suffix)
        path.write_text(content, encoding="utf-8")
        written.append(path)
    return written
