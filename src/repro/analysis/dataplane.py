"""Unavailability timelines from data-plane monitor transitions.

:class:`repro.obs.dataplane.DataPlaneMonitor` emits per-(node, dest)
status transitions; this module turns them into the impact metrics the
convergence literature actually scores schemes by:

* **unreachability** — node-seconds each destination was unreachable
  (loop or blackhole) from alive sources inside the observation window,
  with p50/p95/max across destinations;
* **episodes** — forwarding-loop and blackhole episode counts and total
  durations (an episode is a maximal run of one status on one pair);
* **path stretch** — worst transient path length vs. the
  post-convergence path, for pairs that end the window reachable;
* **permanent damage** — pairs still looping/blackholed at window end
  (e.g. destinations whose only origin died).

``down`` intervals (the *source* node itself is failed) are tracked but
excluded from unreachability totals: a dead router isn't a user whose
packets are being dropped.

The same shapes back three consumers: :meth:`DataPlaneTimeline.headline`
is the flat dict stored on ``TrialResult.dataplane`` (JSON-safe, store
round-trippable), :func:`analyze_dataplane_file` is the offline
``repro-bgp dataplane report`` path over sink JSONL files, and the
figure harness compares schemes on ``unreachable_seconds_total``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.obs.dataplane import BLACKHOLE, DOWN, LOOP, OK
from repro.obs.probes import percentile

__all__ = [
    "DataPlaneTimeline",
    "PairStats",
    "analyze_dataplane",
    "analyze_dataplane_file",
    "load_dataplane_trials",
    "render_dataplane_report",
]

#: Statuses that count as "packets to this destination are being lost".
UNREACHABLE = (LOOP, BLACKHOLE)

#: A status segment: (status, start, stop, hops-or-None).
Segment = Tuple[str, float, float, Optional[int]]


@dataclass
class PairStats:
    """Per-(node, dest) rollup over the observation window."""

    node: int
    dest: int
    unreachable_seconds: float = 0.0
    loop_seconds: float = 0.0
    loop_episodes: int = 0
    blackhole_seconds: float = 0.0
    blackhole_episodes: int = 0
    down_seconds: float = 0.0
    final_status: Optional[str] = None
    final_hops: Optional[int] = None
    max_ok_hops: int = 0

    @property
    def never_recovered(self) -> bool:
        return self.final_status in UNREACHABLE

    @property
    def stretch(self) -> Optional[float]:
        """Worst transient path length / settled path length (>= 1)."""
        if self.final_status != OK or not self.final_hops:
            return None
        return max(1.0, self.max_ok_hops / self.final_hops)


class DataPlaneTimeline:
    """Status segments per pair, clipped to an observation window.

    Build with :meth:`from_transitions` (monitor tuples or sink dicts).
    Transitions at or before ``t0`` establish each pair's initial state;
    segments are clipped to ``[t0, end]`` so warm-up churn never leaks
    into a trial's impact numbers.
    """

    def __init__(
        self,
        events: Dict[Tuple[int, int], List[Tuple[float, str, Optional[int]]]],
        t0: float,
        end: float,
    ) -> None:
        self.t0 = t0
        self.end = max(end, t0)
        self._events = events
        self._stats: Optional[List[PairStats]] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_transitions(
        cls,
        transitions: Iterable[Any],
        t0: float = 0.0,
        end: Optional[float] = None,
    ) -> "DataPlaneTimeline":
        """Build from monitor tuples or ``records()``/JSONL dicts."""
        events: Dict[Tuple[int, int], List[Tuple[float, str, Optional[int]]]]
        events = {}
        max_time = t0
        for item in transitions:
            if isinstance(item, dict):
                t = float(item["time"])
                node = int(item["node"])
                dest = int(item["dest"])
                status = str(item["status"])
                hops = item.get("hops")
            else:
                t, node, dest, status, hops = item
                t = float(t)
            events.setdefault((node, dest), []).append(
                (t, status, None if hops is None else int(hops))
            )
            if t > max_time:
                max_time = t
        if end is None:
            end = max_time
        return cls(events, t0=t0, end=end)

    # ------------------------------------------------------------------
    def pair_segments(self, node: int, dest: int) -> List[Segment]:
        """Status segments for one pair, clipped to ``[t0, end]``."""
        return self._segments(self._events.get((node, dest), []))

    def _segments(
        self, events: Sequence[Tuple[float, str, Optional[int]]]
    ) -> List[Segment]:
        segments: List[Segment] = []
        status: Optional[str] = None
        hops: Optional[int] = None
        start = self.t0
        for t, new_status, new_hops in events:
            if t <= self.t0:
                # Establishes the state already in force at window start.
                status, hops = new_status, new_hops
                continue
            if t >= self.end:
                break
            if status is not None and t > start:
                segments.append((status, start, t, hops))
            status, hops, start = new_status, new_hops, max(t, self.t0)
        if status is not None and self.end > start:
            segments.append((status, start, self.end, hops))
        return segments

    # ------------------------------------------------------------------
    def pair_stats(self) -> List[PairStats]:
        """One :class:`PairStats` per pair with any in-window state."""
        if self._stats is not None:
            return self._stats
        stats: List[PairStats] = []
        for (node, dest) in sorted(self._events):
            events = self._events[(node, dest)]
            segments = self._segments(events)
            # The state in force at window end: the last event at or
            # before ``end``.  Derived from the events, not the last
            # segment, so zero-width windows (a trial that converged
            # instantly) and heals exactly at window end still count.
            final: Optional[Tuple[str, Optional[int]]] = None
            for t, status, hops in events:
                if t <= self.end:
                    final = (status, hops)
                else:
                    break
            if final is None:
                continue
            ps = PairStats(node=node, dest=dest)
            previous_status: Optional[str] = None
            for status, seg_start, seg_stop, hops in segments:
                duration = seg_stop - seg_start
                if status in UNREACHABLE:
                    ps.unreachable_seconds += duration
                if status == LOOP:
                    ps.loop_seconds += duration
                    if previous_status != LOOP:
                        ps.loop_episodes += 1
                elif status == BLACKHOLE:
                    ps.blackhole_seconds += duration
                    if previous_status != BLACKHOLE:
                        ps.blackhole_episodes += 1
                elif status == DOWN:
                    ps.down_seconds += duration
                elif status == OK and hops is not None:
                    ps.max_ok_hops = max(ps.max_ok_hops, hops)
                previous_status = status
            ps.final_status, ps.final_hops = final
            stats.append(ps)
        self._stats = stats
        return stats

    # ------------------------------------------------------------------
    def destination_unreachability(self) -> Dict[int, float]:
        """Unreachable node-seconds summed over sources, per destination."""
        totals: Dict[int, float] = {}
        for ps in self.pair_stats():
            totals.setdefault(ps.dest, 0.0)
            totals[ps.dest] += ps.unreachable_seconds
        return totals

    def worst_destinations(self, top: int = 5) -> List[Dict[str, Any]]:
        """The ``top`` destinations by unreachable node-seconds."""
        totals = self.destination_unreachability()
        ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            {"dest": dest, "unreachable_seconds": round(seconds, 6)}
            for dest, seconds in ranked[:top]
            if seconds > 0.0
        ]

    # ------------------------------------------------------------------
    def headline(self) -> Dict[str, Any]:
        """Flat JSON-safe summary — the ``TrialResult.dataplane`` payload."""
        stats = self.pair_stats()
        per_dest = sorted(self.destination_unreachability().values())
        stretches = [
            ps.stretch for ps in stats if ps.stretch is not None
        ]
        return {
            "pairs": len(stats),
            "destinations": len(self.destination_unreachability()),
            "transitions": sum(len(v) for v in self._events.values()),
            "window_seconds": round(self.end - self.t0, 6),
            "unreachable_seconds_total": round(
                sum(ps.unreachable_seconds for ps in stats), 6
            ),
            "unreachable_dest_p50": round(percentile(per_dest, 0.50), 6),
            "unreachable_dest_p95": round(percentile(per_dest, 0.95), 6),
            "unreachable_dest_max": round(
                max(per_dest, default=0.0), 6
            ),
            "loop_episodes": sum(ps.loop_episodes for ps in stats),
            "loop_seconds": round(
                sum(ps.loop_seconds for ps in stats), 6
            ),
            "blackhole_episodes": sum(
                ps.blackhole_episodes for ps in stats
            ),
            "blackhole_seconds": round(
                sum(ps.blackhole_seconds for ps in stats), 6
            ),
            "down_seconds": round(
                sum(ps.down_seconds for ps in stats), 6
            ),
            "pairs_never_recovered": sum(
                1 for ps in stats if ps.never_recovered
            ),
            "stretch_max": round(max(stretches, default=0.0), 6),
            "stretch_mean": round(
                sum(stretches) / len(stretches) if stretches else 0.0, 6
            ),
        }

    def summary(self, top: int = 5) -> Dict[str, Any]:
        """Nested report shape: headline + worst destinations."""
        report = dict(self.headline())
        report["worst_destinations"] = self.worst_destinations(top)
        return report


# ----------------------------------------------------------------------
# Offline analysis of sink JSONL files
# ----------------------------------------------------------------------
def load_dataplane_trials(
    path: Union[str, Path]
) -> List[Dict[str, Any]]:
    """Split a data-plane sink JSONL file into per-trial record groups.

    ``dataplane_trial`` meta records (written by
    :meth:`ObsSession.finish_dataplane`) delimit trials and carry
    ``t0``/``end``/``trial``/``seed``; a file without them is treated
    as a single anonymous trial.
    """
    path = Path(path)
    trials: List[Dict[str, Any]] = []
    current: Optional[Dict[str, Any]] = None
    with path.open("r", encoding="utf-8") as fh:
        for line_no, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(
                    f"{path}:{line_no}: invalid JSON line: {exc}"
                ) from exc
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_no}: expected an object, got "
                    f"{type(record).__name__}"
                )
            kind = record.get("kind")
            if kind == "dataplane_trial":
                current = {
                    "trial": record.get("trial"),
                    "seed": record.get("seed"),
                    "t0": record.get("t0"),
                    "end": record.get("end"),
                    "transitions": [],
                }
                trials.append(current)
            elif kind == "dataplane":
                if current is None:
                    current = {
                        "trial": None,
                        "seed": None,
                        "t0": None,
                        "end": None,
                        "transitions": [],
                    }
                    trials.append(current)
                current["transitions"].append(record)
            # Unknown kinds are skipped for forward compatibility.
    return trials


def analyze_dataplane(
    trials: Sequence[Dict[str, Any]],
    t0: Optional[float] = None,
    top: int = 5,
) -> Dict[str, Any]:
    """Per-trial summaries + cross-trial aggregate from record groups."""
    per_trial: List[Dict[str, Any]] = []
    for index, trial in enumerate(trials):
        trial_t0 = t0 if t0 is not None else trial.get("t0")
        timeline = DataPlaneTimeline.from_transitions(
            trial["transitions"],
            t0=float(trial_t0) if trial_t0 is not None else 0.0,
            end=(
                float(trial["end"]) if trial.get("end") is not None else None
            ),
        )
        summary = timeline.summary(top)
        summary["trial"] = (
            trial.get("trial") if trial.get("trial") is not None else index
        )
        if trial.get("seed") is not None:
            summary["seed"] = trial["seed"]
        per_trial.append(summary)
    totals = [t["unreachable_seconds_total"] for t in per_trial]
    aggregate = {
        "unreachable_seconds_total": round(sum(totals), 6),
        "unreachable_seconds_mean": round(
            sum(totals) / len(totals) if totals else 0.0, 6
        ),
        "unreachable_seconds_max": round(max(totals, default=0.0), 6),
        "loop_episodes": sum(t["loop_episodes"] for t in per_trial),
        "blackhole_episodes": sum(
            t["blackhole_episodes"] for t in per_trial
        ),
        "pairs_never_recovered": sum(
            t["pairs_never_recovered"] for t in per_trial
        ),
        "stretch_max": round(
            max((t["stretch_max"] for t in per_trial), default=0.0), 6
        ),
    }
    return {
        "trials": len(per_trial),
        "aggregate": aggregate,
        "per_trial": per_trial,
    }


def analyze_dataplane_file(
    path: Union[str, Path],
    t0: Optional[float] = None,
    top: int = 5,
) -> Dict[str, Any]:
    """Load a sink JSONL file and build the full report dict."""
    trials = load_dataplane_trials(path)
    report = analyze_dataplane(trials, t0=t0, top=top)
    report["path"] = str(path)
    return report


def render_dataplane_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`analyze_dataplane_file` output."""
    agg = report["aggregate"]
    lines = [
        f"data-plane impact report: {report['trials']} trial(s)"
        + (f" from {report['path']}" if report.get("path") else ""),
        (
            f"  unreachable node-seconds: total "
            f"{agg['unreachable_seconds_total']:.2f}, mean/trial "
            f"{agg['unreachable_seconds_mean']:.2f}, worst trial "
            f"{agg['unreachable_seconds_max']:.2f}"
        ),
        (
            f"  episodes: {agg['blackhole_episodes']} blackhole, "
            f"{agg['loop_episodes']} loop; "
            f"{agg['pairs_never_recovered']} pair(s) never recovered; "
            f"max stretch {agg['stretch_max']:.2f}x"
        ),
    ]
    for summary in report["per_trial"]:
        label = f"trial {summary['trial']}"
        if summary.get("seed") is not None:
            label += f" (seed {summary['seed']})"
        lines.append(
            f"  {label}: {summary['unreachable_seconds_total']:.2f} "
            f"node-s unreachable over {summary['window_seconds']:.2f} s "
            f"({summary['pairs']} pairs, "
            f"{summary['blackhole_episodes']} blackhole / "
            f"{summary['loop_episodes']} loop episodes, "
            f"per-dest p50/p95/max "
            f"{summary['unreachable_dest_p50']:.2f}/"
            f"{summary['unreachable_dest_p95']:.2f}/"
            f"{summary['unreachable_dest_max']:.2f})"
        )
        for worst in summary.get("worst_destinations", []):
            lines.append(
                f"    dest {worst['dest']}: "
                f"{worst['unreachable_seconds']:.2f} node-s unreachable"
            )
    return "\n".join(lines)
