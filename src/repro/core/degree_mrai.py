"""Degree-dependent MRAI (paper Sec 4.2).

The observation behind the scheme: convergence delay after large failures is
governed by the highest-degree nodes — they receive the most updates and are
the first to overload.  So give *them* a large MRAI and leave the low-degree
majority fast:

    "we can keep the convergence delay for large failures low by using a
    comparatively greater value of MRAI at high degree nodes"

The paper's headline configuration on the 70-30 topology is ``low 0.5 s,
high 2.25 s`` with the high class being the degree-8 nodes; the reversed
assignment (``low 2.25, high 0.5``) is the control shown to perform badly.
"""

from __future__ import annotations

from repro.bgp.mrai import MRAIController, MRAIPolicy, StaticController


class DegreeDependentMRAI(MRAIPolicy):
    """Static MRAI chosen by node degree.

    Parameters
    ----------
    low_value / high_value:
        MRAI (seconds) for nodes below / at-or-above the threshold.
    degree_threshold:
        Smallest degree that counts as "high".  For the paper's 70-30
        topology (low degrees 1-3, high degree 8) anything in 4-8 works;
        the default of 4 matches "about 70% of the ASes were connected to
        less than 4 other ASes".
    """

    def __init__(
        self,
        low_value: float,
        high_value: float,
        degree_threshold: int = 4,
    ) -> None:
        if low_value < 0 or high_value < 0:
            raise ValueError("MRAI values must be non-negative")
        if degree_threshold < 1:
            raise ValueError("degree_threshold must be >= 1")
        self.low_value = low_value
        self.high_value = high_value
        self.degree_threshold = degree_threshold
        self.name = f"degree-mrai(low {low_value:g}, high {high_value:g})"

    def controller_for(self, node_id: int, degree: int) -> MRAIController:
        if degree >= self.degree_threshold:
            return StaticController(self.high_value)
        return StaticController(self.low_value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DegreeDependentMRAI(low={self.low_value}, "
            f"high={self.high_value}, threshold={self.degree_threshold})"
        )
