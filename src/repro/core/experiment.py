"""Convergence experiments: warm-up, failure, measurement, trials.

The measurement protocol mirrors the paper's:

1. build the network, originate every prefix, run to quiescence
   (*warm-up* — the steady state before the failure);
2. inject the failure at T0 (all routers in the scenario die, surviving
   neighbors see their sessions drop immediately);
3. run to quiescence again; the **convergence delay** is the time of the
   last routing activity (update sent/processed or Loc-RIB change) minus
   T0, and the **message count** is the number of UPDATE messages sent
   after T0 — the two quantities plotted in every figure.

``run_trials`` repeats this over several (topology seed, simulation seed)
pairs and aggregates, since individual runs are noisy exactly the way the
paper's were.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional, Sequence, Tuple

from repro.bgp.config import DEFAULT_PROCESSING_RANGE, BGPConfig
from repro.bgp.damping import DampingConfig
from repro.bgp.mrai import ConstantMRAI, MRAIPolicy
from repro.bgp.policy import RoutingPolicy
from repro.bgp.network import BGPNetwork
from repro.core.validation import validate_routing
from repro.failures.scenarios import (
    FailureScenario,
    geographic_failure,
    random_failure,
)
from repro.sim.rng import RandomStreams
from repro.sim.stats import OnlineStats
from repro.topology.graph import Topology


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that defines one convergence experiment except the seed."""

    mrai: MRAIPolicy = field(default_factory=lambda: ConstantMRAI(0.5))
    queue_discipline: str = "fifo"
    tcp_batch_size: int = 8
    failure_fraction: float = 0.05
    failure_kind: str = "geographic"
    failure_center: Optional[Tuple[float, float]] = None
    processing_delay_range: Tuple[float, float] = DEFAULT_PROCESSING_RANGE
    withdrawal_rate_limiting: bool = False
    sender_side_loop_detection: bool = True
    per_destination_mrai: bool = False
    #: Optional RFC-2439 flap damping (the deployed-practice comparison).
    damping: Optional[DampingConfig] = None
    #: Optional routing policy; None = the paper's unrestricted setting.
    #: Note: ``validate=True`` uses the connected-component reachability
    #: oracle, which policies violate by design — validate policy-routed
    #: networks with :func:`repro.core.validation.validate_gao_rexford`.
    policy: Optional[RoutingPolicy] = None
    #: Hold-timer failure detection delay (0 = the paper's instantaneous
    #: detection); jitter staggers neighbors' hold-timer expiries.
    detection_delay: float = 0.0
    detection_jitter: float = 0.0
    #: Hard cap on simulated seconds after the failure (safety net; the
    #: paper's scenarios converge well before this).
    max_convergence_time: float = 3600.0
    #: Hard cap on simulated warm-up seconds.
    max_warmup_time: float = 3600.0
    #: Run the routing validator after warm-up and after convergence.
    validate: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.failure_fraction <= 0.5):
            raise ValueError(
                "failure_fraction must be in (0, 0.5]; the paper restricts "
                "failures to at most 20% of the network"
            )
        if self.failure_kind not in ("geographic", "random"):
            raise ValueError(f"unknown failure kind {self.failure_kind!r}")
        if self.detection_delay < 0 or self.detection_jitter < 0:
            raise ValueError("detection delay/jitter must be non-negative")

    def to_bgp_config(self) -> BGPConfig:
        return BGPConfig(
            mrai_policy=self.mrai,
            processing_delay_range=self.processing_delay_range,
            queue_discipline=self.queue_discipline,
            tcp_batch_size=self.tcp_batch_size,
            withdrawal_rate_limiting=self.withdrawal_rate_limiting,
            sender_side_loop_detection=self.sender_side_loop_detection,
            per_destination_mrai=self.per_destination_mrai,
            damping=self.damping,
            policy=self.policy,
        )

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced (sweep convenience)."""
        return replace(self, **changes)


@dataclass(frozen=True)
class TrialResult:
    """Measurements from a single warm-up + failure + convergence run."""

    convergence_delay: float
    messages_sent: int
    withdrawals_sent: int
    updates_processed: int
    stale_dropped: int
    route_changes: int
    failure_size: int
    failure_time: float
    warmup_time: float
    warmup_messages: int
    events_executed: int
    seed: int
    truncated: bool

    def __str__(self) -> str:
        return (
            f"delay={self.convergence_delay:.2f}s msgs={self.messages_sent} "
            f"(withdrawals {self.withdrawals_sent}, stale-dropped "
            f"{self.stale_dropped}) failed={self.failure_size}"
        )


@dataclass
class ExperimentResult:
    """Aggregate over trials of the same spec."""

    spec: ExperimentSpec
    trials: List[TrialResult] = field(default_factory=list)

    def add(self, trial: TrialResult) -> None:
        self.trials.append(trial)

    @property
    def n(self) -> int:
        return len(self.trials)

    def _stats(self, attr: str) -> OnlineStats:
        stats = OnlineStats()
        stats.extend(getattr(t, attr) for t in self.trials)
        return stats

    @property
    def delay(self) -> OnlineStats:
        return self._stats("convergence_delay")

    @property
    def messages(self) -> OnlineStats:
        return self._stats("messages_sent")

    @property
    def mean_delay(self) -> float:
        return self.delay.mean

    @property
    def mean_messages(self) -> float:
        return self.messages.mean

    def __str__(self) -> str:
        d = self.delay
        m = self.messages
        return (
            f"{self.n} trials: delay {d.mean:.2f}s (+/-{d.stdev:.2f}), "
            f"messages {m.mean:.0f} (+/-{m.stdev:.0f})"
        )


def build_scenario(
    topology: Topology, spec: ExperimentSpec, seed: int
) -> FailureScenario:
    """Derive the failure scenario a spec describes for a topology."""
    if spec.failure_kind == "geographic":
        return geographic_failure(
            topology, spec.failure_fraction, spec.failure_center
        )
    rng = RandomStreams(seed).get("failure-selection")
    return random_failure(topology, spec.failure_fraction, rng)


def run_experiment(
    topology: Topology,
    spec: ExperimentSpec,
    seed: int = 0,
    scenario: Optional[FailureScenario] = None,
) -> TrialResult:
    """One full warm-up + failure + convergence measurement."""
    network = BGPNetwork(topology, spec.to_bgp_config(), seed=seed)
    network.start()
    network.run_until_quiet(max_time=spec.max_warmup_time)
    if not network.is_quiescent():
        raise RuntimeError(
            f"warm-up did not converge within {spec.max_warmup_time}s "
            f"of simulated time"
        )
    warmup_time = network.last_activity
    warmup_snapshot = network.counters.snapshot()
    if spec.validate:
        validate_routing(network)

    if scenario is None:
        scenario = build_scenario(topology, spec, seed)
    t0 = network.fail_nodes(
        scenario.nodes,
        detection_delay=spec.detection_delay,
        detection_jitter=spec.detection_jitter,
    )
    network.run_until_quiet(max_time=t0 + spec.max_convergence_time)
    truncated = not network.is_quiescent()
    if spec.validate and not truncated:
        validate_routing(network)

    diff = network.counters.diff(warmup_snapshot)
    return TrialResult(
        convergence_delay=network.last_activity - t0,
        messages_sent=diff.get("updates_sent", 0),
        withdrawals_sent=diff.get("withdrawals_sent", 0),
        updates_processed=diff.get("updates_processed", 0),
        stale_dropped=diff.get("updates_dropped_stale", 0),
        route_changes=diff.get("route_changes", 0),
        failure_size=scenario.size,
        failure_time=t0,
        warmup_time=warmup_time,
        warmup_messages=warmup_snapshot.get("updates_sent", 0),
        events_executed=network.sim.events_executed,
        seed=seed,
        truncated=truncated,
    )


def run_trials(
    topology_factory: Callable[[int], Topology],
    spec: ExperimentSpec,
    seeds: Sequence[int],
) -> ExperimentResult:
    """Run one trial per seed, each on its own topology instance.

    ``topology_factory(seed)`` lets trials vary the topology realization
    the way the paper's repeated runs did; pass ``lambda s: fixed_topo`` to
    hold the topology constant and vary only the protocol randomness.
    """
    result = ExperimentResult(spec=spec)
    for seed in seeds:
        topology = topology_factory(seed)
        result.add(run_experiment(topology, spec, seed=seed))
    return result
