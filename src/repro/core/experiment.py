"""Convergence experiments: warm-up, failure, measurement, trials.

The measurement protocol mirrors the paper's:

1. build the network, originate every prefix, run to quiescence
   (*warm-up* — the steady state before the failure);
2. inject the failure at T0 (all routers in the scenario die, surviving
   neighbors see their sessions drop immediately);
3. run to quiescence again; the **convergence delay** is the time of the
   last routing activity (update sent/processed or Loc-RIB change) minus
   T0, and the **message count** is the number of UPDATE messages sent
   after T0 — the two quantities plotted in every figure.

``run_trials`` repeats this over several (topology seed, simulation seed)
pairs and aggregates, since individual runs are noisy exactly the way the
paper's were.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.live import default_progress
from repro.obs.session import ObsSession, active_session
from repro.obs.spans import span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.parallel import TrialExecutor
    from repro.store.result_store import ResultStore

from repro.bgp.config import DEFAULT_PROCESSING_RANGE, BGPConfig
from repro.bgp.damping import DampingConfig
from repro.bgp.mrai import ConstantMRAI, MRAIPolicy
from repro.bgp.policy import RoutingPolicy
from repro.bgp.network import BGPNetwork
from repro.core.validation import validate_routing
from repro.failures.scenarios import (
    FailureScenario,
    geographic_failure,
    random_failure,
)
from repro.sim.rng import RandomStreams
from repro.sim.stats import OnlineStats
from repro.topology.graph import Topology


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything that defines one convergence experiment except the seed."""

    mrai: MRAIPolicy = field(default_factory=lambda: ConstantMRAI(0.5))
    queue_discipline: str = "fifo"
    tcp_batch_size: int = 8
    failure_fraction: float = 0.05
    failure_kind: str = "geographic"
    failure_center: Optional[Tuple[float, float]] = None
    processing_delay_range: Tuple[float, float] = DEFAULT_PROCESSING_RANGE
    withdrawal_rate_limiting: bool = False
    sender_side_loop_detection: bool = True
    per_destination_mrai: bool = False
    #: Optional RFC-2439 flap damping (the deployed-practice comparison).
    damping: Optional[DampingConfig] = None
    #: Optional routing policy; None = the paper's unrestricted setting.
    #: Note: ``validate=True`` uses the connected-component reachability
    #: oracle, which policies violate by design — validate policy-routed
    #: networks with :func:`repro.core.validation.validate_gao_rexford`.
    policy: Optional[RoutingPolicy] = None
    #: Hold-timer failure detection delay (0 = the paper's instantaneous
    #: detection); jitter staggers neighbors' hold-timer expiries.
    detection_delay: float = 0.0
    detection_jitter: float = 0.0
    #: Hard cap on simulated seconds after the failure (safety net; the
    #: paper's scenarios converge well before this).
    max_convergence_time: float = 3600.0
    #: Hard cap on simulated warm-up seconds.
    max_warmup_time: float = 3600.0
    #: Run the routing validator after warm-up and after convergence.
    validate: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.failure_fraction <= 0.5):
            raise ValueError(
                "failure_fraction must be in (0, 0.5]; the paper restricts "
                "failures to at most 20% of the network"
            )
        if self.failure_kind not in ("geographic", "random"):
            raise ValueError(f"unknown failure kind {self.failure_kind!r}")
        if self.detection_delay < 0 or self.detection_jitter < 0:
            raise ValueError("detection delay/jitter must be non-negative")

    def to_bgp_config(self) -> BGPConfig:
        return BGPConfig(
            mrai_policy=self.mrai,
            processing_delay_range=self.processing_delay_range,
            queue_discipline=self.queue_discipline,
            tcp_batch_size=self.tcp_batch_size,
            withdrawal_rate_limiting=self.withdrawal_rate_limiting,
            sender_side_loop_detection=self.sender_side_loop_detection,
            per_destination_mrai=self.per_destination_mrai,
            damping=self.damping,
            policy=self.policy,
        )

    def with_(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced (sweep convenience)."""
        return replace(self, **changes)

    def to_dict(self) -> Dict[str, object]:
        """The fully explicit declarative scheme dict for this spec.

        ``repro.specs.spec_from_dict(spec.to_dict()) == spec`` for every
        spec whose policies are registry-serializable; raises
        :class:`repro.specs.SpecSerializationError` otherwise.
        """
        from repro.specs.serialize import spec_to_dict

        return spec_to_dict(self)


@dataclass(frozen=True)
class TrialResult:
    """Measurements from a single warm-up + failure + convergence run."""

    convergence_delay: float
    messages_sent: int
    withdrawals_sent: int
    updates_processed: int
    stale_dropped: int
    route_changes: int
    failure_size: int
    failure_time: float
    warmup_time: float
    warmup_messages: int
    events_executed: int
    seed: int
    truncated: bool
    #: Wall-clock (not simulated) seconds spent in each phase, so BENCH
    #: records can track simulator speed across perf PRs.  Excluded from
    #: equality: two identical simulations differ in host timing noise.
    warmup_wall: float = field(default=0.0, compare=False)
    convergence_wall: float = field(default=0.0, compare=False)
    #: Data-plane impact summary (see
    #: :meth:`repro.analysis.dataplane.DataPlaneTimeline.headline`) when
    #: the trial ran with an ObsSession's monitors on; None otherwise.
    #: Excluded from equality so store-cached results from unmonitored
    #: runs still compare equal to freshly monitored ones (the monitor
    #: is trajectory-neutral, so every compared field is unaffected).
    dataplane: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def __str__(self) -> str:
        return (
            f"delay={self.convergence_delay:.2f}s msgs={self.messages_sent} "
            f"(withdrawals {self.withdrawals_sent}, stale-dropped "
            f"{self.stale_dropped}) failed={self.failure_size}"
        )


#: TrialResult attributes tracked incrementally by ExperimentResult.
_TRACKED_STATS = (
    "convergence_delay",
    "messages_sent",
    "warmup_wall",
    "convergence_wall",
)


@dataclass
class ExperimentResult:
    """Aggregate over trials of the same spec.

    Headline statistics (delay, messages, wall clocks) are maintained as
    :class:`OnlineStats` accumulators folded in :meth:`add`, so two
    results can be combined with :meth:`merge` — via
    :meth:`OnlineStats.merge` — without re-streaming every trial.
    """

    spec: ExperimentSpec
    trials: List[TrialResult] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._acc: Dict[str, OnlineStats] = {
            attr: OnlineStats() for attr in _TRACKED_STATS
        }
        for trial in self.trials:
            self._fold(trial)

    def _fold(self, trial: TrialResult) -> None:
        for attr in _TRACKED_STATS:
            self._acc[attr].add(getattr(trial, attr))

    def add(self, trial: TrialResult) -> None:
        self.trials.append(trial)
        self._fold(trial)

    def merge(self, other: "ExperimentResult") -> "ExperimentResult":
        """A new result covering both trial sets (specs must match)."""
        if self.spec is not other.spec and self.spec != other.spec:
            raise ValueError("cannot merge results of different specs")
        merged = ExperimentResult(spec=self.spec)
        merged.trials = [*self.trials, *other.trials]
        for attr in _TRACKED_STATS:
            merged._acc[attr] = self._acc[attr].merge(other._acc[attr])
        return merged

    @property
    def n(self) -> int:
        return len(self.trials)

    def _stats(self, attr: str) -> OnlineStats:
        """Statistics over any TrialResult attribute.

        Tracked attributes come from the incremental accumulators; others
        are computed on demand.  Treat the returned object as read-only.
        """
        cached = self._acc.get(attr)
        if cached is not None:
            return cached
        stats = OnlineStats()
        stats.extend(getattr(t, attr) for t in self.trials)
        return stats

    @property
    def delay(self) -> OnlineStats:
        return self._stats("convergence_delay")

    @property
    def messages(self) -> OnlineStats:
        return self._stats("messages_sent")

    @property
    def warmup_wall(self) -> OnlineStats:
        return self._stats("warmup_wall")

    @property
    def convergence_wall(self) -> OnlineStats:
        return self._stats("convergence_wall")

    @property
    def mean_delay(self) -> float:
        return self.delay.mean

    @property
    def mean_messages(self) -> float:
        return self.messages.mean

    @property
    def total_wall(self) -> float:
        """Total wall-clock seconds spent simulating these trials."""
        return (
            self._acc["warmup_wall"].mean * self._acc["warmup_wall"].n
            + self._acc["convergence_wall"].mean
            * self._acc["convergence_wall"].n
        )

    def __str__(self) -> str:
        d = self.delay
        m = self.messages
        return (
            f"{self.n} trials: delay {d.mean:.2f}s (+/-{d.stdev:.2f}), "
            f"messages {m.mean:.0f} (+/-{m.stdev:.0f})"
        )


@dataclass(frozen=True)
class Progress:
    """One progress tick of a multi-trial run or sweep."""

    done: int
    total: int
    elapsed: float
    label: str = ""
    #: Cumulative simulation wall seconds of the trials completed so far
    #: (what the workers were actually busy with) — the live monitor's
    #: worker-utilization numerator and wall-time-based ETA input.
    busy_seconds: float = 0.0
    #: Trials that have failed at least one attempt (campaign retries).
    failed: int = 0

    @property
    def fraction(self) -> float:
        return self.done / self.total if self.total else 1.0

    @property
    def eta(self) -> float:
        """Estimated remaining wall-clock seconds (inf before any data)."""
        if self.done == 0:
            return float("inf")
        return self.elapsed / self.done * (self.total - self.done)

    def __str__(self) -> str:
        eta = "?" if self.eta == float("inf") else f"{self.eta:.0f}s"
        label = f" {self.label}" if self.label else ""
        return (
            f"[{self.done}/{self.total}]{label} "
            f"elapsed {self.elapsed:.0f}s eta {eta}"
        )


#: Signature of the optional progress callback.
ProgressFn = Callable[[Progress], None]


def build_scenario(
    topology: Topology, spec: ExperimentSpec, seed: int
) -> FailureScenario:
    """Derive the failure scenario a spec describes for a topology."""
    if spec.failure_kind == "geographic":
        return geographic_failure(
            topology, spec.failure_fraction, spec.failure_center
        )
    rng = RandomStreams(seed).get("failure-selection")
    return random_failure(topology, spec.failure_fraction, rng)


def run_experiment(
    topology: Topology,
    spec: ExperimentSpec,
    seed: int = 0,
    scenario: Optional[FailureScenario] = None,
    obs: Optional[ObsSession] = None,
) -> TrialResult:
    """One full warm-up + failure + convergence measurement.

    ``obs`` wires an :class:`~repro.obs.session.ObsSession` through the
    run: the network's counters mirror into the session's metrics
    registry, a probe samples per-node time series, the profiler (when
    enabled) accounts event-loop wall time, and warm-up / failure /
    convergence phase timings are recorded.  When ``obs`` is None the
    session installed by :func:`repro.obs.session.observe` (if any) is
    used, so sweeps deep inside the figure harness can be observed
    without threading a parameter through every layer.  A session with
    ``trace=True`` additionally attaches a causal tracer to the trial and
    records its path-exploration / settle-time summary.  Observation is
    passive: the protocol trajectory is bit-identical with or without it.
    """
    if obs is None:
        obs = active_session()
    metrics = obs.registry if obs is not None else None
    tracer = obs.make_tracer() if obs is not None else None
    network = BGPNetwork(
        topology,
        spec.to_bgp_config(),
        seed=seed,
        tracer=tracer,
        metrics=metrics,
    )
    if obs is not None:
        obs.attach(network)

    wall0 = time.perf_counter()
    with span("trial.warmup", seed=seed):
        network.start()
        network.run_until_quiet(max_time=spec.max_warmup_time)
    warmup_wall = time.perf_counter() - wall0
    if not network.is_quiescent():
        raise RuntimeError(
            f"warm-up did not converge within {spec.max_warmup_time}s "
            f"of simulated time"
        )
    warmup_time = network.last_activity
    warmup_events = network.sim.events_executed
    warmup_snapshot = network.counters.snapshot()
    if obs is not None:
        obs.record_phase(
            "warmup", warmup_wall, sim_seconds=warmup_time, events=warmup_events
        )
    if spec.validate:
        validate_routing(network)

    if scenario is None:
        scenario = build_scenario(topology, spec, seed)
    wall1 = time.perf_counter()
    with span("trial.failure"):
        t0 = network.fail_nodes(
            scenario.nodes,
            detection_delay=spec.detection_delay,
            detection_jitter=spec.detection_jitter,
        )
    if obs is not None:
        obs.record_phase("failure", time.perf_counter() - wall1)
        obs.on_failure(network)

    wall2 = time.perf_counter()
    with span("trial.convergence"):
        network.run_until_quiet(max_time=t0 + spec.max_convergence_time)
    convergence_wall = time.perf_counter() - wall2
    truncated = not network.is_quiescent()
    if obs is not None:
        obs.record_phase(
            "convergence",
            convergence_wall,
            sim_seconds=network.last_activity - t0,
            events=network.sim.events_executed - warmup_events,
        )
    if spec.validate and not truncated:
        validate_routing(network)

    diff = network.counters.diff(warmup_snapshot)
    dataplane_summary = (
        obs.finish_dataplane(network, t0=t0, seed=seed)
        if obs is not None
        else None
    )
    result = TrialResult(
        convergence_delay=network.last_activity - t0,
        messages_sent=diff.get("updates_sent", 0),
        withdrawals_sent=diff.get("withdrawals_sent", 0),
        updates_processed=diff.get("updates_processed", 0),
        stale_dropped=diff.get("updates_dropped_stale", 0),
        route_changes=diff.get("route_changes", 0),
        failure_size=scenario.size,
        failure_time=t0,
        warmup_time=warmup_time,
        warmup_messages=warmup_snapshot.get("updates_sent", 0),
        events_executed=network.sim.events_executed,
        seed=seed,
        truncated=truncated,
        warmup_wall=warmup_wall,
        convergence_wall=convergence_wall,
        dataplane=dataplane_summary,
    )
    if obs is not None:
        obs.note_trial(
            spec=spec,
            seed=seed,
            topology=topology.summary(),
            counters=network.counters.snapshot(),
            result=result,
        )
    return result


def run_trials(
    topology_factory: Callable[[int], Topology],
    spec: ExperimentSpec,
    seeds: Sequence[int],
    progress: Optional[ProgressFn] = None,
    obs: Optional[ObsSession] = None,
    jobs: Optional[int] = None,
    executor: Optional["TrialExecutor"] = None,
    store: Optional["ResultStore"] = None,
) -> ExperimentResult:
    """Run one trial per seed, each on its own topology instance.

    ``topology_factory(seed)`` lets trials vary the topology realization
    the way the paper's repeated runs did; pass ``lambda s: fixed_topo`` to
    hold the topology constant and vary only the protocol randomness.
    ``progress`` (when given) is called after every completed trial with a
    :class:`Progress` carrying done/total counts, elapsed wall time and an
    ETA; ``obs`` is forwarded to every :func:`run_experiment`.

    ``jobs`` (or an explicit ``executor``) selects the execution backend:
    ``jobs > 1`` fans whole trials out over a process pool (see
    :mod:`repro.core.parallel`); ``None`` uses the process-wide default
    installed by :func:`repro.core.parallel.parallel_jobs`.  Whatever the
    backend, results are folded in seed order, so the returned
    :class:`ExperimentResult` is bit-identical across ``jobs`` values for
    the same seeds.  Observed runs ship each worker's metrics, phase
    timings, probe samples and trace records back to ``obs`` (or the
    active session) for aggregation.

    ``store`` (or the process-wide default installed by
    :func:`repro.store.result_store.use_store`) enables content-addressed
    trial caching: each trial's key is derived from (spec, built
    topology, seed) via :func:`repro.store.hashing.spec_hash`; stored
    trials are folded without re-running, fresh trials are written back —
    always from this (parent) process — so an interrupted sweep resumes
    where it stopped.  Cached and cold runs compare equal
    (:class:`TrialResult` equality excludes wall-clock fields), and cached
    trials contribute measurements but no new obs samples.
    """
    from repro.core.parallel import get_default_jobs, make_executor

    if obs is None:
        obs = active_session()
    if progress is None:
        # The process-wide live monitor, if one is installed (this is
        # how `sweep --progress` reaches sweeps inside the figures).
        progress = default_progress()
    if store is None:
        from repro.store.result_store import default_store

        store = default_store()
    if executor is None:
        resolved_jobs = jobs if jobs is not None else get_default_jobs()
        if resolved_jobs <= 1:
            # Inline serial fast path: no task/payload round-trip, the
            # parent session observes every trial directly.
            with span("trials.run", trials=len(seeds), jobs=1):
                return _run_trials_inline(
                    topology_factory, spec, seeds, progress, obs, store
                )
        executor = make_executor(resolved_jobs)
    with span("trials.run", trials=len(seeds), jobs=executor.jobs) as sp:
        result = _run_trials_executor(
            topology_factory, spec, seeds, progress, obs, executor, store
        )
        # Pool-backed executors report what the warm pool reused; the
        # attrs ride the span so bench_report's gap attribution can see
        # cache hits and true spin-up without re-running anything.
        stats = getattr(executor, "last_stats", None)
        if stats is not None:
            sp.set(
                pool_run=stats.pool_run,
                workers_reused=stats.workers_reused,
                topology_cache_hit_rate=round(stats.cache_hit_rate, 4),
                spinup_seconds=round(stats.spinup_seconds, 6),
            )
        return result


def _run_trials_inline(
    topology_factory: Callable[[int], Topology],
    spec: ExperimentSpec,
    seeds: Sequence[int],
    progress: Optional[ProgressFn],
    obs: Optional[ObsSession],
    store: Optional["ResultStore"] = None,
) -> ExperimentResult:
    if store is not None:
        from repro.store.hashing import spec_fingerprint, spec_hash

    result = ExperimentResult(spec=spec)
    start = time.perf_counter()
    total = len(seeds)
    busy = 0.0
    for done, seed in enumerate(seeds, start=1):
        with span("topology.build", seed=seed):
            topology = topology_factory(seed)
        trial = None
        if store is not None:
            key = spec_hash(spec, topology, seed)
            trial = store.get(key)
            if obs is not None:
                obs.note_cache(trial is not None)
        if trial is None:
            with span("trial.execute", seed=seed):
                trial = run_experiment(topology, spec, seed=seed, obs=obs)
            busy += trial.warmup_wall + trial.convergence_wall
            if store is not None:
                store.put(
                    key,
                    trial,
                    fingerprint=spec_fingerprint(spec, topology, seed),
                )
        result.add(trial)
        if progress is not None:
            progress(
                Progress(
                    done=done,
                    total=total,
                    elapsed=time.perf_counter() - start,
                    label=spec.mrai.name,
                    busy_seconds=busy,
                )
            )
    return result


def _run_trials_executor(
    topology_factory: Callable[[int], Topology],
    spec: ExperimentSpec,
    seeds: Sequence[int],
    progress: Optional[ProgressFn],
    obs: Optional[ObsSession],
    executor: "TrialExecutor",
    store: Optional["ResultStore"] = None,
) -> ExperimentResult:
    from repro.core.parallel import TrialTask

    if store is not None:
        from repro.store.hashing import spec_fingerprint, spec_hash

    obs_config = obs.worker_args() if obs is not None else None
    start = time.perf_counter()
    total = len(seeds)
    # One slot per seed; cached trials fill theirs before execution.
    trials: List[Optional[TrialResult]] = [None] * total
    payloads: List[Optional[Dict[str, Any]]] = [None] * total
    keys: List[Optional[str]] = [None] * total
    fingerprints: Dict[int, Dict[str, Any]] = {}
    tasks = []
    for index, seed in enumerate(seeds):
        with span("topology.build", seed=seed):
            topology = topology_factory(seed)
        if store is not None:
            key = spec_hash(spec, topology, seed)
            keys[index] = key
            cached = store.get(key)
            if obs is not None:
                obs.note_cache(cached is not None)
            if cached is not None:
                trials[index] = cached
                continue
            fingerprints[index] = spec_fingerprint(spec, topology, seed)
        tasks.append(
            TrialTask(
                index=index,
                topology=topology,
                spec=spec,
                seed=seed,
                obs_config=obs_config,
            )
        )
    done_count = total - len(tasks)
    if progress is not None and done_count:
        progress(
            Progress(
                done=done_count,
                total=total,
                elapsed=time.perf_counter() - start,
                label=spec.mrai.name,
            )
        )

    busy = 0.0

    def on_done(outcome) -> None:
        # Completion ticks arrive in completion order (not seed order);
        # the count is monotonic regardless.  Store writes happen here —
        # in the parent, as trials land — so an interrupt loses only the
        # trials still in flight.
        nonlocal done_count, busy
        index, trial, _payload = outcome
        if store is not None:
            store.put(
                keys[index], trial, fingerprint=fingerprints.get(index)
            )
        done_count += 1
        busy += trial.warmup_wall + trial.convergence_wall
        if progress is not None:
            progress(
                Progress(
                    done=done_count,
                    total=total,
                    elapsed=time.perf_counter() - start,
                    label=spec.mrai.name,
                    busy_seconds=busy,
                )
            )

    outcomes = executor.run(tasks, on_done) if tasks else []
    for index, trial, payload in outcomes:
        trials[index] = trial
        payloads[index] = payload
    # Fold in submission (seed) order: the accumulators then see the
    # exact sequence the serial path streams, bit for bit.
    with span("trials.fold", trials=total):
        result = ExperimentResult(spec=spec)
        for index, trial in enumerate(trials):
            assert trial is not None
            result.add(trial)
            if obs is not None and payloads[index] is not None:
                with span("obs.absorb"):
                    obs.absorb(payloads[index])
    return result
