"""Parameter sweeps — the machinery behind every figure.

Each figure in the paper is a family of *series*: convergence delay (or
message count) as a function of failure size or MRAI, one series per scheme
or topology.  :func:`failure_size_sweep` and :func:`mrai_sweep` produce
:class:`Series` objects; :mod:`repro.analysis.report` renders them as the
text tables recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    Progress,
    ProgressFn,
    run_trials,
)
from repro.obs.live import default_progress
from repro.obs.spans import span
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.result_store import ResultStore


def _sweep_reporter(
    progress: Optional[ProgressFn], total: int, label: str
) -> Optional[ProgressFn]:
    """Adapt a sweep-wide progress callback to per-trial ticks.

    ``run_trials`` reports done/total *within one point*; the closure
    returned here re-bases those ticks onto the whole sweep so the ETA
    covers every remaining trial, not just the current point's.  With no
    explicit callback the process-wide default
    (:func:`repro.obs.live.default_progress`, installed by ``sweep
    --progress``) is used, so a whole figure harness reports sweep-wide
    ticks without any figure module threading a parameter.
    """
    if progress is None:
        progress = default_progress()
    if progress is None:
        return None
    state = {"done": 0, "busy_total": 0.0, "point_busy": 0.0}
    lock = threading.Lock()
    start = time.perf_counter()

    def tick(point_progress: Progress) -> None:
        # Completion callbacks may arrive out of order (and, with a
        # threaded executor, concurrently): count them in the parent
        # under a lock so ``done`` is monotonic and never exceeds the
        # sweep total, instead of trusting the per-point tick.
        with lock:
            state["done"] = done = min(state["done"] + 1, total)
            # Per-point busy_seconds is cumulative within a point and
            # resets between points; fold the increments into a
            # sweep-wide total (a decrease marks a new point's first
            # tick).
            if point_progress.busy_seconds >= state["point_busy"]:
                state["busy_total"] += (
                    point_progress.busy_seconds - state["point_busy"]
                )
            else:
                state["busy_total"] += point_progress.busy_seconds
            state["point_busy"] = point_progress.busy_seconds
            progress(
                Progress(
                    done=done,
                    total=total,
                    elapsed=time.perf_counter() - start,
                    label=label or point_progress.label,
                    busy_seconds=state["busy_total"],
                    failed=point_progress.failed,
                )
            )

    return tick


@dataclass
class SweepPoint:
    """One x-position of a series with its aggregated result."""

    x: float
    result: ExperimentResult

    @property
    def delay(self) -> float:
        return self.result.mean_delay

    @property
    def messages(self) -> float:
        return self.result.mean_messages

    @property
    def unreachable(self) -> float:
        """Mean data-plane unreachability (node-seconds) per trial.

        Averaged over the trials that carry a data-plane summary; 0.0
        when the point ran with monitors off (e.g. cached results from
        an unmonitored sweep).
        """
        values = [
            t.dataplane["unreachable_seconds_total"]
            for t in self.result.trials
            if getattr(t, "dataplane", None)
        ]
        return sum(values) / len(values) if values else 0.0


@dataclass
class Series:
    """A labeled curve: scheme/topology vs a swept parameter."""

    label: str
    x_name: str
    points: List[SweepPoint] = field(default_factory=list)

    def add(self, x: float, result: ExperimentResult) -> None:
        self.points.append(SweepPoint(x, result))

    @property
    def xs(self) -> List[float]:
        return [p.x for p in self.points]

    @property
    def delays(self) -> List[float]:
        return [p.delay for p in self.points]

    @property
    def message_counts(self) -> List[float]:
        return [p.messages for p in self.points]

    def delay_at(self, x: float) -> float:
        for p in self.points:
            if p.x == x:
                return p.delay
        raise KeyError(f"no point at {self.x_name}={x}")

    def messages_at(self, x: float) -> float:
        for p in self.points:
            if p.x == x:
                return p.messages
        raise KeyError(f"no point at {self.x_name}={x}")

    @property
    def unreachables(self) -> List[float]:
        return [p.unreachable for p in self.points]

    def unreachable_at(self, x: float) -> float:
        for p in self.points:
            if p.x == x:
                return p.unreachable
        raise KeyError(f"no point at {self.x_name}={x}")

    def argmin_delay(self) -> float:
        """The swept value minimizing mean delay (the "optimal MRAI")."""
        if not self.points:
            raise ValueError("empty series")
        return min(self.points, key=lambda p: p.delay).x


def failure_size_sweep(
    topology_factory: Callable[[int], Topology],
    spec: ExperimentSpec,
    fractions: Sequence[float],
    seeds: Sequence[int],
    label: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> Series:
    """Sweep the failure size, holding the scheme fixed (Figs 1/2/6-11).

    ``progress`` receives one :class:`Progress` tick per completed trial,
    with totals and ETA covering the whole sweep.  ``jobs`` selects the
    trial-execution backend (see :func:`repro.core.experiment.run_trials`);
    results are bit-identical across ``jobs`` values.  Successive points
    share the process-wide warm :class:`repro.core.parallel.WorkerPool`,
    so worker startup is paid once for the whole sweep and each point's
    topology ships to a given worker at most once.  ``store`` enables
    content-addressed trial caching: already-stored points are folded
    without re-running (see :mod:`repro.store`).
    """
    series = Series(
        label=label or spec.mrai.name, x_name="failure_fraction"
    )
    tick = _sweep_reporter(
        progress, len(fractions) * len(seeds), series.label
    )
    for fraction in fractions:
        with span("sweep.point", label=series.label, x=fraction):
            result = run_trials(
                topology_factory,
                spec.with_(failure_fraction=fraction),
                seeds,
                progress=tick,
                jobs=jobs,
                store=store,
            )
        series.add(fraction, result)
    return series


def mrai_sweep(
    topology_factory: Callable[[int], Topology],
    spec: ExperimentSpec,
    mrai_values: Sequence[float],
    seeds: Sequence[int],
    label: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> Series:
    """Sweep a constant MRAI, holding the failure fixed (Figs 3/4/5/12)."""
    series = Series(label=label or "delay-vs-mrai", x_name="mrai")
    tick = _sweep_reporter(
        progress, len(mrai_values) * len(seeds), series.label
    )
    for value in mrai_values:
        with span("sweep.point", label=series.label, x=value):
            result = run_trials(
                topology_factory,
                spec.with_(mrai=ConstantMRAI(value)),
                seeds,
                progress=tick,
                jobs=jobs,
                store=store,
            )
        series.add(value, result)
    return series


def scheme_comparison(
    topology_factory: Callable[[int], Topology],
    specs: Dict[str, ExperimentSpec],
    fractions: Sequence[float],
    seeds: Sequence[int],
    progress: Optional[ProgressFn] = None,
    jobs: Optional[int] = None,
    store: Optional["ResultStore"] = None,
) -> List[Series]:
    """Several schemes swept over failure sizes (Figs 6/7/10/13).

    Progress ticks span all schemes: done/total count every trial of
    every scheme's sweep.
    """
    tick = _sweep_reporter(
        progress, len(specs) * len(fractions) * len(seeds), ""
    )
    out = []
    for label, spec in specs.items():
        series = Series(label=label, x_name="failure_fraction")
        for fraction in fractions:
            with span("sweep.point", label=label, x=fraction):
                result = run_trials(
                    topology_factory,
                    spec.with_(failure_fraction=fraction),
                    seeds,
                    progress=tick,
                    jobs=jobs,
                    store=store,
                )
            series.add(fraction, result)
        out.append(series)
    return out
