"""Analytic models and parameter-selection heuristics.

Two purposes:

1. **Reference bounds** from the literature the paper builds on, used by
   the test suite to validate the simulator against theory:

   * Labovitz et al.: a withdrawal in a complete graph of n nodes with
     rate-limited updates converges in at best ``(n-3) x MRAI``;
   * Pei et al.: with per-peer MRAI and unloaded routers, convergence
     after a failure is bounded by roughly the longest remaining path
     times one MRAI round plus processing.

2. **The parameter-selection theory the paper calls for** (Sec 5: "In
   order to use this type of scheme in real networks, it is necessary to
   develop a suitable theory for choosing various parameters").
   :func:`recommend_mrai` estimates, from first principles, the smallest
   MRAI at which the busiest router keeps up with the update load a
   failure of a given size generates; :func:`recommend_ladder` turns that
   into the level set for :class:`~repro.core.dynamic_mrai.DynamicMRAI`.

   The load model is deliberately transparent rather than exact: during
   re-convergence after a failure touching ``k`` destinations, a router of
   degree ``d`` receives on the order of ``d x k x E`` updates, where
   ``E`` is the mean number of times one (destination, neighbor) slot
   changes during path exploration — empirically 1.5-3 for shortest-path
   selection (we default to 2).  Those updates arrive over roughly the
   convergence period, which per-peer rate limiting organizes into MRAI
   rounds: each neighbor delivers at most ``k`` updates per round.  The
   router keeps up iff it can process one round's worth of arrivals
   (``d x k`` messages at worst) within one MRAI, giving
   ``MRAI* ~ d x k x mean_service``.  Below that the queue grows without
   bound until exploration ends (the left arm of the paper's V); far above
   it, rounds idle (the right arm).
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.topology.graph import Topology

#: Mean per-(destination, neighbor) churn during exploration; see module
#: docstring.  Only enters bounds, not the recommended MRAI.
DEFAULT_EXPLORATION_FACTOR = 2.0


def labovitz_clique_bound(n: int, mrai: float) -> float:
    """Best-case convergence delay for a withdrawal in a clique of n nodes.

    Labovitz et al. (SIGCOMM 2000): ``(n-3) x MRAI`` with rate-limited
    updates.  ``test_integration_models`` shows our simulator matches this
    exactly under ``withdrawal_rate_limiting=True``.
    """
    if n < 3:
        raise ValueError("the bound is defined for n >= 3")
    if mrai < 0:
        raise ValueError("mrai must be non-negative")
    return max(0, n - 3) * mrai


def pei_unloaded_bound(
    longest_path: int, mrai: float, mean_service: float
) -> float:
    """Upper-bound estimate for unloaded convergence (after Pei et al.).

    Each hop of the longest surviving path costs at most one MRAI round
    plus one message-processing time; this is the regime right of the
    V-curve's optimum, where the paper's schemes change nothing.
    """
    if longest_path < 0:
        raise ValueError("longest_path must be non-negative")
    return longest_path * (mrai + mean_service)


def expected_update_load(
    degree: int,
    affected_destinations: int,
    exploration_factor: float = DEFAULT_EXPLORATION_FACTOR,
) -> float:
    """Expected updates arriving at a router during re-convergence."""
    if degree < 0 or affected_destinations < 0:
        raise ValueError("inputs must be non-negative")
    return degree * affected_destinations * exploration_factor


def recommend_mrai(
    topology: Topology,
    failure_fraction: float,
    mean_service: float = 0.0155,
) -> float:
    """The smallest MRAI keeping the busiest router unsaturated.

    ``MRAI* ~ d_high x k x mean_service`` where ``d_high`` is the largest
    node degree and ``k`` the number of destinations a failure of the
    given fraction touches (one prefix per AS).  Checked against the
    paper's measured optima on 120-node 70-30 topologies
    (d_high 8, mean_service 15.5 ms): 1% -> 0.25 s (paper ~0.5), 5% ->
    0.74 (paper ~1.25), 10% -> 1.5, 20% -> 3.0 (paper 2.25) — within the
    factor-of-2 the heuristic promises, with the right growth.
    """
    if not (0.0 < failure_fraction <= 1.0):
        raise ValueError("failure_fraction must be in (0, 1]")
    if mean_service <= 0:
        raise ValueError("mean_service must be positive")
    degrees = topology.degree_sequence()
    if not degrees:
        raise ValueError("empty topology")
    d_high = degrees[0]
    prefixes = len(topology.as_numbers())
    affected = max(1, round(prefixes * failure_fraction))
    return d_high * affected * mean_service


def recommend_ladder(
    topology: Topology,
    fractions: Sequence[float] = (0.02, 0.05, 0.20),
    mean_service: float = 0.0155,
    floor: float = 0.25,
) -> Tuple[float, ...]:
    """A dynamic-MRAI level ladder from the analytic per-size optima.

    One level per failure-size regime, clamped below by ``floor`` (values
    much under the link delay stop mattering) and deduplicated ascending.
    Feed the result to :class:`~repro.core.dynamic_mrai.DynamicMRAI` for
    networks where no Fig-3-style sweep is available — the paper's stated
    obstacle to deploying the scheme on "large networks like the Internet".
    """
    if not fractions:
        raise ValueError("need at least one failure fraction")
    levels = sorted(
        {
            max(floor, round(recommend_mrai(topology, f, mean_service), 2))
            for f in fractions
        }
    )
    return tuple(levels)


def saturation_mrai_ratio(
    topology: Topology,
    failure_fraction: float,
    mrai: float,
    mean_service: float = 0.0155,
) -> float:
    """How saturated the busiest router runs at a given MRAI.

    > 1 means one MRAI round's arrivals take longer than one MRAI to
    process — the overload regime where the paper's schemes win.
    """
    if mrai <= 0:
        return float("inf")
    return recommend_mrai(topology, failure_fraction, mean_service) / mrai
