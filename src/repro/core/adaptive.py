"""Failure-extent-adaptive MRAI — the paper's proposed future work.

Sec 5: *"a scheme that can accurately and quickly set the MRAI consistent
with the extent of failure without significant overhead is highly
desirable"*.  This module implements the obvious candidate:

Each node estimates the extent of the failure directly, as the number of
**distinct destinations whose routes changed** within a trailing window —
a large failure touches many destinations at every node almost
immediately, whereas queue length (the Sec 4.3 signal) only reacts once
the node is already overloaded.  The estimate indexes a calibration table
mapping failure extent to the per-extent optimal MRAI (the Fig 3 optima).

Like the paper's dynamic scheme, a value change only takes effect when a
timer is restarted; unlike it, the controller can jump straight to the
right level instead of climbing one step per threshold crossing — which is
exactly the response-time deficiency the paper notes for its queue-based
scheme ("it takes a while for the queues at the overloaded nodes to exceed
the upTh").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Sequence, Tuple

from repro.bgp.mrai import MRAIController, MRAIPolicy

#: Calibration: (minimum fraction of destinations changed, MRAI seconds).
#: Derived from the paper's per-failure-size optima on 120-node 70-30
#: topologies: 0.5 s for ~1-2.5% failures, 1.25 s around 5%, 2.25 s for
#: 10-20%.  Entries must be sorted by fraction ascending.
PAPER_CALIBRATION: Tuple[Tuple[float, float], ...] = (
    (0.00, 0.5),
    (0.04, 1.25),
    (0.08, 2.25),
)


class FailureExtentController(MRAIController):
    """Per-node controller driven by a destination-churn extent estimate."""

    __slots__ = ("calibration", "window", "total_destinations", "_events",
                 "_counts", "estimates")

    def __init__(
        self,
        calibration: Sequence[Tuple[float, float]],
        window: float,
        total_destinations: int,
    ) -> None:
        if not calibration:
            raise ValueError("calibration table must be non-empty")
        fracs = [f for f, __ in calibration]
        if fracs != sorted(fracs) or fracs[0] != 0.0:
            raise ValueError(
                "calibration must be ascending and start at fraction 0.0"
            )
        if window <= 0:
            raise ValueError("window must be positive")
        if total_destinations < 1:
            raise ValueError("total_destinations must be positive")
        self.calibration = tuple(calibration)
        self.window = window
        self.total_destinations = total_destinations
        #: (time, dest) events, oldest first.
        self._events: Deque[Tuple[float, int]] = deque()
        #: dest -> number of in-window events (distinct-dest bookkeeping).
        self._counts: Dict[int, int] = {}
        #: Count of extent estimates made (introspection for tests).
        self.estimates = 0

    # ------------------------------------------------------------------
    def on_destination_changed(self, dest: int, now: float) -> None:
        self._events.append((now, dest))
        self._counts[dest] = self._counts.get(dest, 0) + 1
        self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - self.window
        events = self._events
        counts = self._counts
        while events and events[0][0] < horizon:
            __, dest = events.popleft()
            remaining = counts[dest] - 1
            if remaining:
                counts[dest] = remaining
            else:
                del counts[dest]

    def extent(self, now: float) -> float:
        """Estimated failure extent: distinct changed dests / all dests."""
        self._evict(now)
        return len(self._counts) / self.total_destinations

    def value(self) -> float:
        # `value()` is only consulted at timer restarts, which follow route
        # activity, so the event deque is fresh enough to read directly.
        observed = len(self._counts) / self.total_destinations
        self.estimates += 1
        chosen = self.calibration[0][1]
        for threshold, mrai in self.calibration:
            if observed >= threshold:
                chosen = mrai
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FailureExtentController(distinct={len(self._counts)}, "
            f"value={self.value():g})"
        )


class AdaptiveExtentMRAI(MRAIPolicy):
    """Network-wide policy: failure-extent-driven MRAI selection.

    Parameters
    ----------
    calibration:
        (extent fraction, MRAI) table; the per-extent optima from a
        Fig-3-style sweep.  Defaults to the paper's values.
    window:
        Trailing window for the churn estimate, seconds.  Must comfortably
        exceed one MRAI round so sustained churn is not forgotten between
        advertisements; 5 s works across the paper's scenarios.
    total_destinations:
        Number of prefixes in the network (used to normalize the extent).
    """

    def __init__(
        self,
        total_destinations: int,
        calibration: Sequence[Tuple[float, float]] = PAPER_CALIBRATION,
        window: float = 5.0,
    ) -> None:
        self.calibration = tuple(calibration)
        self.window = window
        self.total_destinations = total_destinations
        self.name = (
            "adaptive-extent("
            + ", ".join(f"{f:.0%}->{m:g}s" for f, m in self.calibration)
            + ")"
        )

    def controller_for(self, node_id: int, degree: int) -> MRAIController:
        return FailureExtentController(
            self.calibration, self.window, self.total_destinations
        )
