"""Routing correctness validation.

After the network quiesces, the routing state must satisfy the invariants
path-vector convergence guarantees.  These checks back the integration and
property-based tests:

* **completeness** — every alive router has a Loc-RIB route to every prefix
  that is physically reachable in the surviving session graph;
* **soundness** — every Loc-RIB route points at an up session, traverses
  only surviving ASes, and its destination is actually alive;
* **path realizability** (flat topologies) — the AS path corresponds to an
  actual chain of links in the surviving topology;
* **forwarding loop freedom** — hop-by-hop forwarding along best routes
  reaches the destination without revisiting a node.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional, Set

from repro.bgp.network import BGPNetwork


class RoutingViolation(AssertionError):
    """A converged network violated a routing invariant."""


def _session_graph(network: BGPNetwork) -> Dict[int, Set[int]]:
    """Adjacency over *up* sessions between alive routers."""
    graph: Dict[int, Set[int]] = {}
    for speaker in network.alive_speakers():
        up = {
            ps.peer_id
            for ps in speaker.peers.values()
            if ps.session_up and network.speakers[ps.peer_id].alive
        }
        graph[speaker.node_id] = up
    return graph


def reachable_prefixes(network: BGPNetwork, node_id: int) -> Set[int]:
    """Prefixes physically reachable from ``node_id`` over up sessions."""
    graph = _session_graph(network)
    if node_id not in graph:
        return set()
    seen = {node_id}
    frontier = deque([node_id])
    while frontier:
        v = frontier.popleft()
        for u in graph[v]:
            if u not in seen:
                seen.add(u)
                frontier.append(u)
    return {network.speakers[v].asn for v in seen}


def validate_routing(
    network: BGPNetwork,
    expected_prefixes: Optional[Dict[int, Set[int]]] = None,
) -> None:
    """Raise :class:`RoutingViolation` on any broken invariant.

    ``expected_prefixes`` overrides the default completeness oracle
    (connected-component reachability) — pass the valley-free expectation
    for policy-routed networks (see :func:`validate_gao_rexford`).
    """
    if not network.is_quiescent():
        raise RoutingViolation("validation requires a quiescent network")
    graph = _session_graph(network)
    alive_prefixes = network.alive_prefixes()
    flat = network.topology.is_flat()

    # Per-component reachability (computed once per component, not per node).
    component_prefixes: Dict[int, Set[int]] = {}
    unassigned = set(graph)
    while unassigned:
        start = next(iter(unassigned))
        members = {start}
        frontier = deque([start])
        unassigned.discard(start)
        while frontier:
            v = frontier.popleft()
            for u in graph[v]:
                if u in unassigned:
                    unassigned.discard(u)
                    members.add(u)
                    frontier.append(u)
        prefixes = {network.speakers[v].asn for v in members}
        for v in members:
            component_prefixes[v] = prefixes

    for speaker in network.alive_speakers():
        nid = speaker.node_id
        if expected_prefixes is not None:
            expected = expected_prefixes[nid]
        else:
            expected = component_prefixes[nid]
        have = speaker.loc_rib.destinations()
        missing = expected - have
        if missing:
            raise RoutingViolation(
                f"node {nid}: no route to reachable prefixes "
                f"{sorted(missing)[:5]}"
            )
        extra = have - expected
        if extra:
            raise RoutingViolation(
                f"node {nid}: routes to unreachable prefixes "
                f"{sorted(extra)[:5]}"
            )
        for dest, route in speaker.loc_rib.items():
            if dest not in alive_prefixes:
                raise RoutingViolation(
                    f"node {nid}: route to dead prefix {dest}"
                )
            if route.is_local:
                continue
            peer = route.peer
            if peer not in graph[nid]:
                raise RoutingViolation(
                    f"node {nid}: best route to {dest} via down/dead "
                    f"session {peer}"
                )
            if len(set(route.path)) != len(route.path):
                raise RoutingViolation(
                    f"node {nid}: AS path for {dest} has a loop: {route.path}"
                )
            if speaker.asn in route.path:
                raise RoutingViolation(
                    f"node {nid}: own AS in path for {dest}: {route.path}"
                )
            if flat and not _path_realizable(graph, nid, route.path):
                raise RoutingViolation(
                    f"node {nid}: unrealizable path for {dest}: {route.path}"
                )

    _check_forwarding(network, graph)


def _path_realizable(
    graph: Dict[int, Set[int]], node_id: int, path: tuple
) -> bool:
    """Flat topologies: the AS path must be a live chain of links."""
    current = node_id
    for asn in path:
        # Flat topology: AS number == node id.
        if asn not in graph:
            return False
        if asn not in graph[current]:
            return False
        current = asn
    return True


def _check_forwarding(
    network: BGPNetwork, graph: Dict[int, Set[int]]
) -> None:
    """Hop-by-hop forwarding must reach each destination loop-free."""
    alive = {s.node_id: s for s in network.alive_speakers()}
    for speaker in alive.values():
        for dest, __ in speaker.loc_rib.items():
            current = speaker.node_id
            visited: Set[int] = set()
            while True:
                if current in visited:
                    raise RoutingViolation(
                        f"forwarding loop for prefix {dest} starting at "
                        f"{speaker.node_id}: revisited {current}"
                    )
                visited.add(current)
                node = alive[current]
                if node.asn == dest:
                    break
                route = node.loc_rib.get(dest)
                if route is None or route.peer is None:
                    raise RoutingViolation(
                        f"forwarding blackhole for prefix {dest} at node "
                        f"{current} (started at {speaker.node_id})"
                    )
                current = route.peer


def valley_free_prefixes(network: BGPNetwork, relationships) -> Dict[int, Set[int]]:
    """Prefixes each alive node should reach under Gao-Rexford export.

    A source ``s`` has a route to destination ``d`` iff an *alive* path
    ``s -> d`` exists of the valley-free shape: zero or more steps up to
    providers, at most one peer step, then zero or more steps down to
    customers.  Computed with a two-phase BFS per source (UP: may still
    climb; DOWN: may only descend), over the up-session graph.

    Flat topologies only (node id == AS number); the multi-router case
    would additionally need intra-AS transparency.
    """
    from repro.bgp.policy import CUSTOMER, PEER

    if not network.topology.is_flat():
        raise ValueError("valley-free validation supports flat topologies")
    graph = _session_graph(network)
    expected: Dict[int, Set[int]] = {}
    for source in graph:
        # (node, phase): phase 0 = may climb / peer once, 1 = descend only.
        seen = {(source, 0)}
        reachable = {source}
        frontier = deque([(source, 0)])
        while frontier:
            node, phase = frontier.popleft()
            for neighbor in graph[node]:
                relation = relationships.relation(node, neighbor)
                if relation == CUSTOMER:
                    next_phase = 1  # descending
                elif relation == PEER:
                    if phase != 0:
                        continue
                    next_phase = 1
                else:  # PROVIDER: climbing
                    if phase != 0:
                        continue
                    next_phase = 0
                state = (neighbor, next_phase)
                if state not in seen:
                    seen.add(state)
                    reachable.add(neighbor)
                    frontier.append(state)
        expected[source] = {network.speakers[v].asn for v in reachable}
    return expected


def validate_gao_rexford(network: BGPNetwork, relationships) -> None:
    """Full invariant check for a Gao-Rexford policy-routed network."""
    validate_routing(
        network,
        expected_prefixes=valley_free_prefixes(network, relationships),
    )


def count_invalid_routes(network: BGPNetwork) -> int:
    """Routes whose AS path traverses a dead AS (transient-state metric).

    Zero after convergence; positive snapshots *during* convergence are the
    "invalid routes" whose suppression the paper credits for the batching
    scheme's gains.
    """
    dead = {
        network.speakers[n].asn for n in network.failed_nodes
    } - network.alive_prefixes()
    invalid = 0
    for speaker in network.alive_speakers():
        for __, route in speaker.loc_rib.items():
            if any(asn in dead for asn in route.path):
                invalid += 1
    return invalid
