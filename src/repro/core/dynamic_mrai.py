"""Dynamic MRAI selection (paper Sec 4.3) — the first contribution.

Every node starts at the lowest of a small ladder of MRAI levels (the paper
uses {0.5, 1.25, 2.25} s on 120-node 70-30 topologies: the per-failure-size
optima observed in Sec 4.1).  The node monitors its own overload and steps
the ladder:

* **queue monitor** (the paper's main scheme): *unfinished work* = input
  queue length x average processing delay.  Above ``up_th`` (default
  0.65 s) step up; below ``down_th`` (default 0.05 s) step down.
* **utilization monitor**: busy fraction of the update processor over a
  sliding window ("we used the processor utilization to detect overload...
  promising results").
* **message-count monitor**: received-update count over a sliding window
  (the paper found this one hard to tune — reproduced faithfully, it is the
  weakest of the three).

Crucially, a level change never touches a *running* timer: "the change
takes effect only when the timers are restarted after an update has been
sent".  The controller only supplies the value used at restart, which is
exactly how :class:`~repro.bgp.speaker.BGPSpeaker` consults it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Sequence, Tuple

from repro.bgp.mrai import MRAIController, MRAIPolicy
from repro.sim.stats import SlidingWindowUtilization

#: The paper's MRAI ladder for 120-node 70-30 topologies (Sec 4.3).
PAPER_LEVELS: Tuple[float, ...] = (0.5, 1.25, 2.25)
#: The paper's thresholds for Fig 7.
PAPER_UP_TH = 0.65
PAPER_DOWN_TH = 0.05


class DynamicController(MRAIController):
    """Queue-length ("unfinished work") dynamic MRAI controller."""

    __slots__ = ("levels", "up_th", "down_th", "mean_service", "level",
                 "transitions_up", "transitions_down")

    def __init__(
        self,
        levels: Sequence[float],
        up_th: float,
        down_th: float,
        mean_service: float,
    ) -> None:
        if not levels or list(levels) != sorted(levels):
            raise ValueError("levels must be a non-empty ascending sequence")
        if down_th > up_th:
            raise ValueError("down_th must not exceed up_th")
        if mean_service <= 0:
            raise ValueError("mean_service must be positive")
        self.levels = tuple(levels)
        self.up_th = up_th
        self.down_th = down_th
        self.mean_service = mean_service
        self.level = 0
        self.transitions_up = 0
        self.transitions_down = 0

    def value(self) -> float:
        return self.levels[self.level]

    def on_queue_sample(self, queue_len: int, now: float) -> None:
        work = queue_len * self.mean_service
        if work > self.up_th:
            if self.level < len(self.levels) - 1:
                self.level += 1
                self.transitions_up += 1
        elif work < self.down_th:
            if self.level > 0:
                self.level -= 1
                self.transitions_down += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicController(level={self.level}/{len(self.levels) - 1}, "
            f"value={self.value():g})"
        )


class UtilizationController(MRAIController):
    """Processor-utilization dynamic MRAI controller (paper's 1st variant)."""

    __slots__ = ("levels", "up_th", "down_th", "window", "_util", "level")

    def __init__(
        self,
        levels: Sequence[float],
        up_th: float = 0.85,
        down_th: float = 0.30,
        window: float = 1.0,
    ) -> None:
        if not levels or list(levels) != sorted(levels):
            raise ValueError("levels must be a non-empty ascending sequence")
        if not (0.0 <= down_th <= up_th <= 1.0):
            raise ValueError("need 0 <= down_th <= up_th <= 1")
        self.levels = tuple(levels)
        self.up_th = up_th
        self.down_th = down_th
        self.window = window
        self._util = SlidingWindowUtilization(window)
        self.level = 0

    def value(self) -> float:
        return self.levels[self.level]

    def on_busy_interval(self, start: float, end: float) -> None:
        self._util.add_busy(start, end)

    def on_queue_sample(self, queue_len: int, now: float) -> None:
        utilization = self._util.utilization(now)
        if utilization > self.up_th and self.level < len(self.levels) - 1:
            self.level += 1
        elif utilization < self.down_th and self.level > 0:
            self.level -= 1


class MessageCountController(MRAIController):
    """Received-update-rate dynamic MRAI controller (paper's 2nd variant).

    The paper reports this one "was not very successful as it was difficult
    to set the up and down thresholds" — it is included so that finding can
    be reproduced, not because it works well.
    """

    __slots__ = ("levels", "up_th", "down_th", "window", "_arrivals", "level")

    def __init__(
        self,
        levels: Sequence[float],
        up_th: float = 40.0,
        down_th: float = 5.0,
        window: float = 1.0,
    ) -> None:
        if not levels or list(levels) != sorted(levels):
            raise ValueError("levels must be a non-empty ascending sequence")
        if down_th > up_th:
            raise ValueError("down_th must not exceed up_th")
        self.levels = tuple(levels)
        self.up_th = up_th
        self.down_th = down_th
        self.window = window
        self._arrivals: Deque[float] = deque()
        self.level = 0

    def value(self) -> float:
        return self.levels[self.level]

    def on_update_received(self, now: float) -> None:
        self._arrivals.append(now)

    def on_queue_sample(self, queue_len: int, now: float) -> None:
        horizon = now - self.window
        while self._arrivals and self._arrivals[0] < horizon:
            self._arrivals.popleft()
        rate = len(self._arrivals)
        if rate > self.up_th and self.level < len(self.levels) - 1:
            self.level += 1
        elif rate < self.down_th and self.level > 0:
            self.level -= 1


class DynamicMRAI(MRAIPolicy):
    """The dynamic MRAI scheme as a network-wide policy.

    Parameters
    ----------
    levels:
        Ascending MRAI ladder; the paper's {0.5, 1.25, 2.25} by default.
        ("We obviously had to change the MRAI values" for other network
        sizes — pass the per-size optima from a Fig-3-style sweep.)
    up_th / down_th:
        Unfinished-work thresholds in seconds (queue monitor), utilization
        fractions (utilization monitor) or messages/window (count monitor).
    monitor:
        ``"queue"`` (default, the paper's scheme), ``"utilization"`` or
        ``"msgcount"``.
    mean_service:
        Average per-update processing delay used to convert queue length
        into unfinished work; 15.5 ms for the paper's uniform(1, 30) ms.
    high_degree_only_threshold:
        When set, only nodes with at least this degree run the dynamic
        controller; the rest stay at ``levels[0]``.  Sec 4.3 reports this
        restriction leaves results "effectively the same" — reproduce with
        the ablation bench.
    """

    def __init__(
        self,
        levels: Sequence[float] = PAPER_LEVELS,
        up_th: float = PAPER_UP_TH,
        down_th: float = PAPER_DOWN_TH,
        monitor: str = "queue",
        mean_service: float = 0.0155,
        high_degree_only_threshold: Optional[int] = None,
    ) -> None:
        if monitor not in ("queue", "utilization", "msgcount"):
            raise ValueError(f"unknown monitor {monitor!r}")
        self.levels = tuple(levels)
        self.up_th = up_th
        self.down_th = down_th
        self.monitor = monitor
        self.mean_service = mean_service
        self.high_degree_only_threshold = high_degree_only_threshold
        self.name = (
            f"dynamic({monitor}, up={up_th:g}, down={down_th:g}, "
            f"levels={'/'.join(f'{v:g}' for v in self.levels)})"
        )

    def controller_for(self, node_id: int, degree: int) -> MRAIController:
        threshold = self.high_degree_only_threshold
        if threshold is not None and degree < threshold:
            from repro.bgp.mrai import StaticController

            return StaticController(self.levels[0])
        if self.monitor == "queue":
            return DynamicController(
                self.levels, self.up_th, self.down_th, self.mean_service
            )
        if self.monitor == "utilization":
            return UtilizationController(self.levels, self.up_th, self.down_th)
        return MessageCountController(self.levels, self.up_th, self.down_th)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynamicMRAI({self.name})"
