"""Parallel trial execution: fan whole trials out across worker processes.

Every figure in the paper is a sweep of many *independent* trials — each
one a full warm-up + failure + convergence simulation with its own
topology and seed — which makes the workload embarrassingly parallel the
same way SSFNet's parallel event-driven substrate exploited.  This module
provides the execution backends the serial drivers lack:

* :class:`TrialExecutor` — the backend interface: map a list of
  :class:`TrialTask` objects to ``(index, TrialResult, obs payload)``
  triples, reporting a completion tick per finished trial;
* :class:`SerialExecutor` — runs tasks in-process, in order.  Exists so
  the two backends are *symmetric*: both round-trip observability through
  the same picklable payloads, so switching backends never changes what a
  session records;
* :class:`ProcessExecutor` — fan-out over the process-wide
  :class:`WorkerPool`.  Trials complete out of order; the caller folds
  results back in submission (seed) order, which is what makes a parallel
  :class:`~repro.core.experiment.ExperimentResult` *bit-identical* to a
  serial one on the same master seed.

The warm worker pool
--------------------
The first parallel backend spun up a cold ``ProcessPoolExecutor`` per
``run()`` call and pickled the full built topology into every task — on
short trials the fan-out lost to its own overhead (BENCH_sweep.json:
0.8x at jobs=2).  :class:`WorkerPool` replaces it with long-lived
workers that amortize every fixed cost:

* **Persistent warm workers.**  One process-wide pool
  (:func:`get_worker_pool`), created on first use, reused by every
  ``run_trials`` / sweep / campaign call, reaped at interpreter exit
  (or explicitly via :func:`shutdown_worker_pool`).  Spin-up is paid
  once per process, not once per sweep point.
* **Per-worker topology cache.**  Tasks cross the pipe as a lean wire
  record — spec, seed, obs recipe and a *content digest* of the built
  topology (:func:`repro.store.hashing.topology_digest`).  The topology
  itself ships to a given worker at most once per digest; afterwards the
  worker replays trials against its cached copy.  Caches are bounded LRU
  (``REPRO_POOL_TOPOLOGY_CACHE``, default 8 entries); the parent mirrors
  each worker's cache state deterministically, so it always knows what
  to ship.
* **Copy-on-write sharing on fork platforms.**  When the start method is
  ``fork`` (the Linux default), topologies already built at spawn time
  are published in a module global the forked children inherit — those
  workers start with the run's topologies pre-pinned at zero
  serialization cost.  ``spawn`` falls back to ship-once semantics with
  identical results.
* **Digest-affinity chunk scheduling.**  Tasks are grouped by topology
  digest and dispatched as chunks (batches of trials per message); free
  workers prefer chunks whose topology they already hold, so campaigns —
  which group trials by grid cell — keep hitting warm caches.
* **Streamed, compact results.**  Workers send one ``(index, result,
  obs payload)`` message per finished trial (progress ticks stream), and
  observed sessions prune empty payload sections before pickling
  (:meth:`repro.obs.session.ObsSession.worker_payload`).

Determinism contract
--------------------
A trial is a pure function of ``(topology, spec, seed)``: random streams
are derived via BLAKE2b (process-independent, ``PYTHONHASHSEED``-immune),
topologies are built in the parent exactly as the serial path does (and
reach workers either by fork-inherited reference or by one pickled
round-trip — the same bytes the cold pool shipped per trial), and results
are folded in task order regardless of completion order.  Workers
therefore produce the identical :class:`TrialResult` the parent would
have, and ``jobs=N`` equals ``jobs=1`` bit for bit, warm pool or cold,
fork or spawn.

The ``--jobs`` default used by the sweep drivers is a module-level
setting so deep call stacks (the figure harness) pick it up without
threading a parameter through thirteen figure modules::

    with parallel_jobs(4):
        compute_figure("fig03")
"""

from __future__ import annotations

import atexit
import math
import multiprocessing
import os
import time
from collections import OrderedDict, deque
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.obs.spans import record_spans, span
from repro.sim.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import TrialResult

#: A finished trial: (submission index, measurement, obs payload or None).
TrialOutcome = Tuple[int, "TrialResult", Optional[Dict[str, Any]]]

#: Per-completion callback (called once per finished trial, any order).
DoneFn = Callable[[TrialOutcome], None]

#: A guarded outcome: (index, result or None, payload or None, error or
#: None) — the campaign retry loop's wire format (errors reported, never
#: raised).
GuardedOutcome = Tuple[
    int, Optional["TrialResult"], Optional[Dict[str, Any]], Optional[str]
]

#: Module-level default for ``jobs`` when callers pass None (see
#: :func:`parallel_jobs`); 1 keeps every entry point serial by default.
_DEFAULT_JOBS = 1

#: Per-worker topology cache capacity (entries, LRU).  Pinned
#: fork-inherited topologies live outside this bound (they cost no
#: serialization and stay copy-on-write shared until written).
DEFAULT_TOPOLOGY_CACHE = 8

#: How many chunks a worker may have queued at once.  2 keeps a worker's
#: next chunk in its pipe while the current one runs (no idle gap), while
#: leaving the rest of the queue schedulable on whichever worker frees
#: up first.
_MAX_INFLIGHT_CHUNKS = 2


def get_default_jobs() -> int:
    """The process-wide default worker count (1 = serial)."""
    return _DEFAULT_JOBS


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count."""
    global _DEFAULT_JOBS
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _DEFAULT_JOBS = jobs


@contextmanager
def parallel_jobs(jobs: int) -> Iterator[int]:
    """Scope the default worker count to a ``with`` block.

    This is how the CLI's ``--jobs`` reaches sweeps buried inside the
    figure harness without changing every figure module's signature.
    """
    previous = get_default_jobs()
    set_default_jobs(jobs)
    try:
        yield jobs
    finally:
        set_default_jobs(previous)


def derive_trial_seeds(
    master_seed: int, count: int, name: str = "trial"
) -> List[int]:
    """Expand one master seed into ``count`` unique per-trial seeds.

    Derivation goes through the same BLAKE2b keyed hash the named random
    streams use, so the expansion is stable across processes and Python
    versions; collisions (astronomically unlikely) are skipped so the
    returned seeds are guaranteed distinct.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    with span("parallel.derive_seeds", count=count):
        seeds: List[int] = []
        seen = set()
        index = 0
        while len(seeds) < count:
            # >> 1 keeps the seed in RandomStreams' non-negative range.
            seed = derive_seed(master_seed, f"{name}:{index}") >> 1
            index += 1
            if seed in seen:
                continue
            seen.add(seed)
            seeds.append(seed)
        return seeds


@dataclass(frozen=True)
class TrialTask:
    """Everything one worker needs to run one trial.

    The topology is built *in the parent* (exactly as the serial path
    does), so topology factories never need to be picklable and
    factory-side global state behaves identically under both backends.
    The pool backend ships it to each worker at most once per content
    digest (see :class:`WorkerPool`).  ``obs_config`` is the picklable
    session recipe from
    :meth:`repro.obs.session.ObsSession.worker_args`, or None when the
    run is unobserved.
    """

    index: int
    topology: Any
    spec: Any
    seed: int
    obs_config: Optional[Dict[str, Any]] = None


@dataclass(frozen=True)
class _WireTask:
    """The lean cross-process form of a :class:`TrialTask`.

    Carries the topology's content digest instead of the topology; the
    worker resolves it against its cache (or the chunk's shipped
    entries).
    """

    index: int
    spec: Any
    seed: int
    obs_config: Optional[Dict[str, Any]]
    digest: str


class TrialExecutionError(RuntimeError):
    """A trial failed inside an executor; carries which one and why."""

    def __init__(self, index: int, seed: int, cause: BaseException) -> None:
        super().__init__(
            f"trial {index} (seed {seed}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.seed = seed
        self.cause = cause


def execute_trial(task: TrialTask) -> TrialOutcome:
    """Run one trial (the worker entry point; also used serially).

    When the task carries an obs recipe, a fresh worker-local
    :class:`~repro.obs.session.ObsSession` observes the run and its
    entire state — metrics, phase timings, probe samples, profiler rows,
    exploration summaries and (when the parent has a trace sink)
    the raw trace records — is returned as a picklable payload for the
    parent session to absorb.
    """
    # Imported here, not at module level: experiment.py imports this
    # module at its top, and workers only pay the import once per process.
    from repro.core.experiment import run_experiment

    obs = None
    spans_ctx = nullcontext()
    if task.obs_config is not None:
        from repro.obs.session import ObsSession

        obs = ObsSession.for_worker(task.obs_config)
        if obs.span_recorder is not None:
            # Worker-local span recording: the records ride home in the
            # obs payload and the parent grafts them under "workers/".
            spans_ctx = record_spans(obs.span_recorder)
    with spans_ctx:
        with span("trial.execute", index=task.index, seed=task.seed):
            result = run_experiment(
                task.topology, task.spec, seed=task.seed, obs=obs
            )
    payload = obs.worker_payload() if obs is not None else None
    return task.index, result, payload


class TrialExecutor:
    """Backend interface: run trial tasks, stream completion ticks."""

    #: Worker count the backend fans out to (1 for serial).
    jobs: int = 1

    def run(
        self,
        tasks: Sequence[TrialTask],
        on_done: Optional[DoneFn] = None,
    ) -> List[TrialOutcome]:
        """Execute every task; return outcomes in *submission* order.

        ``on_done`` is called once per finished trial, in completion
        order (which for process backends is not submission order) —
        it is the progress stream, not the result stream.
        """
        raise NotImplementedError


class SerialExecutor(TrialExecutor):
    """In-process execution, in submission order."""

    def run(
        self,
        tasks: Sequence[TrialTask],
        on_done: Optional[DoneFn] = None,
    ) -> List[TrialOutcome]:
        outcomes: List[TrialOutcome] = []
        for task in tasks:
            try:
                outcome = execute_trial(task)
            except Exception as exc:
                raise TrialExecutionError(task.index, task.seed, exc) from exc
            outcomes.append(outcome)
            if on_done is not None:
                on_done(outcome)
        return outcomes


# ---------------------------------------------------------------------------
# The persistent warm worker pool
# ---------------------------------------------------------------------------

#: Topologies published for fork-inherited copy-on-write sharing.  Set
#: immediately before spawning a worker under the ``fork`` start method
#: and cleared right after (the child's memory snapshot keeps its copy);
#: always empty in steady state.
_FORK_TOPOLOGIES: Dict[str, Any] = {}


def default_start_method() -> str:
    """The pool's process start method (``REPRO_POOL_START_METHOD`` or
    ``fork`` where available, ``spawn`` elsewhere)."""
    override = os.environ.get("REPRO_POOL_START_METHOD")
    if override:
        return override
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


def topology_cache_capacity() -> int:
    """Per-worker topology cache capacity (``REPRO_POOL_TOPOLOGY_CACHE``)."""
    raw = os.environ.get("REPRO_POOL_TOPOLOGY_CACHE")
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            pass
    return DEFAULT_TOPOLOGY_CACHE


def _topology_digest(topology: Any) -> str:
    # Imported lazily: store.hashing pulls in the spec layer, which the
    # serial fast path never needs.
    from repro.store.hashing import topology_digest

    return topology_digest(topology)


def _worker_main(conn: Any, cache_capacity: int) -> None:
    """Worker process loop: receive chunks, run trials, stream results.

    Protocol (parent -> worker): ``("chunk", run_id, chunk_id,
    [wire_tasks], {digest: topology})`` and ``("close",)``.
    Worker -> parent: ``("ready", pid, [pinned digests])`` once at boot,
    then per chunk one ``("done", run_id, outcome)`` or ``("err",
    run_id, index, seed, exception)`` per trial followed by
    ``("chunk_done", run_id, chunk_id, stats)``.
    """
    # A forked child inherits the parent's live span recorder, active
    # obs sessions and open span path — none of which mean anything
    # here.  Reset them so worker observability comes only from each
    # task's obs recipe (exactly what a spawned worker sees).
    from repro.obs import session as _session_mod
    from repro.obs import spans as _spans_mod

    _spans_mod._RECORDER = None
    _spans_mod._PATH.set("")
    _session_mod._ACTIVE.clear()

    pinned: Dict[str, Any] = dict(_FORK_TOPOLOGIES)
    cache: "OrderedDict[str, Any]" = OrderedDict()
    try:
        conn.send(("ready", os.getpid(), sorted(pinned)))
        while True:
            message = conn.recv()
            kind = message[0]
            if kind == "close":
                break
            if kind != "chunk":  # pragma: no cover - future protocol room
                continue
            _, run_id, chunk_id, wire_tasks, shipped = message
            stats = {
                "cache_hits": 0,
                "cache_misses": 0,
                "evictions": 0,
                "shipped": len(shipped),
                "trials": 0,
            }
            for digest, topology in shipped.items():
                cache[digest] = topology
                cache.move_to_end(digest)
                while len(cache) > cache_capacity:
                    cache.popitem(last=False)
                    stats["evictions"] += 1
            fresh: Set[str] = set(shipped)
            for wire in wire_tasks:
                digest = wire.digest
                topology = pinned.get(digest)
                if topology is None:
                    topology = cache.get(digest)
                    if topology is not None:
                        cache.move_to_end(digest)
                if digest in fresh:
                    fresh.discard(digest)
                    stats["cache_misses"] += 1
                else:
                    stats["cache_hits"] += 1
                if topology is None:
                    # Parent/worker cache models diverged — a protocol
                    # bug, surfaced as a per-trial error so the run
                    # fails loudly instead of hanging.
                    conn.send(
                        (
                            "err",
                            run_id,
                            wire.index,
                            wire.seed,
                            RuntimeError(
                                f"worker lost topology {digest} "
                                f"(cache capacity {cache_capacity})"
                            ),
                        )
                    )
                    continue
                task = TrialTask(
                    index=wire.index,
                    topology=topology,
                    spec=wire.spec,
                    seed=wire.seed,
                    obs_config=wire.obs_config,
                )
                try:
                    outcome = execute_trial(task)
                except Exception as exc:
                    try:
                        conn.send(
                            ("err", run_id, wire.index, wire.seed, exc)
                        )
                    except Exception:
                        # The exception itself would not pickle; ship a
                        # faithful textual stand-in instead.
                        conn.send(
                            (
                                "err",
                                run_id,
                                wire.index,
                                wire.seed,
                                RuntimeError(
                                    f"{type(exc).__name__}: {exc}"
                                ),
                            )
                        )
                else:
                    conn.send(("done", run_id, outcome))
                stats["trials"] += 1
            conn.send(("chunk_done", run_id, chunk_id, stats))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        conn.close()


class _WorkerHandle:
    """Parent-side bookkeeping for one pool worker."""

    __slots__ = (
        "process",
        "conn",
        "pinned",
        "holds",
        "ready",
        "spawned_at",
        "spinup_seconds",
        "runs_served",
        "inflight",
        "remaining",
        "alive",
    )

    def __init__(self, process: Any, conn: Any, pinned: Set[str]) -> None:
        self.process = process
        self.conn = conn
        #: Digests pinned by fork inheritance (never evicted).
        self.pinned = pinned
        #: Mirror of the worker's LRU cache (insertion == recency order).
        self.holds: "OrderedDict[str, bool]" = OrderedDict()
        self.ready = False
        self.spawned_at = time.perf_counter()
        self.spinup_seconds: Optional[float] = None
        self.runs_served = 0
        #: Chunks sent but not yet chunk_done-acknowledged.
        self.inflight = 0
        #: (run_id, chunk_id) -> {index: seed} still unanswered.
        self.remaining: Dict[Tuple[int, int], Dict[int, int]] = {}
        self.alive = True

    def holds_digest(self, digest: str) -> bool:
        return digest in self.pinned or digest in self.holds

    def model_use(
        self, digest: str, shipped: bool, capacity: int
    ) -> None:
        """Mirror the worker's cache update for one dispatched chunk."""
        if digest in self.pinned:
            return
        self.holds[digest] = True
        self.holds.move_to_end(digest)
        if shipped:
            while len(self.holds) > capacity:
                self.holds.popitem(last=False)

    def take_remaining(self) -> List[Tuple[int, int]]:
        """All unanswered (index, seed) pairs (worker-death recovery)."""
        lost = [
            (index, seed)
            for chunk in self.remaining.values()
            for index, seed in chunk.items()
        ]
        self.remaining.clear()
        return lost


@dataclass
class PoolRunStats:
    """What one :meth:`WorkerPool.run` call cost and reused."""

    jobs: int = 0
    tasks: int = 0
    chunks: int = 0
    chunk_size: int = 0
    unique_topologies: int = 0
    shipped_topologies: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    evictions: int = 0
    workers_spawned: int = 0
    workers_reused: int = 0
    #: True warm-up: seconds from spawning the slowest new worker to its
    #: ready handshake (0.0 when every worker was reused).
    spinup_seconds: float = 0.0
    #: 1-based index of this run in the pool's lifetime (reuse counter).
    pool_run: int = 0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "jobs": self.jobs,
            "tasks": self.tasks,
            "chunks": self.chunks,
            "chunk_size": self.chunk_size,
            "unique_topologies": self.unique_topologies,
            "shipped_topologies": self.shipped_topologies,
            "topology_cache_hits": self.cache_hits,
            "topology_cache_misses": self.cache_misses,
            "topology_cache_hit_rate": round(self.cache_hit_rate, 4),
            "evictions": self.evictions,
            "workers_spawned": self.workers_spawned,
            "workers_reused": self.workers_reused,
            "spinup_seconds": round(self.spinup_seconds, 6),
            "pool_run": self.pool_run,
        }


class WorkerPool:
    """A persistent pool of warm trial workers with topology caches.

    One instance normally serves the whole process (see
    :func:`get_worker_pool`); tests construct private pools to control
    ``start_method`` and ``cache_capacity``.  Workers are spawned on
    demand (up to the largest ``jobs`` ever requested), survive across
    ``run()`` calls, and are reaped by :meth:`close` or at interpreter
    exit.
    """

    def __init__(
        self,
        start_method: Optional[str] = None,
        cache_capacity: Optional[int] = None,
    ) -> None:
        self.start_method = start_method or default_start_method()
        self._ctx = multiprocessing.get_context(self.start_method)
        self.cache_capacity = (
            cache_capacity
            if cache_capacity is not None
            else topology_cache_capacity()
        )
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        self._workers: List[_WorkerHandle] = []
        self._run_counter = 0
        self.closed = False
        #: Lifetime counters (the bench reads deltas around each run).
        self.totals: Dict[str, float] = {
            "runs": 0,
            "tasks": 0,
            "chunks": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "evictions": 0,
            "shipped_topologies": 0,
            "workers_spawned": 0,
            "workers_reused": 0,
            "spinup_seconds": 0.0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def workers_alive(self) -> int:
        return sum(1 for w in self._workers if w.alive)

    def _spawn_worker(self, fork_topologies: Dict[str, Any]) -> _WorkerHandle:
        global _FORK_TOPOLOGIES
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        publish = fork_topologies if self.start_method == "fork" else {}
        _FORK_TOPOLOGIES = publish
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self.cache_capacity),
                daemon=True,
                name="repro-pool-worker",
            )
            process.start()
        finally:
            # The forked child snapshotted the dict at start(); the
            # parent must not keep topologies alive beyond the run.
            _FORK_TOPOLOGIES = {}
        child_conn.close()
        # Under fork the inheritance is certain, so the parent can plan
        # around it before the ready handshake arrives; the handshake
        # corrects the model under spawn (where nothing is inherited).
        handle = _WorkerHandle(process, parent_conn, set(publish))
        self._workers.append(handle)
        self.totals["workers_spawned"] += 1
        return handle

    def prewarm(self, jobs: int, timeout: float = 30.0) -> int:
        """Spawn up to ``jobs`` workers now; wait for their handshakes.

        Normally workers boot lazily on the first ``run()``.  The
        campaign service prewarms instead: under the ``fork`` start
        method children must be forked before the daemon starts its HTTP
        handler threads (forking a multi-threaded process risks
        inheriting locks mid-acquire), and an eager boot also moves the
        spin-up cost out of the first request's latency.  Returns the
        number of workers that completed the ready handshake within
        ``timeout`` (stragglers stay usable — the handshake is folded in
        during the next run).
        """
        if self.closed:
            raise RuntimeError("cannot prewarm a closed WorkerPool")
        while self.workers_alive < jobs:
            self._spawn_worker({})
        deadline = time.monotonic() + timeout
        while True:
            waiting = [w for w in self._workers if w.alive and not w.ready]
            if not waiting:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            for conn in _connection_wait(
                [w.conn for w in waiting], timeout=remaining
            ):
                worker = next(w for w in waiting if w.conn is conn)
                try:
                    self._bookkeep(worker, conn.recv(), None, None)
                except (EOFError, OSError):
                    worker.alive = False
                    worker.take_remaining()
        return sum(1 for w in self._workers if w.alive and w.ready)

    def close(self, timeout: float = 5.0) -> None:
        """Shut every worker down and mark the pool unusable.

        ``timeout`` bounds the cooperative join; workers still alive
        after it are terminated.  The service daemon passes its drain
        budget through here so SIGTERM never hangs on a stuck worker.
        """
        if self.closed:
            return
        self.closed = True
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                worker.conn.send(("close",))
            except (OSError, ValueError):
                pass
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.join(max(0.0, deadline - time.monotonic()))
            if worker.process.is_alive():  # pragma: no cover - stragglers
                worker.process.terminate()
                worker.process.join(1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            worker.alive = False
        self._workers.clear()

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, float]:
        """Cumulative lifetime counters (copy; see also PoolRunStats)."""
        snapshot = dict(self.totals)
        snapshot["workers_alive"] = self.workers_alive
        return snapshot

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[TrialTask],
        jobs: int,
        on_done: Optional[DoneFn] = None,
        chunk_size: Optional[int] = None,
    ) -> Tuple[List[TrialOutcome], PoolRunStats]:
        """Execute every task; fail fast on the first trial error.

        Returns outcomes in submission order plus this run's
        :class:`PoolRunStats`.  The first worker-reported failure raises
        :class:`TrialExecutionError`; chunks already in worker pipes
        finish harmlessly (their stale results are drained by the next
        run).
        """
        if not tasks:
            return [], PoolRunStats(jobs=jobs)
        position = {task.index: i for i, task in enumerate(tasks)}
        outcomes: List[Optional[TrialOutcome]] = [None] * len(tasks)
        stats = PoolRunStats()
        for event in self._stream(tasks, jobs, chunk_size, stats):
            kind = event[0]
            if kind == "done":
                outcome = event[1]
                outcomes[position[outcome[0]]] = outcome
                if on_done is not None:
                    on_done(outcome)
            else:
                _, index, seed, cause = event
                if not isinstance(cause, BaseException):
                    cause = RuntimeError(str(cause))
                raise TrialExecutionError(index, seed, cause) from cause
        assert all(outcome is not None for outcome in outcomes)
        return outcomes, stats  # type: ignore[return-value]

    def run_guarded(
        self,
        tasks: Sequence[TrialTask],
        jobs: int,
        chunk_size: Optional[int] = None,
    ) -> Iterator[GuardedOutcome]:
        """Execute every task, yielding failures instead of raising.

        The campaign retry loop's backend: outcomes stream in completion
        order as ``(index, result, payload, error)`` with exactly one
        entry per task — worker-side exceptions and worker deaths become
        error strings on the affected trials, never pool-wide aborts.
        """
        stats = PoolRunStats()
        for event in self._stream(tasks, jobs, chunk_size, stats):
            if event[0] == "done":
                index, result, payload = event[1]
                yield index, result, payload, None
            else:
                _, index, seed, cause = event
                yield index, None, None, (
                    f"{type(cause).__name__}: {cause}"
                    if isinstance(cause, BaseException)
                    else str(cause)
                )

    # -- scheduling internals -------------------------------------------
    def _auto_chunk_size(self, n_tasks: int, workers: int) -> int:
        override = os.environ.get("REPRO_POOL_CHUNK")
        if override:
            try:
                return max(1, int(override))
            except ValueError:
                pass
        # ~4 chunks per worker balances stragglers against per-message
        # overhead; tiny runs degrade to one trial per chunk.
        return max(1, math.ceil(n_tasks / (workers * 4)))

    def _select_workers(
        self, want: int, digests: Sequence[str]
    ) -> List[_WorkerHandle]:
        """Up to ``want`` alive workers, warmest-cache first."""
        alive = [w for w in self._workers if w.alive]
        wanted = set(digests)
        ranked = sorted(
            range(len(alive)),
            key=lambda i: (
                -sum(1 for d in wanted if alive[i].holds_digest(d)),
                i,
            ),
        )
        return [alive[i] for i in ranked[:want]]

    def _drain_stale(self) -> None:
        """Consume leftover messages from aborted runs (bookkeeping only)."""
        for worker in self._workers:
            if not worker.alive:
                continue
            try:
                while worker.conn.poll(0):
                    self._bookkeep(worker, worker.conn.recv(), None, None)
            except (EOFError, OSError):
                worker.alive = False

    def _bookkeep(
        self,
        worker: _WorkerHandle,
        message: Tuple[Any, ...],
        run_id: Optional[int],
        stats: Optional[PoolRunStats],
    ) -> Optional[Tuple[Any, ...]]:
        """Process one worker message; return an event for live results.

        Handshakes and chunk acknowledgements are folded into pool state
        whatever run they belong to (that is what lets an aborted run's
        stragglers settle); ``done``/``err`` messages are returned to the
        scheduler only when they belong to the current run.
        """
        kind = message[0]
        if kind == "ready":
            worker.ready = True
            worker.spinup_seconds = time.perf_counter() - worker.spawned_at
            worker.pinned = set(message[2])
            self.totals["spinup_seconds"] += worker.spinup_seconds
            return None
        if kind == "chunk_done":
            _, msg_run, chunk_id, chunk_stats = message
            worker.inflight = max(0, worker.inflight - 1)
            worker.remaining.pop((msg_run, chunk_id), None)
            self.totals["cache_hits"] += chunk_stats["cache_hits"]
            self.totals["cache_misses"] += chunk_stats["cache_misses"]
            self.totals["evictions"] += chunk_stats["evictions"]
            if stats is not None and msg_run == run_id:
                stats.cache_hits += chunk_stats["cache_hits"]
                stats.cache_misses += chunk_stats["cache_misses"]
                stats.evictions += chunk_stats["evictions"]
            return None
        if kind == "done":
            _, msg_run, outcome = message
            if msg_run != run_id:
                return None
            worker_remaining = worker.remaining
            for key in list(worker_remaining):
                if key[0] == msg_run:
                    worker_remaining[key].pop(outcome[0], None)
            return ("done", outcome)
        if kind == "err":
            _, msg_run, index, seed, cause = message
            if msg_run != run_id:
                return None
            for key in list(worker.remaining):
                if key[0] == msg_run:
                    worker.remaining[key].pop(index, None)
            return ("err", index, seed, cause)
        return None  # pragma: no cover - unknown message kind

    def _stream(
        self,
        tasks: Sequence[TrialTask],
        jobs: int,
        chunk_size: Optional[int],
        stats: PoolRunStats,
    ) -> Iterator[Tuple[Any, ...]]:
        """The scheduler: dispatch chunks with affinity, stream events.

        Yields exactly one ``("done", outcome)`` or ``("err", index,
        seed, cause)`` event per task.
        """
        if self.closed:
            raise RuntimeError("worker pool is closed")
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self._run_counter += 1
        run_id = self._run_counter
        self.totals["runs"] += 1
        self.totals["tasks"] += len(tasks)

        # Content digests, memoized per topology object within the run
        # (campaigns reuse one object per seed; sweeps rebuild per
        # fraction but identical content still shares a digest).
        digest_memo: Dict[int, str] = {}
        topology_by_digest: "OrderedDict[str, Any]" = OrderedDict()
        task_digests: List[str] = []
        with span("pool.digest", tasks=len(tasks)):
            for task in tasks:
                digest = digest_memo.get(id(task.topology))
                if digest is None:
                    digest = _topology_digest(task.topology)
                    digest_memo[id(task.topology)] = digest
                topology_by_digest.setdefault(digest, task.topology)
                task_digests.append(digest)

        want = max(1, min(jobs, len(tasks)))
        alive_before = self.workers_alive
        spawned_this_run: List[_WorkerHandle] = []
        while self.workers_alive < want:
            spawned_this_run.append(
                self._spawn_worker(dict(topology_by_digest))
            )
        workers = self._select_workers(want, list(topology_by_digest))
        for worker in workers:
            worker.runs_served += 1
        stats.jobs = want
        stats.tasks = len(tasks)
        stats.unique_topologies = len(topology_by_digest)
        stats.workers_spawned = max(0, want - alive_before)
        stats.workers_reused = min(want, alive_before)
        stats.pool_run = run_id
        self.totals["workers_reused"] += stats.workers_reused

        self._drain_stale()

        # Chunk the grid: group by digest (submission order preserved
        # within a group) so one message's trials share one topology.
        if chunk_size is None:
            chunk_size = self._auto_chunk_size(len(tasks), want)
        stats.chunk_size = chunk_size
        groups: "OrderedDict[str, List[TrialTask]]" = OrderedDict()
        for task, digest in zip(tasks, task_digests):
            groups.setdefault(digest, []).append(task)
        pending: deque = deque()
        chunk_id = 0
        for digest, members in groups.items():
            for i in range(0, len(members), chunk_size):
                pending.append((chunk_id, digest, members[i : i + chunk_size]))
                chunk_id += 1
        stats.chunks = chunk_id
        self.totals["chunks"] += chunk_id

        def dispatch() -> None:
            """Send queued chunks to free workers, warm caches first."""
            while pending:
                free = [
                    w
                    for w in workers
                    if w.alive and w.inflight < _MAX_INFLIGHT_CHUNKS
                ]
                if not free:
                    return
                free.sort(key=lambda w: w.inflight)
                sent = False
                for worker in free:
                    chosen = None
                    for i, chunk in enumerate(pending):
                        if worker.holds_digest(chunk[1]):
                            chosen = i
                            break
                    if chosen is None:
                        # No warm chunk for this worker: only take the
                        # head chunk if no *other* free worker is warm
                        # for it (it will claim it in its own turn).
                        head = pending[0]
                        if any(
                            w is not worker and w.holds_digest(head[1])
                            for w in free
                        ):
                            continue
                        chosen = 0
                    cid, digest, members = pending[chosen]
                    del pending[chosen]
                    shipped: Dict[str, Any] = {}
                    if not worker.holds_digest(digest):
                        shipped[digest] = topology_by_digest[digest]
                        stats.shipped_topologies += 1
                        self.totals["shipped_topologies"] += 1
                    worker.model_use(
                        digest, bool(shipped), self.cache_capacity
                    )
                    wire_tasks = [
                        _WireTask(
                            index=t.index,
                            spec=t.spec,
                            seed=t.seed,
                            obs_config=t.obs_config,
                            digest=digest,
                        )
                        for t in members
                    ]
                    with span(
                        "pool.submit", chunk=cid, trials=len(members)
                    ):
                        try:
                            worker.conn.send(
                                ("chunk", run_id, cid, wire_tasks, shipped)
                            )
                        except (OSError, ValueError):
                            worker.alive = False
                            pending.appendleft((cid, digest, members))
                            break
                    worker.inflight += 1
                    worker.remaining[(run_id, cid)] = {
                        t.index: t.seed for t in members
                    }
                    sent = True
                    break
                if not sent:
                    return

        emitted = 0
        total = len(tasks)
        dispatch()
        while emitted < total:
            watched = [
                w
                for w in self._workers
                if w.alive and (w.inflight > 0 or not w.ready)
            ]
            if not watched:
                if pending and not self.closed:
                    # Every worker died with chunks still queued: spawn
                    # a replacement and keep going (campaign retries
                    # decide whether the failure was environmental).
                    replacement = self._spawn_worker(
                        dict(topology_by_digest)
                    )
                    workers.append(replacement)
                    spawned_this_run.append(replacement)
                    stats.workers_spawned += 1
                    dispatch()
                    continue
                # Nothing running and nothing to dispatch: the missing
                # outcomes are unrecoverable.
                for cid, digest, members in list(pending):
                    for t in members:
                        emitted += 1
                        yield (
                            "err",
                            t.index,
                            t.seed,
                            RuntimeError("worker pool lost the trial"),
                        )
                pending.clear()
                if emitted < total:
                    return
                break
            ready_conns = _connection_wait([w.conn for w in watched])
            by_conn = {w.conn: w for w in watched}
            for conn in ready_conns:
                worker = by_conn[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    worker.alive = False
                    lost = worker.take_remaining()
                    dead = RuntimeError(
                        f"worker process died "
                        f"(pid {worker.process.pid}, exit "
                        f"{worker.process.exitcode})"
                    )
                    for index, seed in lost:
                        emitted += 1
                        yield ("err", index, seed, dead)
                    dispatch()
                    continue
                event = self._bookkeep(worker, message, run_id, stats)
                dispatch()
                if event is not None:
                    emitted += 1
                    yield event
        # Every outcome is out, but the trailing chunk_done
        # acknowledgements (sent right after each chunk's last result)
        # may still sit in the pipes; settle them so this run's cache
        # stats are complete and inflight bookkeeping is exact.  Bounded
        # wait: a worker still crunching an *aborted* earlier run must
        # not stall this one.
        settle_deadline = time.monotonic() + 2.0
        while time.monotonic() < settle_deadline:
            owing = [
                w
                for w in self._workers
                if w.alive
                and any(key[0] == run_id for key in w.remaining)
            ]
            if not owing:
                break
            for conn in _connection_wait(
                [w.conn for w in owing], timeout=0.05
            ):
                worker = next(w for w in owing if w.conn is conn)
                try:
                    self._bookkeep(worker, conn.recv(), run_id, stats)
                except (EOFError, OSError):
                    worker.alive = False
                    worker.take_remaining()
        # True warm-up cost of this run: spawn-to-ready of the slowest
        # worker it had to boot (0.0 when the whole pool was warm).
        stats.spinup_seconds = max(
            (
                w.spinup_seconds
                for w in spawned_this_run
                if w.spinup_seconds is not None
            ),
            default=0.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<WorkerPool method={self.start_method} "
            f"workers={self.workers_alive} runs={int(self.totals['runs'])}>"
        )


#: The process-wide pool (created lazily, reaped at exit).
_POOL: Optional[WorkerPool] = None


def get_worker_pool() -> WorkerPool:
    """The process-wide warm pool, created on first use."""
    global _POOL
    if _POOL is None or _POOL.closed:
        _POOL = WorkerPool()
    return _POOL


def shutdown_worker_pool(timeout: Optional[float] = None) -> None:
    """Close the process-wide pool (a new one is created on next use).

    ``timeout`` optionally bounds the worker join (see
    :meth:`WorkerPool.close`); None keeps the default.
    """
    global _POOL
    if _POOL is not None:
        if timeout is None:
            _POOL.close()
        else:
            _POOL.close(timeout=timeout)
        _POOL = None


@atexit.register
def _shutdown_at_exit() -> None:  # pragma: no cover - interpreter teardown
    shutdown_worker_pool()


def pool_stats() -> Dict[str, float]:
    """Cumulative stats of the process-wide pool (zeros before first use)."""
    if _POOL is None:
        return {
            "runs": 0,
            "tasks": 0,
            "chunks": 0,
            "cache_hits": 0,
            "cache_misses": 0,
            "evictions": 0,
            "shipped_topologies": 0,
            "workers_spawned": 0,
            "workers_reused": 0,
            "spinup_seconds": 0.0,
            "workers_alive": 0,
        }
    return _POOL.stats_snapshot()


class ProcessExecutor(TrialExecutor):
    """Whole-trial fan-out over the persistent :class:`WorkerPool`.

    Per-trial work segregation (one worker owns one trial end to end,
    FRR-style) means workers never share simulator state; the only
    cross-process traffic is the lean wire task going out (topology
    shipped once per worker per digest, or inherited copy-on-write under
    fork) and the ``(result, obs payload)`` coming back.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        pool: Optional[WorkerPool] = None,
        chunk_size: Optional[int] = None,
    ) -> None:
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        self._pool = pool
        self.chunk_size = chunk_size
        #: Stats of the most recent :meth:`run` (None before the first).
        self.last_stats: Optional[PoolRunStats] = None

    @property
    def pool(self) -> WorkerPool:
        return self._pool if self._pool is not None else get_worker_pool()

    def run(
        self,
        tasks: Sequence[TrialTask],
        on_done: Optional[DoneFn] = None,
    ) -> List[TrialOutcome]:
        if not tasks:
            return []
        pool = self.pool
        workers = min(self.jobs, len(tasks))
        with span("pool.run", jobs=workers, tasks=len(tasks)) as pool_span:
            with span("pool.collect", tasks=len(tasks)):
                outcomes, stats = pool.run(
                    tasks,
                    jobs=self.jobs,
                    on_done=on_done,
                    chunk_size=self.chunk_size,
                )
            self.last_stats = stats
            pool_span.set(**stats.as_dict())
        return outcomes


def make_executor(jobs: int) -> TrialExecutor:
    """The standard backend for a worker count: serial at 1, processes above."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ProcessExecutor(jobs)
