"""Parallel trial execution: fan whole trials out across worker processes.

Every figure in the paper is a sweep of many *independent* trials — each
one a full warm-up + failure + convergence simulation with its own
topology and seed — which makes the workload embarrassingly parallel the
same way SSFNet's parallel event-driven substrate exploited.  This module
adds the execution backend the serial drivers lacked:

* :class:`TrialExecutor` — the backend interface: map a list of
  :class:`TrialTask` objects to ``(index, TrialResult, obs payload)``
  triples, reporting a completion tick per finished trial;
* :class:`SerialExecutor` — runs tasks in-process, in order.  Exists so
  the two backends are *symmetric*: both round-trip observability through
  the same picklable payloads, so switching backends never changes what a
  session records;
* :class:`ProcessExecutor` — ``concurrent.futures.ProcessPoolExecutor``
  fan-out.  Trials complete out of order; the caller folds results back
  in submission (seed) order, which is what makes a parallel
  :class:`~repro.core.experiment.ExperimentResult` *bit-identical* to a
  serial one on the same master seed.

Determinism contract
--------------------
A trial is a pure function of ``(topology, spec, seed)``: random streams
are derived via BLAKE2b (process-independent, ``PYTHONHASHSEED``-immune),
topologies are built in the parent exactly as the serial path does, and
results are folded in task order regardless of completion order.  Workers
therefore produce the identical :class:`TrialResult` the parent would
have, and ``jobs=N`` equals ``jobs=1`` bit for bit.

The ``--jobs`` default used by the sweep drivers is a module-level
setting so deep call stacks (the figure harness) pick it up without
threading a parameter through thirteen figure modules::

    with parallel_jobs(4):
        compute_figure("fig03")
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.spans import record_spans, span
from repro.sim.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import TrialResult

#: A finished trial: (submission index, measurement, obs payload or None).
TrialOutcome = Tuple[int, "TrialResult", Optional[Dict[str, Any]]]

#: Per-completion callback (called once per finished trial, any order).
DoneFn = Callable[[TrialOutcome], None]

#: Module-level default for ``jobs`` when callers pass None (see
#: :func:`parallel_jobs`); 1 keeps every entry point serial by default.
_DEFAULT_JOBS = 1


def get_default_jobs() -> int:
    """The process-wide default worker count (1 = serial)."""
    return _DEFAULT_JOBS


def set_default_jobs(jobs: int) -> None:
    """Set the process-wide default worker count."""
    global _DEFAULT_JOBS
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    _DEFAULT_JOBS = jobs


@contextmanager
def parallel_jobs(jobs: int) -> Iterator[int]:
    """Scope the default worker count to a ``with`` block.

    This is how the CLI's ``--jobs`` reaches sweeps buried inside the
    figure harness without changing every figure module's signature.
    """
    previous = get_default_jobs()
    set_default_jobs(jobs)
    try:
        yield jobs
    finally:
        set_default_jobs(previous)


def derive_trial_seeds(
    master_seed: int, count: int, name: str = "trial"
) -> List[int]:
    """Expand one master seed into ``count`` unique per-trial seeds.

    Derivation goes through the same BLAKE2b keyed hash the named random
    streams use, so the expansion is stable across processes and Python
    versions; collisions (astronomically unlikely) are skipped so the
    returned seeds are guaranteed distinct.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    with span("parallel.derive_seeds", count=count):
        seeds: List[int] = []
        seen = set()
        index = 0
        while len(seeds) < count:
            # >> 1 keeps the seed in RandomStreams' non-negative range.
            seed = derive_seed(master_seed, f"{name}:{index}") >> 1
            index += 1
            if seed in seen:
                continue
            seen.add(seed)
            seeds.append(seed)
        return seeds


@dataclass(frozen=True)
class TrialTask:
    """Everything one worker needs to run one trial.

    The topology is built *in the parent* (exactly as the serial path
    does) and shipped whole, so topology factories never need to be
    picklable and factory-side global state behaves identically under
    both backends.  ``obs_config`` is the picklable session recipe from
    :meth:`repro.obs.session.ObsSession.worker_args`, or None when the
    run is unobserved.
    """

    index: int
    topology: Any
    spec: Any
    seed: int
    obs_config: Optional[Dict[str, Any]] = None


class TrialExecutionError(RuntimeError):
    """A trial failed inside an executor; carries which one and why."""

    def __init__(self, index: int, seed: int, cause: BaseException) -> None:
        super().__init__(
            f"trial {index} (seed {seed}) failed: "
            f"{type(cause).__name__}: {cause}"
        )
        self.index = index
        self.seed = seed
        self.cause = cause


def execute_trial(task: TrialTask) -> TrialOutcome:
    """Run one trial (the worker entry point; also used serially).

    When the task carries an obs recipe, a fresh worker-local
    :class:`~repro.obs.session.ObsSession` observes the run and its
    entire state — metrics, phase timings, probe samples, profiler rows,
    exploration summaries and (when the parent has a trace sink)
    the raw trace records — is returned as a picklable payload for the
    parent session to absorb.
    """
    # Imported here, not at module level: experiment.py imports this
    # module at its top, and workers only pay the import once per process.
    from repro.core.experiment import run_experiment

    obs = None
    spans_ctx = nullcontext()
    if task.obs_config is not None:
        from repro.obs.session import ObsSession

        obs = ObsSession.for_worker(task.obs_config)
        if obs.span_recorder is not None:
            # Worker-local span recording: the records ride home in the
            # obs payload and the parent grafts them under "workers/".
            spans_ctx = record_spans(obs.span_recorder)
    with spans_ctx:
        with span("trial.execute", index=task.index, seed=task.seed):
            result = run_experiment(
                task.topology, task.spec, seed=task.seed, obs=obs
            )
    payload = obs.worker_payload() if obs is not None else None
    return task.index, result, payload


class TrialExecutor:
    """Backend interface: run trial tasks, stream completion ticks."""

    #: Worker count the backend fans out to (1 for serial).
    jobs: int = 1

    def run(
        self,
        tasks: Sequence[TrialTask],
        on_done: Optional[DoneFn] = None,
    ) -> List[TrialOutcome]:
        """Execute every task; return outcomes in *submission* order.

        ``on_done`` is called once per finished trial, in completion
        order (which for process backends is not submission order) —
        it is the progress stream, not the result stream.
        """
        raise NotImplementedError


class SerialExecutor(TrialExecutor):
    """In-process execution, in submission order."""

    def run(
        self,
        tasks: Sequence[TrialTask],
        on_done: Optional[DoneFn] = None,
    ) -> List[TrialOutcome]:
        outcomes: List[TrialOutcome] = []
        for task in tasks:
            try:
                outcome = execute_trial(task)
            except Exception as exc:
                raise TrialExecutionError(task.index, task.seed, exc) from exc
            outcomes.append(outcome)
            if on_done is not None:
                on_done(outcome)
        return outcomes


class ProcessExecutor(TrialExecutor):
    """Whole-trial fan-out over a process pool.

    Per-trial work segregation (one worker owns one trial end to end,
    FRR-style) means workers never share simulator state; the only
    cross-process traffic is the pickled task going out and the
    ``(result, obs payload)`` coming back.
    """

    def __init__(self, jobs: Optional[int] = None) -> None:
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")

    def run(
        self,
        tasks: Sequence[TrialTask],
        on_done: Optional[DoneFn] = None,
    ) -> List[TrialOutcome]:
        if not tasks:
            return []
        outcomes: List[Optional[TrialOutcome]] = [None] * len(tasks)
        workers = min(self.jobs, len(tasks))
        pending: set = set()
        with span(
            "pool.run", jobs=workers, tasks=len(tasks)
        ) as pool_span:
            spinup_start = time.perf_counter()
            pool = ProcessPoolExecutor(max_workers=workers)
            pool_span.set(
                spinup_seconds=round(
                    time.perf_counter() - spinup_start, 6
                )
            )
            try:
                with span("pool.submit", tasks=len(tasks)):
                    futures = {
                        pool.submit(execute_trial, task): (position, task)
                        for position, task in enumerate(tasks)
                    }
                    pending = set(futures)
                with span("pool.collect", tasks=len(tasks)):
                    while pending:
                        done, pending = wait(
                            pending, return_when=FIRST_EXCEPTION
                        )
                        for future in done:
                            position, task = futures[future]
                            try:
                                outcome = future.result()
                            except Exception as exc:
                                raise TrialExecutionError(
                                    task.index, task.seed, exc
                                ) from exc
                            outcomes[position] = outcome
                            if on_done is not None:
                                on_done(outcome)
            except BaseException:
                # A worker raised (TrialExecutionError) or the caller
                # interrupted: cancel what hasn't started and tear the
                # pool down without waiting on stragglers.
                for future in pending:
                    future.cancel()
                pool.shutdown(wait=False, cancel_futures=True)
                raise
            finally:
                # Always reached — on the failure path this is a no-op
                # second shutdown; on success it reaps the workers.
                pool.shutdown(wait=True)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]


def make_executor(jobs: int) -> TrialExecutor:
    """The standard backend for a worker count: serial at 1, processes above."""
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ProcessExecutor(jobs)
