"""The paper's contributions and the convergence-experiment driver.

* :mod:`repro.core.degree_mrai` — degree-dependent static MRAI (Sec 4.2);
* :mod:`repro.core.dynamic_mrai` — the dynamic MRAI scheme with queue /
  utilization / message-count overload monitors (Sec 4.3);
* :mod:`repro.core.experiment` — warm-up, failure injection, convergence
  measurement, multi-trial aggregation;
* :mod:`repro.core.parallel` — trial-execution backends (serial, and a
  persistent warm worker pool with per-worker topology caches) with
  deterministic seed fan-out;
* :mod:`repro.core.sweep` — parameter sweeps producing the series behind
  every figure;
* :mod:`repro.core.validation` — post-convergence routing correctness
  checks (reachability soundness/completeness, forwarding loop freedom).
"""

from repro.core.adaptive import AdaptiveExtentMRAI, FailureExtentController
from repro.core.degree_mrai import DegreeDependentMRAI
from repro.core.dynamic_mrai import (
    DynamicController,
    DynamicMRAI,
    MessageCountController,
    UtilizationController,
)
from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    Progress,
    TrialResult,
    run_experiment,
    run_trials,
)
from repro.core.parallel import (
    PoolRunStats,
    ProcessExecutor,
    SerialExecutor,
    TrialExecutionError,
    TrialExecutor,
    TrialTask,
    WorkerPool,
    derive_trial_seeds,
    get_default_jobs,
    get_worker_pool,
    make_executor,
    parallel_jobs,
    pool_stats,
    set_default_jobs,
    shutdown_worker_pool,
)
from repro.core.sweep import Series, SweepPoint, failure_size_sweep, mrai_sweep
from repro.core.theory import (
    labovitz_clique_bound,
    pei_unloaded_bound,
    recommend_ladder,
    recommend_mrai,
    saturation_mrai_ratio,
)
from repro.core.validation import RoutingViolation, validate_routing

__all__ = [
    "AdaptiveExtentMRAI",
    "DegreeDependentMRAI",
    "FailureExtentController",
    "DynamicController",
    "DynamicMRAI",
    "ExperimentResult",
    "ExperimentSpec",
    "MessageCountController",
    "PoolRunStats",
    "ProcessExecutor",
    "Progress",
    "RoutingViolation",
    "SerialExecutor",
    "Series",
    "SweepPoint",
    "TrialExecutionError",
    "TrialExecutor",
    "TrialResult",
    "TrialTask",
    "UtilizationController",
    "WorkerPool",
    "derive_trial_seeds",
    "failure_size_sweep",
    "get_default_jobs",
    "get_worker_pool",
    "labovitz_clique_bound",
    "make_executor",
    "mrai_sweep",
    "parallel_jobs",
    "pei_unloaded_bound",
    "pool_stats",
    "recommend_ladder",
    "recommend_mrai",
    "run_experiment",
    "run_trials",
    "set_default_jobs",
    "saturation_mrai_ratio",
    "shutdown_worker_pool",
    "validate_routing",
]
