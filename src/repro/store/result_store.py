"""The persistent trial store: SQLite-backed, content-addressed, WAL mode.

One row per trial, keyed by :func:`repro.store.hashing.spec_hash`.  The
row carries the full :class:`~repro.core.experiment.TrialResult` payload
plus provenance — which campaign/run wrote it, at which git revision,
when, and how much wall clock the simulation cost (so a store can report
how much compute it has banked).  A second table records one manifest
row per campaign run, giving ``repro-bgp campaign status`` its history.
The queue/ticket tables that turn a store into a campaign-service
backend live in :mod:`repro.store.queue` and are mixed in here.

Concurrency contract: **any number of processes and threads may share
one store file**.  Simulation workers still never touch SQLite — they
return results over the pool pipe exactly as in
:mod:`repro.core.parallel` and their parent banks them — but several
such parents (the service daemon, extra executor drainers, a CLI
``campaign run``) may write the same file concurrently.  Three layers
make that safe:

* WAL mode, so readers never block the writer;
* ``PRAGMA busy_timeout`` on every connection, so a write that meets a
  competing write lock waits instead of failing instantly;
* every database access goes through :meth:`ResultStore._read` /
  :meth:`ResultStore._write`, which serialize threads within one handle
  (the HTTP API threads and the executor thread share a handle) and
  retry the whole operation on ``database is locked`` — the one case
  ``busy_timeout`` cannot cover, an immediate SQLITE_BUSY when a read
  transaction tries to upgrade to a write lock.

Each ``put`` stays durable on its own commit, which is what makes a
Ctrl-C'd sweep resumable — every finished trial is already on disk.
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import fields as dataclass_fields
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    TypeVar,
    Union,
)

from repro.obs.spans import span
from repro.store.hashing import SCHEMA_VERSION
from repro.store.queue import QUEUE_SCHEMA, QueueOps

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import TrialResult

T = TypeVar("T")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    key            TEXT PRIMARY KEY,
    seed           INTEGER NOT NULL,
    result         TEXT NOT NULL,
    fingerprint    TEXT,
    run_id         TEXT NOT NULL,
    git_rev        TEXT,
    schema_version INTEGER NOT NULL,
    created_utc    TEXT NOT NULL,
    wall_seconds   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    run_id      TEXT NOT NULL,
    git_rev     TEXT,
    created_utc TEXT NOT NULL,
    manifest    TEXT NOT NULL
);
"""

_GIT_REV: Optional[str] = None
_GIT_REV_PROBED = False

#: How many times a locked write is retried before the error propagates.
#: With busy_timeout already waiting out held locks, retries only fire on
#: immediate-BUSY deadlock avoidance, so a handful suffice.
_LOCK_RETRIES = 6
_LOCK_BACKOFF = 0.05  # seconds, doubled per retry


def git_revision() -> Optional[str]:
    """The current git revision (best effort, cached; None outside a repo)."""
    global _GIT_REV, _GIT_REV_PROBED
    if _GIT_REV_PROBED:
        return _GIT_REV
    _GIT_REV_PROBED = True
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        if proc.returncode == 0:
            _GIT_REV = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        _GIT_REV = None
    return _GIT_REV


def trial_to_dict(trial: "TrialResult") -> Dict[str, Any]:
    """The trial's full measurement payload as plain JSON types."""
    return {
        f.name: getattr(trial, f.name) for f in dataclass_fields(trial)
    }


def trial_from_dict(data: Dict[str, Any]) -> "TrialResult":
    """Rebuild a TrialResult, ignoring unknown keys (forward compat)."""
    from repro.core.experiment import TrialResult

    known = {f.name for f in dataclass_fields(TrialResult)}
    return TrialResult(**{k: v for k, v in data.items() if k in known})


def _is_locked_error(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return "database is locked" in message or "database is busy" in message


class ResultStore(QueueOps):
    """Trial-level result cache with provenance, on one SQLite file.

    >>> with ResultStore("results/store.db") as store:
    ...     if not store.has(key):
    ...         store.put(key, trial)

    ``hits`` / ``misses`` count this object's :meth:`get` outcomes, so a
    driver can report the cache rate of the run it just performed
    (:meth:`has` and iteration never touch the counters).

    One handle may be shared between threads (the service daemon shares
    one between its HTTP handler threads and its executor loop); an
    internal lock funnels all access, and locked-database errors from
    *other processes'* writes are waited out and retried — see the
    module docstring for the full concurrency contract.
    """

    def __init__(
        self,
        path: Union[str, Path],
        timeout: float = 30.0,
        busy_timeout_ms: int = 10_000,
    ) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.path), timeout=timeout, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        self._write(
            lambda conn: conn.executescript(_SCHEMA + QUEUE_SCHEMA)
        )
        self._check_schema()
        #: Identifies everything written by this store handle.
        self.run_id = uuid.uuid4().hex
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Locked, retrying access helpers — ALL database access funnels
    # through these two.  ``fn`` receives the connection and may run any
    # number of statements; ``_write`` commits on success and rolls back
    # (then retries, for lock contention) on failure, so multi-statement
    # operations like queue leases stay atomic.
    # ------------------------------------------------------------------
    def _read(self, fn: Callable[[sqlite3.Connection], T]) -> T:
        with self._lock:
            return fn(self._conn)

    def _write(self, fn: Callable[[sqlite3.Connection], T]) -> T:
        with self._lock:
            delay = _LOCK_BACKOFF
            for attempt in range(_LOCK_RETRIES):
                try:
                    result = fn(self._conn)
                    self._conn.commit()
                    return result
                except sqlite3.OperationalError as exc:
                    self._conn.rollback()
                    if (
                        not _is_locked_error(exc)
                        or attempt == _LOCK_RETRIES - 1
                    ):
                        raise
                    time.sleep(delay)
                    delay *= 2
                except BaseException:
                    self._conn.rollback()
                    raise
            raise AssertionError("unreachable")  # pragma: no cover

    def _now_utc(self) -> str:
        return _now()

    def _check_schema(self) -> None:
        def op(conn: sqlite3.Connection) -> Optional[str]:
            row = conn.execute(
                "SELECT value FROM meta WHERE key='schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)),
                )
                conn.execute(
                    "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                    ("created_utc", _now()),
                )
                row = conn.execute(
                    "SELECT value FROM meta WHERE key='schema_version'"
                ).fetchone()
            return row[0] if row else None

        stored = self._write(op)
        if stored is not None and int(stored) != SCHEMA_VERSION:
            raise ValueError(
                f"{self.path}: store schema version {stored} does not match "
                f"this code's version {SCHEMA_VERSION}; use a fresh store "
                f"(cached results would be invalid)"
            )

    # ------------------------------------------------------------------
    # Trial rows
    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        return (
            self._read(
                lambda conn: conn.execute(
                    "SELECT 1 FROM trials WHERE key=?", (key,)
                ).fetchone()
            )
            is not None
        )

    def get(self, key: str) -> Optional["TrialResult"]:
        """The cached trial for ``key``, or None (counted hit/miss)."""
        with span("store.get") as s:
            row = self._read(
                lambda conn: conn.execute(
                    "SELECT result FROM trials WHERE key=?", (key,)
                ).fetchone()
            )
            if row is None:
                self.misses += 1
                s.set(hit=False)
                return None
            self.hits += 1
            s.set(hit=True)
            return trial_from_dict(json.loads(row[0]))

    def put(
        self,
        key: str,
        trial: "TrialResult",
        fingerprint: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store (or overwrite) one trial; committed immediately.

        Must only be called from a pool *parent* — simulation workers
        never write, which keeps fold order deterministic.
        """
        with span("store.put"):
            self._put(key, trial, fingerprint)

    def _put(
        self,
        key: str,
        trial: "TrialResult",
        fingerprint: Optional[Dict[str, Any]] = None,
    ) -> None:
        def op(conn: sqlite3.Connection) -> None:
            conn.execute(
                "INSERT OR REPLACE INTO trials "
                "(key, seed, result, fingerprint, run_id, git_rev, "
                " schema_version, created_utc, wall_seconds) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    key,
                    trial.seed,
                    json.dumps(trial_to_dict(trial), sort_keys=True),
                    (
                        json.dumps(fingerprint, sort_keys=True)
                        if fingerprint is not None
                        else None
                    ),
                    self.run_id,
                    git_revision(),
                    SCHEMA_VERSION,
                    _now(),
                    trial.warmup_wall + trial.convergence_wall,
                ),
            )

        self._write(op)

    def provenance(self, key: str) -> Optional[Dict[str, Any]]:
        """Who wrote a trial, when, at which revision (None if absent)."""
        row = self._read(
            lambda conn: conn.execute(
                "SELECT seed, run_id, git_rev, schema_version, created_utc, "
                "wall_seconds, fingerprint FROM trials WHERE key=?",
                (key,),
            ).fetchone()
        )
        if row is None:
            return None
        return {
            "seed": row[0],
            "run_id": row[1],
            "git_rev": row[2],
            "schema_version": row[3],
            "created_utc": row[4],
            "wall_seconds": row[5],
            "fingerprint": json.loads(row[6]) if row[6] else None,
        }

    def iter_trials(self) -> Iterator[Tuple[str, "TrialResult"]]:
        """Every stored (key, trial), in key order."""
        rows = self._read(
            lambda conn: conn.execute(
                "SELECT key, result FROM trials ORDER BY key"
            ).fetchall()
        )
        for key, payload in rows:
            yield key, trial_from_dict(json.loads(payload))

    def __len__(self) -> int:
        return int(
            self._read(
                lambda conn: conn.execute(
                    "SELECT COUNT(*) FROM trials"
                ).fetchone()[0]
            )
        )

    def __contains__(self, key: str) -> bool:
        return self.has(key)

    def banked_wall_seconds(self) -> float:
        """Total simulation wall clock the stored trials represent."""
        return float(
            self._read(
                lambda conn: conn.execute(
                    "SELECT COALESCE(SUM(wall_seconds), 0) FROM trials"
                ).fetchone()[0]
            )
        )

    def stats(self) -> Dict[str, Any]:
        """Operator-facing snapshot: sizes, banked compute, queue depth.

        Everything ``repro-bgp store stats`` and the service ``/health``
        endpoint report, in one read.
        """

        def op(conn: sqlite3.Connection) -> Dict[str, Any]:
            trials = int(
                conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0]
            )
            banked = float(
                conn.execute(
                    "SELECT COALESCE(SUM(wall_seconds), 0) FROM trials"
                ).fetchone()[0]
            )
            campaigns = int(
                conn.execute("SELECT COUNT(*) FROM campaigns").fetchone()[0]
            )
            tickets = int(
                conn.execute("SELECT COUNT(*) FROM tickets").fetchone()[0]
            )
            queue = {
                state: 0
                for state in ("pending", "running", "done", "failed")
            }
            for state, count in conn.execute(
                "SELECT state, COUNT(*) FROM queue GROUP BY state"
            ):
                queue[state] = int(count)
            return {
                "trials": trials,
                "banked_wall_seconds": banked,
                "campaigns": campaigns,
                "tickets": tickets,
                "queue": queue,
            }

        stats = self._read(op)
        stats["path"] = str(self.path)
        stats["schema_version"] = SCHEMA_VERSION
        try:
            size = self.path.stat().st_size
            for suffix in ("-wal", "-shm"):
                sidecar = self.path.with_name(self.path.name + suffix)
                if sidecar.exists():
                    size += sidecar.stat().st_size
        except OSError:
            size = 0
        stats["db_bytes"] = size
        return stats

    # ------------------------------------------------------------------
    # Campaign manifests
    # ------------------------------------------------------------------
    def record_campaign(self, name: str, manifest: Dict[str, Any]) -> int:
        """Append one campaign-run manifest row; returns its id."""

        def op(conn: sqlite3.Connection) -> int:
            cursor = conn.execute(
                "INSERT INTO campaigns "
                "(name, run_id, git_rev, created_utc, manifest) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    name,
                    self.run_id,
                    git_revision(),
                    _now(),
                    json.dumps(manifest, sort_keys=True),
                ),
            )
            return int(cursor.lastrowid)

        return self._write(op)

    def iter_campaigns(
        self, name: Optional[str] = None
    ) -> Iterator[Dict[str, Any]]:
        """Recorded campaign runs, oldest first (optionally by name)."""
        if name is None:
            rows = self._read(
                lambda conn: conn.execute(
                    "SELECT id, name, run_id, git_rev, created_utc, manifest "
                    "FROM campaigns ORDER BY id"
                ).fetchall()
            )
        else:
            rows = self._read(
                lambda conn: conn.execute(
                    "SELECT id, name, run_id, git_rev, created_utc, manifest "
                    "FROM campaigns WHERE name=? ORDER BY id",
                    (name,),
                ).fetchall()
            )
        for row in rows:
            yield {
                "id": row[0],
                "name": row[1],
                "run_id": row[2],
                "git_rev": row[3],
                "created_utc": row[4],
                "manifest": json.loads(row[5]),
            }

    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore({str(self.path)!r}, trials={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def _now() -> str:
    return datetime.now(timezone.utc).isoformat()


#: Process-wide default store consulted by run_trials when ``store=None``
#: (see :func:`use_store`); mirrors ``repro.core.parallel._DEFAULT_JOBS``.
_DEFAULT_STORE: Optional[ResultStore] = None


def default_store() -> Optional[ResultStore]:
    """The store installed by the innermost :func:`use_store` block."""
    return _DEFAULT_STORE


@contextmanager
def use_store(
    store: Union[ResultStore, str, Path]
) -> Iterator[ResultStore]:
    """Make ``store`` the implicit trial cache for nested sweeps.

    This is how the CLI's ``sweep --store`` reaches the ``run_trials``
    calls buried inside the figure harness without threading a parameter
    through thirteen figure modules — the exact pattern ``--jobs`` uses
    via :func:`repro.core.parallel.parallel_jobs`.  A path argument is
    opened (and closed on exit); an already-open store is left open.
    """
    global _DEFAULT_STORE
    opened = None
    if not isinstance(store, ResultStore):
        store = opened = ResultStore(store)
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    try:
        yield store
    finally:
        _DEFAULT_STORE = previous
        if opened is not None:
            opened.close()
