"""The persistent trial store: SQLite-backed, content-addressed, WAL mode.

One row per trial, keyed by :func:`repro.store.hashing.spec_hash`.  The
row carries the full :class:`~repro.core.experiment.TrialResult` payload
plus provenance — which campaign/run wrote it, at which git revision,
when, and how much wall clock the simulation cost (so a store can report
how much compute it has banked).  A second table records one manifest
row per campaign run, giving ``repro-bgp campaign status`` its history.

Concurrency contract: **only the parent process writes**.  Worker
processes return results over the pool pipe exactly as in
:mod:`repro.core.parallel`; the parent stores them as they complete.
WAL mode makes the single-writer/many-reader case safe and keeps each
``put`` durable on its own commit, which is what makes a Ctrl-C'd sweep
resumable — every finished trial is already on disk.
"""

from __future__ import annotations

import json
import sqlite3
import subprocess
import uuid
from contextlib import contextmanager
from dataclasses import fields as dataclass_fields
from datetime import datetime, timezone
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.obs.spans import span
from repro.store.hashing import SCHEMA_VERSION

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import TrialResult

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS trials (
    key            TEXT PRIMARY KEY,
    seed           INTEGER NOT NULL,
    result         TEXT NOT NULL,
    fingerprint    TEXT,
    run_id         TEXT NOT NULL,
    git_rev        TEXT,
    schema_version INTEGER NOT NULL,
    created_utc    TEXT NOT NULL,
    wall_seconds   REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    run_id      TEXT NOT NULL,
    git_rev     TEXT,
    created_utc TEXT NOT NULL,
    manifest    TEXT NOT NULL
);
"""

_GIT_REV: Optional[str] = None
_GIT_REV_PROBED = False


def git_revision() -> Optional[str]:
    """The current git revision (best effort, cached; None outside a repo)."""
    global _GIT_REV, _GIT_REV_PROBED
    if _GIT_REV_PROBED:
        return _GIT_REV
    _GIT_REV_PROBED = True
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=Path(__file__).resolve().parent,
        )
        if proc.returncode == 0:
            _GIT_REV = proc.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        _GIT_REV = None
    return _GIT_REV


def trial_to_dict(trial: "TrialResult") -> Dict[str, Any]:
    """The trial's full measurement payload as plain JSON types."""
    return {
        f.name: getattr(trial, f.name) for f in dataclass_fields(trial)
    }


def trial_from_dict(data: Dict[str, Any]) -> "TrialResult":
    """Rebuild a TrialResult, ignoring unknown keys (forward compat)."""
    from repro.core.experiment import TrialResult

    known = {f.name for f in dataclass_fields(TrialResult)}
    return TrialResult(**{k: v for k, v in data.items() if k in known})


class ResultStore:
    """Trial-level result cache with provenance, on one SQLite file.

    >>> with ResultStore("results/store.db") as store:
    ...     if not store.has(key):
    ...         store.put(key, trial)

    ``hits`` / ``misses`` count this object's :meth:`get` outcomes, so a
    driver can report the cache rate of the run it just performed
    (:meth:`has` and iteration never touch the counters).
    """

    def __init__(self, path: Union[str, Path], timeout: float = 30.0) -> None:
        self.path = Path(path)
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), timeout=timeout)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.executescript(_SCHEMA)
        self._check_schema()
        #: Identifies everything written by this store handle.
        self.run_id = uuid.uuid4().hex
        self.hits = 0
        self.misses = 0

    def _check_schema(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) VALUES (?, ?)",
                ("created_utc", _now()),
            )
            self._conn.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            raise ValueError(
                f"{self.path}: store schema version {row[0]} does not match "
                f"this code's version {SCHEMA_VERSION}; use a fresh store "
                f"(cached results would be invalid)"
            )

    # ------------------------------------------------------------------
    # Trial rows
    # ------------------------------------------------------------------
    def has(self, key: str) -> bool:
        row = self._conn.execute(
            "SELECT 1 FROM trials WHERE key=?", (key,)
        ).fetchone()
        return row is not None

    def get(self, key: str) -> Optional["TrialResult"]:
        """The cached trial for ``key``, or None (counted hit/miss)."""
        with span("store.get") as s:
            row = self._conn.execute(
                "SELECT result FROM trials WHERE key=?", (key,)
            ).fetchone()
            if row is None:
                self.misses += 1
                s.set(hit=False)
                return None
            self.hits += 1
            s.set(hit=True)
            return trial_from_dict(json.loads(row[0]))

    def put(
        self,
        key: str,
        trial: "TrialResult",
        fingerprint: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Store (or overwrite) one trial; committed immediately.

        Must only be called from the parent process — the single-writer
        rule that keeps WAL simple and fold order deterministic.
        """
        with span("store.put"):
            self._put(key, trial, fingerprint)

    def _put(
        self,
        key: str,
        trial: "TrialResult",
        fingerprint: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO trials "
            "(key, seed, result, fingerprint, run_id, git_rev, "
            " schema_version, created_utc, wall_seconds) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                key,
                trial.seed,
                json.dumps(trial_to_dict(trial), sort_keys=True),
                (
                    json.dumps(fingerprint, sort_keys=True)
                    if fingerprint is not None
                    else None
                ),
                self.run_id,
                git_revision(),
                SCHEMA_VERSION,
                _now(),
                trial.warmup_wall + trial.convergence_wall,
            ),
        )
        self._conn.commit()

    def provenance(self, key: str) -> Optional[Dict[str, Any]]:
        """Who wrote a trial, when, at which revision (None if absent)."""
        row = self._conn.execute(
            "SELECT seed, run_id, git_rev, schema_version, created_utc, "
            "wall_seconds, fingerprint FROM trials WHERE key=?",
            (key,),
        ).fetchone()
        if row is None:
            return None
        return {
            "seed": row[0],
            "run_id": row[1],
            "git_rev": row[2],
            "schema_version": row[3],
            "created_utc": row[4],
            "wall_seconds": row[5],
            "fingerprint": json.loads(row[6]) if row[6] else None,
        }

    def iter_trials(self) -> Iterator[Tuple[str, "TrialResult"]]:
        """Every stored (key, trial), in key order."""
        cursor = self._conn.execute(
            "SELECT key, result FROM trials ORDER BY key"
        )
        for key, payload in cursor:
            yield key, trial_from_dict(json.loads(payload))

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM trials").fetchone()
        return int(row[0])

    def __contains__(self, key: str) -> bool:
        return self.has(key)

    def banked_wall_seconds(self) -> float:
        """Total simulation wall clock the stored trials represent."""
        row = self._conn.execute(
            "SELECT COALESCE(SUM(wall_seconds), 0) FROM trials"
        ).fetchone()
        return float(row[0])

    # ------------------------------------------------------------------
    # Campaign manifests
    # ------------------------------------------------------------------
    def record_campaign(self, name: str, manifest: Dict[str, Any]) -> int:
        """Append one campaign-run manifest row; returns its id."""
        cursor = self._conn.execute(
            "INSERT INTO campaigns "
            "(name, run_id, git_rev, created_utc, manifest) "
            "VALUES (?, ?, ?, ?, ?)",
            (
                name,
                self.run_id,
                git_revision(),
                _now(),
                json.dumps(manifest, sort_keys=True),
            ),
        )
        self._conn.commit()
        return int(cursor.lastrowid)

    def iter_campaigns(
        self, name: Optional[str] = None
    ) -> Iterator[Dict[str, Any]]:
        """Recorded campaign runs, oldest first (optionally by name)."""
        if name is None:
            cursor = self._conn.execute(
                "SELECT id, name, run_id, git_rev, created_utc, manifest "
                "FROM campaigns ORDER BY id"
            )
        else:
            cursor = self._conn.execute(
                "SELECT id, name, run_id, git_rev, created_utc, manifest "
                "FROM campaigns WHERE name=? ORDER BY id",
                (name,),
            )
        for row in cursor:
            yield {
                "id": row[0],
                "name": row[1],
                "run_id": row[2],
                "git_rev": row[3],
                "created_utc": row[4],
                "manifest": json.loads(row[5]),
            }

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultStore({str(self.path)!r}, trials={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def _now() -> str:
    return datetime.now(timezone.utc).isoformat()


#: Process-wide default store consulted by run_trials when ``store=None``
#: (see :func:`use_store`); mirrors ``repro.core.parallel._DEFAULT_JOBS``.
_DEFAULT_STORE: Optional[ResultStore] = None


def default_store() -> Optional[ResultStore]:
    """The store installed by the innermost :func:`use_store` block."""
    return _DEFAULT_STORE


@contextmanager
def use_store(
    store: Union[ResultStore, str, Path]
) -> Iterator[ResultStore]:
    """Make ``store`` the implicit trial cache for nested sweeps.

    This is how the CLI's ``sweep --store`` reaches the ``run_trials``
    calls buried inside the figure harness without threading a parameter
    through thirteen figure modules — the exact pattern ``--jobs`` uses
    via :func:`repro.core.parallel.parallel_jobs`.  A path argument is
    opened (and closed on exit); an already-open store is left open.
    """
    global _DEFAULT_STORE
    opened = None
    if not isinstance(store, ResultStore):
        store = opened = ResultStore(store)
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    try:
        yield store
    finally:
        _DEFAULT_STORE = previous
        if opened is not None:
            opened.close()
