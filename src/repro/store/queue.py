"""The durable work queue: cold trials as leasable rows in the store.

The campaign service (:mod:`repro.service`) separates *asking* for a
trial from *computing* it: a submission that misses the cache enqueues
one row per cold trial here, and any number of executor processes drain
the rows against the same SQLite file.  The queue therefore lives in the
store database itself — a task and its eventual result commit through
the same WAL, so "the trial is banked" and "the task is done" can never
disagree after a crash.

Lease protocol
--------------
A task moves ``pending -> running -> done`` (or ``failed``).  Claiming
is a short ``BEGIN IMMEDIATE`` transaction — select runnable rows, stamp
them ``running`` with a lease deadline — so two executors draining the
same file can never claim the same task while a lease is valid.  A
*runnable* row is ``pending`` with its backoff gate (``not_before``)
passed, or ``running`` with an **expired** lease: a crashed executor's
tasks become claimable again the moment its lease lapses, with no
janitor process.  Long-running executors extend their leases via
:meth:`QueueOps.heartbeat_tasks` as results stream in.

Failures increment ``attempts`` and either re-enter ``pending`` with a
``not_before`` backoff gate (retry) or park as ``failed`` (terminal);
re-submitting a key whose task is ``failed`` revives it.  The partial
unique index on open tasks guarantees at most one pending/running row
per trial key, so duplicate submissions deduplicate instead of
duplicating compute.

All methods run through the owning store's locked, retrying write
helpers (see :class:`repro.store.result_store.ResultStore`), which is
what makes the multi-process / multi-thread access safe.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Every state a queue task can be in, in lifecycle order.
QUEUE_STATES = ("pending", "running", "done", "failed")

#: Queue + ticket tables, created alongside the trial tables (additive:
#: stores from earlier schema revisions gain them on next open).
QUEUE_SCHEMA = """
CREATE TABLE IF NOT EXISTS queue (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    key           TEXT NOT NULL,
    payload       TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    not_before    REAL NOT NULL DEFAULT 0,
    lease_owner   TEXT,
    lease_expires REAL,
    error         TEXT,
    ticket        TEXT,
    created_utc   TEXT NOT NULL,
    updated_utc   TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS queue_runnable
    ON queue (state, not_before);
CREATE INDEX IF NOT EXISTS queue_key
    ON queue (key);
CREATE UNIQUE INDEX IF NOT EXISTS queue_open_key
    ON queue (key) WHERE state IN ('pending', 'running');
CREATE TABLE IF NOT EXISTS tickets (
    ticket      TEXT PRIMARY KEY,
    name        TEXT NOT NULL,
    created_utc TEXT NOT NULL,
    keys        TEXT NOT NULL,
    campaign    TEXT
);
"""

_TASK_COLUMNS = (
    "id, key, payload, state, attempts, not_before, lease_owner, "
    "lease_expires, error, ticket, created_utc, updated_utc"
)


@dataclass(frozen=True)
class QueueTask:
    """One queued trial: content key plus the declarative recipe to run it.

    ``payload`` carries everything an executor on any host needs:
    ``{"topology": <parameter block>, "scheme": <explicit spec dict>,
    "seed": N}`` — the executor rebuilds the topology and spec and
    verifies the recomputed content hash equals ``key`` before running.
    """

    id: int
    key: str
    payload: Dict[str, Any]
    state: str
    attempts: int
    not_before: float
    lease_owner: Optional[str]
    lease_expires: Optional[float]
    error: Optional[str]
    ticket: Optional[str]
    created_utc: str
    updated_utc: str


def _task_from_row(row: Sequence[Any]) -> QueueTask:
    return QueueTask(
        id=int(row[0]),
        key=row[1],
        payload=json.loads(row[2]),
        state=row[3],
        attempts=int(row[4]),
        not_before=float(row[5]),
        lease_owner=row[6],
        lease_expires=float(row[7]) if row[7] is not None else None,
        error=row[8],
        ticket=row[9],
        created_utc=row[10],
        updated_utc=row[11],
    )


class QueueOps:
    """Work-queue and ticket operations, mixed into ``ResultStore``.

    Relies on the host class for ``_read`` / ``_write`` (locked,
    retry-on-locked database access) and ``_now`` timestamps; contains
    every piece of queue SQL so callers above the store (the service
    API, the executor) never touch SQL directly — the
    :class:`repro.service.backend.StoreBackend` contract.
    """

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------
    def enqueue(
        self,
        key: str,
        payload: Dict[str, Any],
        ticket: Optional[str] = None,
    ) -> Tuple[int, bool]:
        """Schedule one cold trial; returns ``(task_id, created)``.

        Deduplicating: an open (pending/running) task for the same key
        is returned as ``(existing_id, False)`` instead of inserting a
        duplicate.  A ``failed`` task for the key is *revived* — reset
        to pending with a fresh attempt budget — and counts as created.
        """
        now_utc = self._now_utc()
        encoded = json.dumps(payload, sort_keys=True)

        def op(conn):
            conn.execute("BEGIN IMMEDIATE")
            row = conn.execute(
                "SELECT id, state FROM queue WHERE key=? AND state IN "
                "('pending', 'running', 'failed') ORDER BY id DESC LIMIT 1",
                (key,),
            ).fetchone()
            if row is not None and row[1] in ("pending", "running"):
                return int(row[0]), False
            if row is not None:  # failed -> revive
                conn.execute(
                    "UPDATE queue SET state='pending', attempts=0, "
                    "not_before=0, error=NULL, lease_owner=NULL, "
                    "lease_expires=NULL, ticket=?, payload=?, "
                    "updated_utc=? WHERE id=?",
                    (ticket, encoded, now_utc, row[0]),
                )
                return int(row[0]), True
            cursor = conn.execute(
                "INSERT INTO queue (key, payload, state, ticket, "
                "created_utc, updated_utc) VALUES (?, ?, 'pending', ?, ?, ?)",
                (key, encoded, ticket, now_utc, now_utc),
            )
            return int(cursor.lastrowid), True

        return self._write(op)

    # ------------------------------------------------------------------
    # Executor side
    # ------------------------------------------------------------------
    def lease_tasks(
        self,
        owner: str,
        limit: int,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> List[QueueTask]:
        """Atomically claim up to ``limit`` runnable tasks for ``owner``.

        Runnable = pending past its backoff gate, or running with an
        expired lease (a crashed executor's tasks).  Claimed rows are
        stamped ``running`` with ``lease_expires = now + lease_seconds``
        inside one immediate transaction, so concurrent executors never
        receive overlapping sets.
        """
        if limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be positive")
        now = time.time() if now is None else now
        now_utc = self._now_utc()

        def op(conn):
            conn.execute("BEGIN IMMEDIATE")
            rows = conn.execute(
                "SELECT id FROM queue WHERE "
                "(state='pending' AND not_before<=?) OR "
                "(state='running' AND lease_expires IS NOT NULL "
                " AND lease_expires<=?) "
                "ORDER BY id LIMIT ?",
                (now, now, limit),
            ).fetchall()
            ids = [int(r[0]) for r in rows]
            if not ids:
                return []
            marks = ",".join("?" for _ in ids)
            conn.execute(
                f"UPDATE queue SET state='running', lease_owner=?, "
                f"lease_expires=?, updated_utc=? WHERE id IN ({marks})",
                [owner, now + lease_seconds, now_utc, *ids],
            )
            fetched = conn.execute(
                f"SELECT {_TASK_COLUMNS} FROM queue WHERE id IN ({marks}) "
                f"ORDER BY id",
                ids,
            ).fetchall()
            return [_task_from_row(r) for r in fetched]

        return self._write(op)

    def heartbeat_tasks(
        self,
        owner: str,
        task_ids: Iterable[int],
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> int:
        """Extend the lease on still-running tasks owned by ``owner``.

        Returns how many leases were actually extended — a task whose
        lease was stolen after expiry (different owner now) is not
        touched, which is how a slow executor learns it lost the task.
        """
        ids = [int(i) for i in task_ids]
        if not ids:
            return 0
        now = time.time() if now is None else now

        def op(conn):
            marks = ",".join("?" for _ in ids)
            cursor = conn.execute(
                f"UPDATE queue SET lease_expires=?, updated_utc=? "
                f"WHERE id IN ({marks}) AND lease_owner=? "
                f"AND state='running'",
                [now + lease_seconds, self._now_utc(), *ids, owner],
            )
            return cursor.rowcount

        return self._write(op)

    def complete_task(self, task_id: int) -> None:
        """Mark one task done (the trial result is already in the store)."""

        def op(conn):
            conn.execute(
                "UPDATE queue SET state='done', lease_owner=NULL, "
                "lease_expires=NULL, error=NULL, updated_utc=? WHERE id=?",
                (self._now_utc(), task_id),
            )

        self._write(op)

    def fail_task(
        self,
        task_id: int,
        error: str,
        retry_at: Optional[float] = None,
    ) -> str:
        """Record one failed attempt; returns the task's new state.

        ``retry_at`` (epoch seconds) re-enters the task as ``pending``
        behind a backoff gate; ``None`` parks it as terminally
        ``failed`` (revivable by re-submission).  Either way the attempt
        counter increments and the error message is kept for operators.
        """
        state = "failed" if retry_at is None else "pending"

        def op(conn):
            conn.execute(
                "UPDATE queue SET state=?, attempts=attempts+1, error=?, "
                "not_before=?, lease_owner=NULL, lease_expires=NULL, "
                "updated_utc=? WHERE id=?",
                (state, error, retry_at or 0.0, self._now_utc(), task_id),
            )

        self._write(op)
        return state

    def release_tasks(
        self, owner: str, task_ids: Optional[Iterable[int]] = None
    ) -> int:
        """Return ``owner``'s running tasks to pending (graceful drain).

        Called on shutdown for leased-but-unexecuted tasks so another
        executor (or the next boot) picks them up immediately instead of
        waiting out the lease.  Returns the number released.
        """
        ids = None if task_ids is None else [int(i) for i in task_ids]

        def op(conn):
            sql = (
                "UPDATE queue SET state='pending', lease_owner=NULL, "
                "lease_expires=NULL, updated_utc=? "
                "WHERE lease_owner=? AND state='running'"
            )
            params: List[Any] = [self._now_utc(), owner]
            if ids is not None:
                if not ids:
                    return 0
                sql += f" AND id IN ({','.join('?' for _ in ids)})"
                params.extend(ids)
            return conn.execute(sql, params).rowcount

        return self._write(op)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def queue_counts(self) -> Dict[str, int]:
        """Tasks per state, zero-filled over :data:`QUEUE_STATES`."""

        def op(conn):
            rows = conn.execute(
                "SELECT state, COUNT(*) FROM queue GROUP BY state"
            ).fetchall()
            counts = {state: 0 for state in QUEUE_STATES}
            for state, count in rows:
                counts[state] = int(count)
            return counts

        return self._read(op)

    def queue_entries(
        self, state: Optional[str] = None, limit: Optional[int] = None
    ) -> List[QueueTask]:
        """Queue rows (optionally one state), oldest first."""

        def op(conn):
            sql = f"SELECT {_TASK_COLUMNS} FROM queue"
            params: List[Any] = []
            if state is not None:
                sql += " WHERE state=?"
                params.append(state)
            sql += " ORDER BY id"
            if limit is not None:
                sql += " LIMIT ?"
                params.append(int(limit))
            return [_task_from_row(r) for r in conn.execute(sql, params)]

        return self._read(op)

    def queue_states_for(
        self, keys: Sequence[str]
    ) -> Dict[str, Dict[str, Any]]:
        """Latest queue row per key: ``{key: {state, attempts, error}}``.

        Keys with no queue row are absent from the result (a ticket key
        can be store-served without ever having been queued).
        """
        out: Dict[str, Dict[str, Any]] = {}
        keys = list(keys)

        def op(conn):
            for start in range(0, len(keys), 400):
                chunk = keys[start : start + 400]
                marks = ",".join("?" for _ in chunk)
                rows = conn.execute(
                    f"SELECT key, state, attempts, error FROM queue "
                    f"WHERE key IN ({marks}) ORDER BY id",
                    chunk,
                ).fetchall()
                for key, task_state, attempts, error in rows:
                    out[key] = {
                        "state": task_state,
                        "attempts": int(attempts),
                        "error": error,
                    }
            return out

        return self._read(op)

    # ------------------------------------------------------------------
    # Tickets
    # ------------------------------------------------------------------
    def record_ticket(
        self,
        ticket: str,
        name: str,
        keys: Sequence[str],
        campaign: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist one submission: ticket -> ordered trial keys.

        ``campaign`` (the normalized campaign document) makes the ticket
        self-describing, so results can be folded server-side after a
        daemon restart without the client re-sending the grid.
        """

        def op(conn):
            conn.execute(
                "INSERT OR REPLACE INTO tickets "
                "(ticket, name, created_utc, keys, campaign) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    ticket,
                    name,
                    self._now_utc(),
                    json.dumps(list(keys)),
                    (
                        json.dumps(campaign, sort_keys=True)
                        if campaign is not None
                        else None
                    ),
                ),
            )

        self._write(op)

    def ticket_info(self, ticket: str) -> Optional[Dict[str, Any]]:
        """One recorded ticket (name, creation time, keys, campaign)."""

        def op(conn):
            row = conn.execute(
                "SELECT ticket, name, created_utc, keys, campaign "
                "FROM tickets WHERE ticket=?",
                (ticket,),
            ).fetchone()
            if row is None:
                return None
            return {
                "ticket": row[0],
                "name": row[1],
                "created_utc": row[2],
                "keys": json.loads(row[3]),
                "campaign": json.loads(row[4]) if row[4] else None,
            }

        return self._read(op)

    def ticket_count(self) -> int:
        def op(conn):
            return int(
                conn.execute("SELECT COUNT(*) FROM tickets").fetchone()[0]
            )

        return self._read(op)
