"""Persistent experiment store: content-addressed trial caching + campaigns.

The biggest speedup available to a sweep that has already run is not
running it again.  This package provides:

* :mod:`repro.store.hashing` — :func:`spec_hash`, the stable keyed-BLAKE2b
  content address of one trial's inputs (spec, built topology, seed,
  schema version);
* :mod:`repro.store.result_store` — :class:`ResultStore`, an SQLite (WAL)
  trial cache with provenance, plus :func:`use_store` for scoping a
  process-wide default the way ``parallel_jobs`` scopes ``--jobs``;
* :mod:`repro.store.campaign` — :class:`Campaign`, a declarative sweep
  grid that runs incrementally against a store: cached trials are
  skipped, failures retried, interruptions resumed, and the folded
  series equal an uncached run's;
* :mod:`repro.store.queue` — the durable work queue (lease/heartbeat/
  retry rows in the same SQLite file) that the campaign service in
  :mod:`repro.service` drains.
"""

from repro.store.campaign import (
    Campaign,
    CampaignError,
    CampaignResult,
    CampaignStatus,
    CampaignTask,
    RetryPolicy,
    build_spec,
    campaign_keys,
    campaign_status,
    load_campaign_results,
    run_campaign,
)
from repro.store.queue import QUEUE_STATES, QueueTask
from repro.store.hashing import (
    SCHEMA_VERSION,
    canonical,
    spec_fingerprint,
    spec_hash,
    topology_digest,
)
from repro.store.result_store import (
    ResultStore,
    default_store,
    git_revision,
    trial_from_dict,
    trial_to_dict,
    use_store,
)

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignResult",
    "CampaignStatus",
    "CampaignTask",
    "QUEUE_STATES",
    "QueueTask",
    "ResultStore",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "build_spec",
    "campaign_keys",
    "campaign_status",
    "canonical",
    "default_store",
    "git_revision",
    "load_campaign_results",
    "run_campaign",
    "spec_fingerprint",
    "spec_hash",
    "topology_digest",
    "trial_from_dict",
    "trial_to_dict",
    "use_store",
]
