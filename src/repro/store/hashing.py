"""Content-addressed cache keys for trials.

A trial is a pure function of ``(topology, spec, seed)`` — that is the
determinism contract :mod:`repro.core.parallel` already relies on to make
``jobs=N`` bit-identical to serial.  This module turns the same three
inputs into a *stable name*: a keyed-BLAKE2b hash over a canonical JSON
encoding of the spec, a digest of the fully built topology, the trial
seed and a schema version.  Two runs that would produce the same
:class:`~repro.core.experiment.TrialResult` hash to the same key; any
input change — an MRAI ladder value, one link delay, the seed — changes
the key, so a stale cache entry can never be returned for a new
configuration.

The derivation mirrors :func:`repro.sim.rng.derive_seed`: keyed BLAKE2b,
so keys are stable across processes and Python versions
(``PYTHONHASHSEED``-immune) and namespaced away from every other BLAKE2b
use in the codebase by the key string.

Bump :data:`SCHEMA_VERSION` whenever simulation semantics change in a way
that alters results for the same inputs (new event ordering, changed
measurement protocol, ...) — old store entries then miss instead of
poisoning new runs.  The golden tests pin hash vectors so an *accidental*
key change cannot slip through.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import ExperimentSpec
    from repro.topology.graph import Topology

#: Version of the (simulation semantics, TrialResult schema) pair the
#: hash binds to.  Bumping it invalidates every existing store entry.
#: v2: specs fingerprint via their declarative dict (repro.specs), so
#: equal-meaning construction paths share keys; see docs/STORAGE.md.
SCHEMA_VERSION = 2

#: BLAKE2b key namespacing trial-cache hashes (like the named random
#: streams, the key makes collisions with other derivations impossible).
_HASH_KEY = b"repro-store-trial"


def canonical(value: Any) -> Any:
    """A JSON-able form of ``value`` that is stable across processes.

    Scalars pass through; containers recurse (sets sorted); dataclasses
    and plain objects become ``{"__type__": qualified name, fields...}``
    with public attributes only, so cosmetic/private state never reaches
    the hash.  Types and callables reduce to their qualified names.  The
    encoding is intentionally *strict about identity*: renaming a policy
    class or changing a default changes the key, which is exactly the
    invalidation rule a content-addressed store wants.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, (set, frozenset)):
        items = [canonical(v) for v in value]
        return sorted(items, key=lambda v: json.dumps(v, sort_keys=True))
    if isinstance(value, dict):
        pairs = [[canonical(k), canonical(v)] for k, v in value.items()]
        return sorted(pairs, key=lambda p: json.dumps(p[0], sort_keys=True))
    if isinstance(value, type):
        return {"__class__": f"{value.__module__}.{value.__qualname__}"}
    type_name = f"{type(value).__module__}.{type(value).__qualname__}"
    if dataclasses.is_dataclass(value):
        encoded: Dict[str, Any] = {"__type__": type_name}
        for field in dataclasses.fields(value):
            encoded[field.name] = canonical(getattr(value, field.name))
        return encoded
    if callable(value) and hasattr(value, "__qualname__"):
        return {
            "__callable__": f"{value.__module__}.{value.__qualname__}"
        }
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        encoded = {"__type__": type_name}
        for name in sorted(attrs):
            if not name.startswith("_"):
                encoded[name] = canonical(attrs[name])
        return encoded
    return {"__repr__": repr(value), "__type__": type_name}


def _canonical_json(value: Any) -> str:
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


def topology_digest(topology: "Topology") -> str:
    """A BLAKE2b digest over the topology's full serialized content.

    Hashing the *built* topology (every router position, every link
    delay) rather than the factory's parameters means the key is correct
    even for hand-edited or file-loaded topologies, and two factories
    that produce the same graph share cache entries.
    """
    from repro.topology.serialize import topology_to_dict

    payload = _canonical_json(topology_to_dict(topology))
    return hashlib.blake2b(
        payload.encode("utf-8"), key=_HASH_KEY, digest_size=16
    ).hexdigest()


def _spec_payload(spec: "ExperimentSpec") -> Any:
    """The canonical encoding of a spec for fingerprinting.

    Declaratively-expressible specs hash via their explicit scheme dict
    (:func:`repro.specs.spec_to_dict`), so every construction path that
    means the same experiment — CLI flags, a campaign file, a figure
    scheme set, a theory ladder resolved to its dynamic levels — shares
    one cache key, and the manifest's fingerprint records the full
    declarative spec.  Specs carrying unregistered policy classes fall
    back to the structural object encoding (a key private to that
    class), staying cacheable without pretending to be declarative.
    """
    from repro.specs.serialize import SpecSerializationError, spec_to_dict

    try:
        return canonical(spec_to_dict(spec))
    except SpecSerializationError:
        return canonical(spec)


def spec_fingerprint(
    spec: "ExperimentSpec", topology: "Topology", seed: int
) -> Dict[str, Any]:
    """The canonical pre-image of :func:`spec_hash` (stored for audits)."""
    return {
        "schema": SCHEMA_VERSION,
        "seed": seed,
        "spec": _spec_payload(spec),
        "topology": topology_digest(topology),
    }


def spec_hash(
    spec: "ExperimentSpec", topology: "Topology", seed: int
) -> str:
    """The content-addressed store key for one trial.

    64 hex characters (256-bit keyed BLAKE2b) over the canonical JSON of
    :func:`spec_fingerprint` — collision-free for all practical purposes,
    stable forever unless :data:`SCHEMA_VERSION` is bumped.
    """
    from repro.obs.spans import span

    with span("store.spec_hash"):
        payload = json.dumps(
            spec_fingerprint(spec, topology, seed),
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.blake2b(
            payload.encode("utf-8"), key=_HASH_KEY, digest_size=32
        ).hexdigest()
