"""Resumable experiment campaigns: a declarative sweep grid over a store.

A :class:`Campaign` is the *whole sweep as data*: topology parameters,
one :class:`~repro.core.experiment.ExperimentSpec` per scheme, a swept
axis (failure fraction or constant MRAI), and the trial seeds.  It
expands to a flat list of trial tasks, each content-addressed via
:func:`repro.store.hashing.spec_hash`, which buys three things at once:

* **Caching** — a task whose key is already in the store never runs;
* **Resume** — a crashed or Ctrl-C'd campaign re-run executes only the
  missing trials (every completed trial was committed as it finished);
* **Retry** — a trial that dies in a worker (OOM-killed process, flaky
  host) is retried with a bounded :class:`RetryPolicy` instead of
  aborting hundreds of sibling trials.

Folding is identical to an uncached sweep: trials enter each point's
:class:`~repro.core.experiment.ExperimentResult` in seed order, whether
they came from the store or from a worker, so the resulting series
compare equal (``TrialResult`` equality — wall-clock fields excluded) to
a cold run bit for bit.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.bgp.mrai import ConstantMRAI
from repro.core.experiment import (
    ExperimentResult,
    ExperimentSpec,
    Progress,
    ProgressFn,
    TrialResult,
)
from repro.core.parallel import (
    TrialTask,
    derive_trial_seeds,
    execute_trial,
    get_default_jobs,
    get_worker_pool,
)
from repro.core.sweep import Series
from repro.obs.live import default_progress
from repro.obs.session import ObsSession, active_session
from repro.obs.spans import span
from repro.specs.serialize import (
    build_spec,
    scheme_requires_topology,
    validate_scheme,
)
from repro.specs.topology import (
    DISTRIBUTIONS,
    topology_factory as resolve_topology_block,
)
from repro.store.hashing import spec_fingerprint, spec_hash
from repro.store.result_store import ResultStore, git_revision
from repro.topology.graph import Topology

__all__ = [
    "AXES",
    "Campaign",
    "CampaignError",
    "CampaignResult",
    "CampaignTask",
    "DISTRIBUTIONS",  # re-exported from repro.specs for compatibility
    "RetryPolicy",
    "build_spec",  # re-exported from repro.specs for compatibility
    "campaign_keys",
    "campaign_status",
    "load_campaign_results",
    "run_campaign",
]

#: Axes a campaign can sweep, mapped to how a point spec is derived.
AXES = ("failure_fraction", "mrai")


class CampaignError(RuntimeError):
    """A campaign could not complete; carries the per-task failures."""

    def __init__(
        self, message: str, failures: Sequence[Tuple["CampaignTask", str]]
    ) -> None:
        super().__init__(message)
        self.failures = list(failures)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-trial retry for worker-side failures.

    ``max_attempts`` counts the first try: 3 means one run plus at most
    two retries.  Retries re-run the identical deterministic task, so
    they only help against *environmental* failures (killed workers,
    transient OS errors) — a task that fails deterministically exhausts
    its attempts and surfaces as :class:`CampaignError`.
    """

    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")


@dataclass(frozen=True)
class CampaignTask:
    """One expanded (scheme, axis value, seed) trial of a campaign."""

    ordinal: int
    label: str
    x: float
    seed: int
    spec: ExperimentSpec


@dataclass
class Campaign:
    """A declarative, store-backed sweep grid.

    ``topology`` is a parameter block (``kind`` + size knobs), not a
    factory, so campaigns round-trip through JSON and mean the same
    thing on every host.  ``axis`` selects what varies per point:
    ``failure_fraction`` replaces the spec's failure size,
    ``mrai`` replaces the spec's policy with ``ConstantMRAI(x)``.
    """

    name: str
    topology: Dict[str, Any]
    schemes: Dict[str, Dict[str, Any]]
    axis: str
    values: List[float]
    seeds: List[int]
    store_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.axis not in AXES:
            raise ValueError(
                f"unknown axis {self.axis!r}; choose from {AXES}"
            )
        if not self.schemes:
            raise ValueError("a campaign needs at least one scheme")
        if not self.values:
            raise ValueError("a campaign needs at least one axis value")
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        # Typo-rejecting parse of every scheme up front: a campaign file
        # with a bad scheme fails here (and in `campaign validate`), not
        # hours into the grid.  Topology-dependent pieces resolve later.
        for label, scheme in self.schemes.items():
            try:
                validate_scheme(scheme)
            except ValueError as exc:
                raise ValueError(f"scheme {label!r}: {exc}") from exc

    # ------------------------------------------------------------------
    # Declarative round-trip
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Campaign":
        seeds = data.get("seeds")
        if isinstance(seeds, dict):
            seeds = derive_trial_seeds(
                int(seeds.get("master", 0)), int(seeds["count"])
            )
        elif seeds is not None:
            seeds = [int(s) for s in seeds]
        else:
            raise ValueError(
                "campaign needs 'seeds': a list or {'master': M, 'count': N}"
            )
        axis = data.get("axis", {})
        if not isinstance(axis, dict) or "name" not in axis:
            raise ValueError(
                "campaign needs 'axis': {'name': ..., 'values': [...]}"
            )
        return cls(
            name=str(data.get("name", "campaign")),
            topology=dict(data.get("topology", {"kind": "skewed"})),
            schemes={
                str(k): dict(v) for k, v in data.get("schemes", {}).items()
            },
            axis=str(axis["name"]),
            values=[float(v) for v in axis["values"]],
            seeds=seeds,
            store_path=data.get("store"),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "Campaign":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "topology": dict(self.topology),
            "schemes": {k: dict(v) for k, v in self.schemes.items()},
            "axis": {"name": self.axis, "values": list(self.values)},
            "seeds": list(self.seeds),
        }
        if self.store_path is not None:
            data["store"] = self.store_path
        return data

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2) + "\n", encoding="utf-8"
        )
        return path

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def topology_factory(self) -> Callable[[int], Topology]:
        """Per-seed topology builder from the parameter block."""
        return resolve_topology_block(self.topology)

    def _representative_topology(self) -> Topology:
        """The seed[0] topology, built once per campaign instance.

        Topology-resolved schemes (``adaptive``/``theory`` MRAI,
        inferred policy relationships) are fixed against this topology,
        so the resulting specs are deterministic — and hence cacheable
        and resumable — across the whole grid.
        """
        topo = getattr(self, "_rep_topology", None)
        if topo is None:
            topo = self.topology_factory()(self.seeds[0])
            self._rep_topology = topo
        return topo

    def base_spec(self, label: str) -> ExperimentSpec:
        scheme = self.schemes[label]
        if scheme_requires_topology(scheme):
            return build_spec(scheme, topology=self._representative_topology())
        return build_spec(scheme)

    def point_spec(self, label: str, x: float) -> ExperimentSpec:
        spec = self.base_spec(label)
        if self.axis == "failure_fraction":
            return spec.with_(failure_fraction=x)
        return spec.with_(mrai=ConstantMRAI(x))

    def tasks(self) -> List[CampaignTask]:
        """The flat trial grid, in (scheme, axis value, seed) order —
        the fold order an uncached nested sweep would use."""
        out: List[CampaignTask] = []
        ordinal = 0
        for label in self.schemes:
            for x in self.values:
                spec = self.point_spec(label, x)
                for seed in self.seeds:
                    out.append(
                        CampaignTask(
                            ordinal=ordinal,
                            label=label,
                            x=x,
                            seed=seed,
                            spec=spec,
                        )
                    )
                    ordinal += 1
        return out

    @property
    def total_trials(self) -> int:
        return len(self.schemes) * len(self.values) * len(self.seeds)


# ---------------------------------------------------------------------------
# Status
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PointStatus:
    label: str
    x: float
    done: int
    total: int
    #: Trials of this cell that failed in the most recent recorded run
    #: and are still missing from the store (0 once a retry lands them).
    failed: int = 0

    @property
    def missing(self) -> int:
        return self.total - self.done


@dataclass
class CampaignStatus:
    """How much of a campaign's grid is already banked in a store."""

    name: str
    total: int
    cached: int
    points: List[PointStatus] = field(default_factory=list)
    history: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def missing(self) -> int:
        return self.total - self.cached

    @property
    def complete(self) -> bool:
        return self.cached == self.total

    def render(self) -> str:
        lines = [
            f"campaign {self.name}: {self.cached}/{self.total} trials "
            f"cached ({self.missing} missing)"
        ]
        for p in self.points:
            mark = "done" if p.done == p.total else f"{p.done}/{p.total}"
            if p.failed:
                mark += f" ({p.failed} failed)"
            lines.append(f"  {p.label:24s} x={p.x:<10g} {mark}")
        for run in self.history:
            manifest = run["manifest"]
            lines.append(
                f"  run {run['created_utc']} "
                f"(rev {str(run['git_rev'])[:12]}): "
                f"{manifest.get('executed', '?')} executed, "
                f"{manifest.get('cache_hits', '?')} cached"
            )
        return "\n".join(lines)


def _campaign_keys(
    campaign: Campaign,
) -> List[Tuple[CampaignTask, str, Topology]]:
    """Expand + content-address the grid (topologies built once per seed)."""
    with span("campaign.expand", trials=campaign.total_trials):
        factory = campaign.topology_factory()
        topologies = {}
        for seed in campaign.seeds:
            with span("topology.build", seed=seed):
                topologies[seed] = factory(seed)
        return [
            (task, spec_hash(task.spec, topologies[task.seed], task.seed),
             topologies[task.seed])
            for task in campaign.tasks()
        ]


def campaign_keys(
    campaign: Campaign,
) -> List[Tuple[CampaignTask, str, Topology]]:
    """Public grid expansion: ``(task, content key, topology)`` triples.

    The campaign service submission planner uses this to decide, per
    trial, cache-hit vs enqueue — the same expansion ``run_campaign``
    and ``campaign_status`` use internally, so all three always agree on
    keys.
    """
    return _campaign_keys(campaign)


def campaign_status(
    campaign: Campaign, store: ResultStore
) -> CampaignStatus:
    """Grid completeness against a store (read-only: no hit counters).

    ``failed`` per cell comes from the most recent recorded run's
    failure manifest: a trial counts as failed only while it is *still
    missing* from the store, so a successful retry clears the flag.
    """
    history = list(store.iter_campaigns(campaign.name))
    recorded_failures: Dict[Tuple[str, float, int], bool] = {}
    if history:
        for failure in history[-1]["manifest"].get("failures", []):
            recorded_failures[
                (
                    str(failure["label"]),
                    float(failure["x"]),
                    int(failure["seed"]),
                )
            ] = True
    per_point: Dict[Tuple[str, float], List[int]] = {}
    cached = 0
    for task, key, _topology in _campaign_keys(campaign):
        cell = per_point.setdefault((task.label, task.x), [0, 0, 0])
        cell[1] += 1
        if store.has(key):
            cell[0] += 1
            cached += 1
        elif recorded_failures.get((task.label, task.x, task.seed)):
            cell[2] += 1
    return CampaignStatus(
        name=campaign.name,
        total=campaign.total_trials,
        cached=cached,
        points=[
            PointStatus(label, x, done, total, failed)
            for (label, x), (done, total, failed) in per_point.items()
        ],
        history=history,
    )


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------
def _guarded_execute(
    task: TrialTask,
) -> Tuple[int, Optional[TrialResult], Optional[Dict[str, Any]], Optional[str]]:
    """Worker entry point that reports failures instead of raising.

    The campaign runner retries individual trials, so one dead trial
    must not poison the pool the way
    :class:`~repro.core.parallel.ProcessExecutor`'s fail-fast does.
    """
    try:
        index, trial, payload = execute_trial(task)
        return index, trial, payload, None
    except Exception as exc:  # noqa: BLE001 - reported to the retry loop
        return task.index, None, None, f"{type(exc).__name__}: {exc}"


@dataclass
class CampaignResult:
    """Everything one campaign run produced (cached + fresh, folded)."""

    campaign: Campaign
    series: List[Series]
    results: Dict[Tuple[str, float], ExperimentResult]
    cache_hits: int
    cache_misses: int
    executed: int
    retried: int
    failed: int = 0
    wall_seconds: float = 0.0

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 1.0

    def summary(self) -> str:
        return (
            f"campaign {self.campaign.name}: "
            f"{self.cache_hits + self.cache_misses} trials — "
            f"{self.cache_hits} cached ({self.cache_hit_rate:.0%}), "
            f"{self.executed} executed"
            + (f", {self.retried} retried" if self.retried else "")
            + f" in {self.wall_seconds:.1f}s"
        )


def run_campaign(
    campaign: Campaign,
    store: Optional[ResultStore] = None,
    *,
    jobs: Optional[int] = None,
    retry: RetryPolicy = RetryPolicy(),
    progress: Optional[ProgressFn] = None,
    obs: Optional[ObsSession] = None,
) -> CampaignResult:
    """Run (or resume) a campaign against its store.

    Already-stored trials are skipped; missing trials run — over a
    process pool when ``jobs > 1`` — and are committed to the store from
    the parent as each completes, so interrupting at any point loses at
    most the trials currently in flight.  Worker failures are retried up
    to ``retry.max_attempts`` times each; trials that exhaust their
    attempts raise :class:`CampaignError` (the completed ones are
    already stored, so the re-run is incremental).

    Every trial enters its point's :class:`ExperimentResult` in seed
    order, cached and fresh alike — the folded series equal an uncached
    sweep's.  The run is recorded as a manifest row in the store, and
    ``obs`` (or the active session) gets cache hit/miss counters.
    """
    own_store = store is None
    if own_store:
        if campaign.store_path is None:
            raise ValueError(
                "campaign has no store path; pass store= or set 'store' "
                "in the campaign definition"
            )
        store = ResultStore(campaign.store_path)
    assert store is not None
    if obs is None:
        obs = active_session()
    if jobs is None:
        jobs = get_default_jobs()
    if progress is None:
        progress = default_progress()
    start = time.perf_counter()
    campaign_span = span(
        "campaign.run",
        campaign=campaign.name,
        trials=campaign.total_trials,
        jobs=jobs,
    )
    try:
        campaign_span.__enter__()
        keyed = _campaign_keys(campaign)
        total = len(keyed)
        results: Dict[int, TrialResult] = {}
        key_by_ordinal: Dict[int, str] = {}
        fingerprints: Dict[int, Dict[str, Any]] = {}
        pending: List[Tuple[CampaignTask, str, Topology]] = []
        for task, key, topology in keyed:
            key_by_ordinal[task.ordinal] = key
            cached = store.get(key)
            if cached is not None:
                results[task.ordinal] = cached
                if obs is not None:
                    obs.note_cache(True)
            else:
                fingerprints[task.ordinal] = spec_fingerprint(
                    task.spec, topology, task.seed
                )
                pending.append((task, key, topology))
        hits = len(results)
        done_count = hits
        busy = 0.0
        failed_now = 0
        if progress is not None and hits:
            progress(
                Progress(
                    done=done_count,
                    total=total,
                    elapsed=time.perf_counter() - start,
                    label=f"{campaign.name} (cached)",
                )
            )

        obs_config = obs.worker_args() if obs is not None else None
        executed = 0
        retried = 0
        payloads: Dict[int, Dict[str, Any]] = {}
        attempt = 1
        failures: List[Tuple[CampaignTask, str, Topology, str]] = []
        while pending:
            failures = []
            failed_now = 0
            trial_tasks = [
                TrialTask(
                    index=task.ordinal,
                    topology=topology,
                    spec=task.spec,
                    seed=task.seed,
                    obs_config=obs_config,
                )
                for task, _key, topology in pending
            ]
            by_ordinal = {
                task.ordinal: (task, key, topology)
                for task, key, topology in pending
            }
            with span(
                "campaign.attempt", attempt=attempt, tasks=len(pending)
            ):
                for ordinal, trial, payload, error in _run_batch(
                    trial_tasks, jobs
                ):
                    task, key, topology = by_ordinal[ordinal]
                    if error is not None:
                        failures.append((task, key, topology, error))
                        failed_now += 1
                        if progress is not None:
                            progress(
                                Progress(
                                    done=done_count,
                                    total=total,
                                    elapsed=time.perf_counter() - start,
                                    label=campaign.name,
                                    busy_seconds=busy,
                                    failed=failed_now,
                                )
                            )
                        continue
                    assert trial is not None
                    # Parent-side write, durable the moment the trial lands.
                    store.put(key, trial, fingerprint=fingerprints[ordinal])
                    results[ordinal] = trial
                    if payload is not None:
                        payloads[ordinal] = payload
                    if obs is not None:
                        obs.note_cache(False)
                    executed += 1
                    done_count += 1
                    busy += trial.warmup_wall + trial.convergence_wall
                    if progress is not None:
                        progress(
                            Progress(
                                done=done_count,
                                total=total,
                                elapsed=time.perf_counter() - start,
                                label=campaign.name,
                                busy_seconds=busy,
                                failed=failed_now,
                            )
                        )
            if not failures:
                break
            if attempt >= retry.max_attempts:
                # Record the failure manifest *before* raising so
                # `campaign status --check` can attribute the gap to
                # specific cells (cleared automatically once a retry
                # lands the trials in the store).
                store.record_campaign(
                    campaign.name,
                    {
                        "campaign": campaign.to_dict(),
                        "total_trials": total,
                        "cache_hits": hits,
                        "executed": executed,
                        "retried": retried,
                        "jobs": jobs,
                        "wall_seconds": round(
                            time.perf_counter() - start, 3
                        ),
                        "failures": [
                            {
                                "label": t.label,
                                "x": t.x,
                                "seed": t.seed,
                                "error": err,
                            }
                            for t, _k, _topo, err in failures
                        ],
                    },
                )
                raise CampaignError(
                    f"{len(failures)} trial(s) failed after "
                    f"{retry.max_attempts} attempt(s): "
                    + "; ".join(
                        f"{t.label}/x={t.x:g}/seed={t.seed}: {err}"
                        for t, _k, _topo, err in failures[:5]
                    ),
                    [(t, err) for t, _k, _topo, err in failures],
                )
            attempt += 1
            retried += len(failures)
            pending = [
                (task, key, topology)
                for task, key, topology, _err in failures
            ]

        # Absorb worker observability in ordinal (fold) order.
        if obs is not None:
            with span("obs.absorb", payloads=len(payloads)):
                for ordinal in sorted(payloads):
                    obs.absorb(payloads[ordinal])

        with span("campaign.fold", trials=total):
            series_list, point_results = _fold(campaign, results)
        wall = time.perf_counter() - start
        manifest = {
            "campaign": campaign.to_dict(),
            "total_trials": total,
            "cache_hits": hits,
            "executed": executed,
            "retried": retried,
            "jobs": jobs,
            "wall_seconds": round(wall, 3),
            "schema_git_rev": git_revision(),
        }
        store.record_campaign(campaign.name, manifest)
        if obs is not None:
            obs.note_campaign(campaign.name, manifest)
        return CampaignResult(
            campaign=campaign,
            series=series_list,
            results=point_results,
            cache_hits=hits,
            cache_misses=executed,
            executed=executed,
            retried=retried,
            wall_seconds=wall,
        )
    finally:
        campaign_span.__exit__(None, None, None)
        if own_store:
            store.close()


def _run_batch(
    tasks: List[TrialTask], jobs: int
) -> Iterator[
    Tuple[int, Optional[TrialResult], Optional[Dict[str, Any]], Optional[str]]
]:
    """One attempt over a task batch; failures yielded, never raised.

    Outcomes stream back as each trial completes — the caller commits
    them to the store one by one, so an interrupt anywhere in the batch
    loses only the trials still in flight, never finished ones.
    """
    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield _guarded_execute(task)
        return
    # The persistent warm pool: workers (and their topology caches)
    # survive across batches and retry rounds, and campaigns group
    # trials by grid cell, so after the first batch nearly every chunk
    # lands on a worker that already holds its topology.  Trial failures
    # and worker deaths come back as error outcomes, which is exactly
    # the contract the retry loop wants.
    yield from get_worker_pool().run_guarded(tasks, jobs=jobs)


def _fold(
    campaign: Campaign, results: Dict[int, TrialResult]
) -> Tuple[List[Series], Dict[Tuple[str, float], ExperimentResult]]:
    """Seed-order fold into per-point results and per-scheme series."""
    point_results: Dict[Tuple[str, float], ExperimentResult] = {}
    for task in campaign.tasks():
        point = point_results.get((task.label, task.x))
        if point is None:
            point = point_results[(task.label, task.x)] = ExperimentResult(
                spec=task.spec
            )
        point.add(results[task.ordinal])
    x_name = campaign.axis
    series_list = []
    for label in campaign.schemes:
        series = Series(label=label, x_name=x_name)
        for x in campaign.values:
            series.add(x, point_results[(label, x)])
        series_list.append(series)
    return series_list, point_results


def load_campaign_results(
    campaign: Campaign, store: ResultStore
) -> Tuple[List[Series], Dict[Tuple[str, float], ExperimentResult]]:
    """Fold a campaign purely from the store (no simulation).

    Raises :class:`CampaignError` listing the gap when any trial of the
    grid is missing — ``export`` must never silently average over a
    partial seed set.
    """
    results: Dict[int, TrialResult] = {}
    missing: List[CampaignTask] = []
    for task, key, _topology in _campaign_keys(campaign):
        row = store.get(key)
        if row is None:
            missing.append(task)
        else:
            results[task.ordinal] = row
    if missing:
        raise CampaignError(
            f"campaign {campaign.name} is incomplete: "
            f"{len(missing)}/{campaign.total_trials} trials missing "
            f"(run `repro-bgp campaign resume` first)",
            [(t, "missing") for t in missing],
        )
    return _fold(campaign, results)
