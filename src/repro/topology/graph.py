"""The topology data model.

A :class:`Topology` is an undirected multigraph-free graph of routers.  Each
router belongs to an AS and sits at a point on the paper's 1000x1000 grid;
each link is either ``inter_as`` (an eBGP adjacency) or ``intra_as`` (an
iBGP/IGP adjacency inside a multi-router AS) and carries a one-way delay,
25 ms by default as in the paper.

Flat topologies (one router per AS) simply use the router id as the AS
number, which is how the paper's main experiments are configured.
"""

from __future__ import annotations

import math
from collections import Counter as _Counter
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

#: Side length of the placement grid used throughout the paper (Sec 3.1).
GRID_SIZE = 1000.0

#: One-way link delay: "transmission, propagation and reception" (Sec 3.1).
DEFAULT_LINK_DELAY = 0.025


class TopologyError(ValueError):
    """Raised for malformed topologies (duplicate links, dangling ids...)."""


@dataclass(frozen=True)
class Router:
    """A BGP router: identity, AS membership and grid position."""

    node_id: int
    asn: int
    x: float
    y: float

    def distance_to(self, other: "Router") -> float:
        """Euclidean grid distance to another router."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class Link:
    """An undirected link between two routers.

    ``kind`` is ``"inter_as"`` for eBGP adjacencies and ``"intra_as"`` for
    links between routers of the same AS.
    """

    a: int
    b: int
    delay: float = DEFAULT_LINK_DELAY
    kind: str = "inter_as"

    def endpoints(self) -> FrozenSet[int]:
        return frozenset((self.a, self.b))

    def other(self, node_id: int) -> int:
        """The endpoint opposite ``node_id``."""
        if node_id == self.a:
            return self.b
        if node_id == self.b:
            return self.a
        raise KeyError(f"node {node_id} is not an endpoint of {self}")


@dataclass
class Topology:
    """An immutable-ish router graph with AS structure and geometry.

    Mutation is limited to construction time (``add_router`` / ``add_link``);
    experiment code treats instances as read-only and derives failure
    scenarios without modifying them.
    """

    name: str = "topology"
    routers: Dict[int, Router] = field(default_factory=dict)
    links: List[Link] = field(default_factory=list)
    _adjacency: Dict[int, Dict[int, Link]] = field(default_factory=dict, repr=False)
    _link_keys: Set[FrozenSet[int]] = field(default_factory=set, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_router(self, router: Router) -> None:
        if router.node_id in self.routers:
            raise TopologyError(f"duplicate router id {router.node_id}")
        self.routers[router.node_id] = router
        self._adjacency[router.node_id] = {}

    def add_link(self, link: Link) -> None:
        if link.a == link.b:
            raise TopologyError(f"self-loop on node {link.a}")
        for end in (link.a, link.b):
            if end not in self.routers:
                raise TopologyError(f"link references unknown router {end}")
        key = link.endpoints()
        if key in self._link_keys:
            raise TopologyError(f"duplicate link {link.a}-{link.b}")
        if link.delay <= 0:
            raise TopologyError(f"non-positive link delay {link.delay}")
        self._link_keys.add(key)
        self.links.append(link)
        self._adjacency[link.a][link.b] = link
        self._adjacency[link.b][link.a] = link

    def connect(
        self,
        a: int,
        b: int,
        delay: float = DEFAULT_LINK_DELAY,
        kind: str = "inter_as",
    ) -> Link:
        """Convenience wrapper: build, add and return a link."""
        link = Link(a, b, delay, kind)
        self.add_link(link)
        return link

    def has_link(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._link_keys

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_routers(self) -> int:
        return len(self.routers)

    @property
    def num_links(self) -> int:
        return len(self.links)

    def node_ids(self) -> List[int]:
        return sorted(self.routers)

    def neighbors(self, node_id: int) -> List[int]:
        """Sorted neighbor ids of ``node_id``."""
        return sorted(self._adjacency[node_id])

    def link_between(self, a: int, b: int) -> Link:
        try:
            return self._adjacency[a][b]
        except KeyError:
            raise TopologyError(f"no link between {a} and {b}") from None

    def degree(self, node_id: int) -> int:
        return len(self._adjacency[node_id])

    def degree_sequence(self) -> List[int]:
        """Degrees of all routers, sorted descending."""
        return sorted(
            (len(nbrs) for nbrs in self._adjacency.values()), reverse=True
        )

    def average_degree(self) -> float:
        if not self.routers:
            return 0.0
        return 2.0 * len(self.links) / len(self.routers)

    def degree_histogram(self) -> Dict[int, int]:
        """Mapping degree -> number of routers with that degree."""
        return dict(_Counter(len(nbrs) for nbrs in self._adjacency.values()))

    # ------------------------------------------------------------------
    # AS structure
    # ------------------------------------------------------------------
    def as_numbers(self) -> List[int]:
        return sorted({r.asn for r in self.routers.values()})

    def as_members(self, asn: int) -> List[int]:
        """Router ids belonging to AS ``asn``, sorted."""
        return sorted(
            r.node_id for r in self.routers.values() if r.asn == asn
        )

    def as_of(self, node_id: int) -> int:
        return self.routers[node_id].asn

    def inter_as_degree(self, asn: int) -> int:
        """Number of inter-AS links incident to AS ``asn``."""
        return sum(
            1
            for link in self.links
            if link.kind == "inter_as"
            and (self.as_of(link.a) == asn) != (self.as_of(link.b) == asn)
        )

    def is_flat(self) -> bool:
        """True when every AS contains exactly one router."""
        return len(self.as_numbers()) == len(self.routers)

    # ------------------------------------------------------------------
    # Connectivity & geometry
    # ------------------------------------------------------------------
    def connected_components(
        self, exclude: Optional[Set[int]] = None
    ) -> List[Set[int]]:
        """Connected components, optionally ignoring ``exclude``-ed nodes."""
        excluded = exclude or set()
        unvisited = set(self.routers) - excluded
        components: List[Set[int]] = []
        while unvisited:
            start = next(iter(unvisited))
            component = {start}
            frontier = deque([start])
            unvisited.discard(start)
            while frontier:
                node = frontier.popleft()
                for nbr in self._adjacency[node]:
                    if nbr in unvisited:
                        unvisited.discard(nbr)
                        component.add(nbr)
                        frontier.append(nbr)
            components.append(component)
        return components

    def is_connected(self, exclude: Optional[Set[int]] = None) -> bool:
        excluded = exclude or set()
        remaining = len(self.routers) - len(excluded & set(self.routers))
        if remaining <= 1:
            return True
        components = self.connected_components(exclude=excluded)
        return len(components) == 1

    def nodes_within(self, cx: float, cy: float, radius: float) -> Set[int]:
        """Router ids within Euclidean ``radius`` of ``(cx, cy)``."""
        r2 = radius * radius
        return {
            r.node_id
            for r in self.routers.values()
            if (r.x - cx) ** 2 + (r.y - cy) ** 2 <= r2
        }

    def nodes_by_distance(self, cx: float, cy: float) -> List[int]:
        """All router ids ordered by distance from ``(cx, cy)``.

        Ties are broken by node id so the ordering is deterministic.
        """
        return [
            node_id
            for __, node_id in sorted(
                ((r.x - cx) ** 2 + (r.y - cy) ** 2, r.node_id)
                for r in self.routers.values()
            )
        ]

    def centroid(self) -> Tuple[float, float]:
        """Mean router position; grid center for an empty topology."""
        if not self.routers:
            return (GRID_SIZE / 2, GRID_SIZE / 2)
        n = len(self.routers)
        return (
            sum(r.x for r in self.routers.values()) / n,
            sum(r.y for r in self.routers.values()) / n,
        )

    # ------------------------------------------------------------------
    # Validation & summary
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`TopologyError` on structural problems."""
        if not self.routers:
            raise TopologyError("topology has no routers")
        isolated = [n for n in self.routers if not self._adjacency[n]]
        if isolated:
            raise TopologyError(f"isolated routers: {sorted(isolated)[:10]}")
        if not self.is_connected():
            sizes = sorted(
                (len(c) for c in self.connected_components()), reverse=True
            )
            raise TopologyError(f"topology is disconnected: components {sizes}")
        for link in self.links:
            same_as = self.as_of(link.a) == self.as_of(link.b)
            if link.kind == "intra_as" and not same_as:
                raise TopologyError(f"intra_as link crosses ASes: {link}")
            if link.kind == "inter_as" and same_as and not self.is_flat():
                raise TopologyError(f"inter_as link within one AS: {link}")

    def summary(self) -> str:
        """One-line human-readable description."""
        hist = self.degree_histogram()
        lo = min(hist) if hist else 0
        hi = max(hist) if hist else 0
        return (
            f"{self.name}: {self.num_routers} routers / "
            f"{len(self.as_numbers())} ASes, {self.num_links} links, "
            f"avg degree {self.average_degree():.2f}, degree range [{lo},{hi}]"
        )

    def iter_links_of(self, node_id: int) -> Iterator[Link]:
        return iter(self._adjacency[node_id].values())


def flat_topology_from_edges(
    edges: Iterable[Tuple[int, int]],
    positions: Optional[Dict[int, Tuple[float, float]]] = None,
    name: str = "topology",
    delay: float = DEFAULT_LINK_DELAY,
) -> Topology:
    """Build a flat (one router per AS) topology from an edge list.

    Node ids double as AS numbers.  Positions default to a deterministic
    diagonal layout when not supplied (tests often don't care about geometry).
    """
    edge_list = [tuple(sorted(e)) for e in edges]
    nodes = sorted({n for e in edge_list for n in e})
    topo = Topology(name=name)
    for i, node in enumerate(nodes):
        if positions and node in positions:
            x, y = positions[node]
        else:
            step = GRID_SIZE / max(1, len(nodes))
            x = y = (i + 0.5) * step
        topo.add_router(Router(node_id=node, asn=node, x=x, y=y))
    for a, b in sorted(set(edge_list)):
        topo.connect(a, b, delay=delay)
    return topo
