"""Multi-router-per-AS ("realistic") topologies — the Fig 13 networks.

Construction follows Sec 3.1 of the paper:

* the number of routers in each AS is drawn from a heavy-tailed distribution
  (a bounded Pareto here, range 1-100 in the paper);
* each AS owns a grid region whose area is proportional to its size (a
  perfect size/extent correlation, after Lakhina et al. [19]) and its routers
  are placed inside it;
* inter-AS degrees come from the Internet-derived distribution capped at 40,
  and the *highest degrees are assigned to the largest ASes* (after
  Tangmunarunkit et al. [20]);
* routers inside an AS are wired into a connected intra-AS graph (a random
  spanning tree plus a configurable fraction of extra chords);
* each inter-AS adjacency terminates at a randomly chosen border router on
  both sides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.topology.degree import (
    InternetDegreeDistribution,
    realize_degree_sequence,
)
from repro.topology.graph import (
    DEFAULT_LINK_DELAY,
    GRID_SIZE,
    Router,
    Topology,
)
from repro.topology.placement import (
    place_on_grid,
    place_within_region,
    region_extent_for_size,
)


@dataclass(frozen=True)
class MultiRouterSpec:
    """Parameters for a multi-router-per-AS topology.

    The paper's configuration is ``MultiRouterSpec(num_ases=120,
    max_routers_per_as=100)``; the defaults here are scaled down so that the
    simulations stay tractable in pure Python while preserving the structure
    (heavy-tailed AS sizes, size-correlated degree and extent).
    """

    num_ases: int = 40
    min_routers_per_as: int = 1
    max_routers_per_as: int = 12
    pareto_alpha: float = 1.2
    intra_as_chord_fraction: float = 0.3
    #: Fraction of an AS's routers that act as border routers.  Real ASes
    #: terminate their eBGP sessions on a small set of border routers, which
    #: is what concentrates update load on high-degree routers — the effect
    #: the paper's Fig 13 topologies exhibit.
    border_router_fraction: float = 0.35
    #: AS-level degree distribution.  alpha=1.6 keeps ~70% of ASes below
    #: degree 4 while matching the paper's reported ~3.4 average *after*
    #: graphicality repair at these AS counts (repair shaves the heaviest
    #: degrees, so the raw distribution must aim slightly higher).
    degree_distribution: InternetDegreeDistribution = field(
        default_factory=lambda: InternetDegreeDistribution(alpha=1.6)
    )

    def __post_init__(self) -> None:
        if self.num_ases < 3:
            raise ValueError("need at least 3 ASes")
        if not (1 <= self.min_routers_per_as <= self.max_routers_per_as):
            raise ValueError("bad router count range")
        if self.pareto_alpha <= 0:
            raise ValueError("pareto_alpha must be positive")
        if not (0.0 <= self.intra_as_chord_fraction <= 1.0):
            raise ValueError("chord fraction must be in [0, 1]")
        if not (0.0 < self.border_router_fraction <= 1.0):
            raise ValueError("border_router_fraction must be in (0, 1]")

    def sample_as_size(self, rng: random.Random) -> int:
        """Draw one AS size from a bounded Pareto distribution."""
        lo = float(self.min_routers_per_as)
        hi = float(self.max_routers_per_as)
        if lo == hi:
            return int(lo)
        alpha = self.pareto_alpha
        u = rng.random()
        # Inverse-CDF of the bounded Pareto on [lo, hi].
        x = (
            -(u * hi**alpha - u * lo**alpha - hi**alpha)
            / (hi**alpha * lo**alpha)
        ) ** (-1.0 / alpha)
        return max(int(lo), min(int(hi), int(round(x))))


def multi_router_topology(
    spec: Optional[MultiRouterSpec] = None,
    seed: int = 0,
    link_delay: float = DEFAULT_LINK_DELAY,
    grid_size: float = GRID_SIZE,
    name: Optional[str] = None,
) -> Topology:
    """Generate a multi-router-per-AS topology per ``spec``."""
    if spec is None:
        spec = MultiRouterSpec()
    rng = random.Random(seed)

    # 1. AS sizes (heavy-tailed) and inter-AS degree sequence.
    as_sizes = [spec.sample_as_size(rng) for __ in range(spec.num_ases)]
    degree_seq = spec.degree_distribution.sample(spec.num_ases, rng)
    # Assign the highest degrees to the largest ASes: sort both and match.
    size_order = sorted(range(spec.num_ases), key=lambda i: (-as_sizes[i], i))
    sorted_degrees = sorted(degree_seq, reverse=True)
    as_degree: Dict[int, int] = {}
    for rank, as_index in enumerate(size_order):
        as_degree[as_index] = sorted_degrees[rank]

    # 2. AS-level graph realized from the degree sequence.
    as_edges = realize_degree_sequence(
        [as_degree[i] for i in range(spec.num_ases)], rng, connected=True
    )

    # 3. Place AS regions and routers.
    total_routers = sum(as_sizes)
    as_centers = place_on_grid(list(range(spec.num_ases)), rng, grid_size)
    topo = Topology(name=name or f"multirouter-{spec.num_ases}as")
    as_router_ids: Dict[int, List[int]] = {}
    next_id = 0
    for as_index in range(spec.num_ases):
        size = as_sizes[as_index]
        ids = list(range(next_id, next_id + size))
        next_id += size
        as_router_ids[as_index] = ids
        half_extent = region_extent_for_size(size, total_routers, grid_size)
        positions = place_within_region(
            ids, as_centers[as_index], half_extent, rng, grid_size
        )
        for rid in ids:
            x, y = positions[rid]
            topo.add_router(Router(node_id=rid, asn=as_index, x=x, y=y))

    # 4. Intra-AS wiring: random spanning tree + chords.
    for as_index, ids in as_router_ids.items():
        _wire_intra_as(topo, ids, spec.intra_as_chord_fraction, rng, link_delay)

    # 5. Inter-AS links terminate at the ASes' border routers: a small
    # subset of each AS's routers carries all of its eBGP sessions.
    borders: Dict[int, List[int]] = {}
    for as_index, ids in as_router_ids.items():
        count = max(1, round(len(ids) * spec.border_router_fraction))
        borders[as_index] = rng.sample(ids, count)
    for a_as, b_as in sorted(set(as_edges)):
        a_router = rng.choice(borders[a_as])
        b_router = rng.choice(borders[b_as])
        if not topo.has_link(a_router, b_router):
            topo.connect(a_router, b_router, delay=link_delay, kind="inter_as")
    topo.validate()
    return topo


def _wire_intra_as(
    topo: Topology,
    ids: List[int],
    chord_fraction: float,
    rng: random.Random,
    link_delay: float,
) -> None:
    """Connect the routers of one AS: random tree plus extra chords."""
    if len(ids) <= 1:
        return
    shuffled = list(ids)
    rng.shuffle(shuffled)
    for i in range(1, len(shuffled)):
        parent = shuffled[rng.randrange(i)]
        topo.connect(parent, shuffled[i], delay=link_delay, kind="intra_as")
    n = len(ids)
    extra = int(chord_fraction * n)
    attempts = 0
    while extra > 0 and attempts < 20 * n:
        attempts += 1
        a, b = rng.sample(ids, 2)
        if not topo.has_link(a, b):
            topo.connect(a, b, delay=link_delay, kind="intra_as")
            extra -= 1
