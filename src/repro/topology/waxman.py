"""Waxman random topologies (BRITE's geometric model).

Waxman's model [Waxman 1988] connects nodes u, v with probability
``alpha * exp(-d(u, v) / (beta * L))`` where L is the grid diagonal.  BRITE
offers it as one of its AS-level generators; the paper lists it among the
models its modified BRITE supports, so it is included for verification
topologies and ablations.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.topology.graph import (
    DEFAULT_LINK_DELAY,
    GRID_SIZE,
    Router,
    Topology,
    TopologyError,
)
from repro.topology.placement import place_on_grid


def waxman_topology(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.25,
    seed: int = 0,
    link_delay: float = DEFAULT_LINK_DELAY,
    grid_size: float = GRID_SIZE,
    max_retries: int = 50,
) -> Topology:
    """Generate a connected Waxman graph on the grid.

    Edges are sampled independently; if the result is disconnected the
    smaller components are attached through their closest node pair (a
    standard BRITE-style repair), and as a last resort the sampling is
    retried with a fresh stream.
    """
    if n < 2:
        raise ValueError("need at least 2 nodes")
    if not (0 < alpha <= 1) or beta <= 0:
        raise ValueError("need 0 < alpha <= 1 and beta > 0")
    rng = random.Random(seed)
    diagonal = math.hypot(grid_size, grid_size)
    for __ in range(max_retries):
        positions = place_on_grid(list(range(n)), rng, grid_size)
        edges: List[Tuple[int, int]] = []
        for a in range(n):
            ax, ay = positions[a]
            for b in range(a + 1, n):
                bx, by = positions[b]
                dist = math.hypot(ax - bx, ay - by)
                if rng.random() < alpha * math.exp(-dist / (beta * diagonal)):
                    edges.append((a, b))
        edges = _repair_connectivity(edges, positions, n)
        if edges is None:
            continue
        topo = Topology(name=f"waxman-{n}")
        for node_id in range(n):
            x, y = positions[node_id]
            topo.add_router(Router(node_id=node_id, asn=node_id, x=x, y=y))
        for a, b in sorted(set(edges)):
            topo.connect(a, b, delay=link_delay)
        topo.validate()
        return topo
    raise TopologyError("could not generate a connected Waxman graph")


def _repair_connectivity(
    edges: List[Tuple[int, int]],
    positions: dict,
    n: int,
) -> List[Tuple[int, int]] | None:
    """Attach stray components via their geometrically closest node pair."""
    adj: dict[int, set[int]] = {i: set() for i in range(n)}
    for a, b in edges:
        adj[a].add(b)
        adj[b].add(a)

    def component_of(start: int, seen: set[int]) -> set[int]:
        comp = {start}
        stack = [start]
        seen.add(start)
        while stack:
            v = stack.pop()
            for u in adj[v]:
                if u not in seen:
                    seen.add(u)
                    comp.add(u)
                    stack.append(u)
        return comp

    seen: set[int] = set()
    comps = []
    for i in range(n):
        if i not in seen:
            comps.append(component_of(i, seen))
    if len(comps) == 1:
        return edges
    comps.sort(key=len, reverse=True)
    main = comps[0]
    result = list(edges)
    for comp in comps[1:]:
        best = None
        for u in comp:
            ux, uy = positions[u]
            for v in main:
                vx, vy = positions[v]
                d = (ux - vx) ** 2 + (uy - vy) ** 2
                if best is None or d < best[0]:
                    best = (d, min(u, v), max(u, v))
        assert best is not None
        result.append((best[1], best[2]))
        main |= comp
    return result
