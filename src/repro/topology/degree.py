"""Degree sequences: specification, graphicality, realization.

The paper's main instrument is a family of *skewed* degree distributions:
"70-30" means 70% of the nodes draw a low degree (1-3) and 30% get a fixed
high degree (8), tuned so the average degree is ~3.8.  This module provides

* :class:`SkewedDegreeSpec` — the low/high split, with helpers matching the
  paper's 70-30, 50-50 and 85-15 configurations;
* :class:`InternetDegreeDistribution` — a capped discrete power law standing
  in for the measured AS connectivity data of Zhang et al. [18] (70% of ASes
  with degree < 4; the paper caps the maximum degree at 40);
* Erdos-Gallai graphicality testing, sequence repair, Havel-Hakimi
  realization, degree-preserving randomization (double edge swaps) and
  connectivity repair.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple


class DegreeSequenceError(ValueError):
    """Raised when a degree sequence cannot be realized as a simple graph."""


# ---------------------------------------------------------------------------
# Specifications
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SkewedDegreeSpec:
    """A two-class ("skewed") degree distribution.

    ``low_fraction`` of nodes draw uniformly from ``low_range`` (inclusive);
    the rest draw uniformly from ``high_range``.  The paper's configurations:

    * 70-30: 70% degree 1-3, 30% degree 8 (avg 3.8)
    * 50-50: 50% degree 1-3, 50% degree 5-6 (avg 3.8)
    * 85-15: 85% degree 1-3, 15% degree 14 (avg 3.8)
    * 50-50 high-degree variant: highs 13-14 (avg 7.6) for Fig 5
    """

    low_fraction: float
    low_range: Tuple[int, int] = (1, 3)
    high_range: Tuple[int, int] = (8, 8)
    name: str = "skewed"

    def __post_init__(self) -> None:
        if not (0.0 < self.low_fraction < 1.0):
            raise ValueError("low_fraction must be in (0, 1)")
        for lo, hi in (self.low_range, self.high_range):
            if lo < 1 or hi < lo:
                raise ValueError(f"bad degree range ({lo}, {hi})")

    # Paper presets ------------------------------------------------------
    @classmethod
    def paper_70_30(cls) -> "SkewedDegreeSpec":
        """70% degree 1-3, 30% degree 8; the default topology (Sec 4.1)."""
        return cls(0.70, (1, 3), (8, 8), name="70-30")

    @classmethod
    def paper_50_50(cls) -> "SkewedDegreeSpec":
        """50% degree 1-3, 50% degree 5-6; same average degree 3.8 (Fig 4)."""
        return cls(0.50, (1, 3), (5, 6), name="50-50")

    @classmethod
    def paper_85_15(cls) -> "SkewedDegreeSpec":
        """85% degree 1-3, 15% degree 14; same average degree 3.8 (Fig 4)."""
        return cls(0.85, (1, 3), (14, 14), name="85-15")

    @classmethod
    def paper_50_50_dense(cls) -> "SkewedDegreeSpec":
        """50% degree 1-3, 50% degree 13-14; average degree ~7.6 (Fig 5)."""
        return cls(0.50, (1, 3), (13, 14), name="50-50-dense")

    def expected_average_degree(self) -> float:
        low_mean = sum(self.low_range) / 2.0
        high_mean = sum(self.high_range) / 2.0
        return self.low_fraction * low_mean + (1 - self.low_fraction) * high_mean

    def sample(self, n: int, rng: random.Random) -> List[int]:
        """Draw a degree sequence of length ``n`` (not yet graphicalized).

        The class split is exact (``round(n * low_fraction)`` low nodes),
        matching how the paper describes its topologies; only the in-class
        degree draw is random.
        """
        if n < 2:
            raise ValueError("need at least 2 nodes")
        n_low = round(n * self.low_fraction)
        n_low = min(max(n_low, 1), n - 1)
        degrees = [
            rng.randint(*self.low_range) for __ in range(n_low)
        ] + [
            rng.randint(*self.high_range) for __ in range(n - n_low)
        ]
        rng.shuffle(degrees)
        return degrees

    def high_degree_threshold(self) -> int:
        """Smallest degree considered "high" under this spec.

        Used by degree-dependent MRAI assignment: a realized node counts as
        high-degree when its degree reaches the spec's high range (sequence
        repair can shave a realized degree by one, so we allow slack of one).
        """
        return max(self.low_range[1] + 1, self.high_range[0] - 1)


@dataclass(frozen=True)
class InternetDegreeDistribution:
    """A capped discrete power law approximating measured AS degrees.

    P(degree = k) proportional to k**-alpha for k in [1, max_degree].  With
    the default ``alpha`` = 1.8 about 78% of samples fall in 1-3 and the
    expected average degree is ~3.3, matching the statistics the paper
    quotes for the real AS graph (70% of ASes connected to < 4 others;
    average ~3.4 with the maximum degree capped at 40 for 120 ASes).
    """

    alpha: float = 1.8
    max_degree: int = 40
    min_degree: int = 1

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1")
        if not (1 <= self.min_degree <= self.max_degree):
            raise ValueError("need 1 <= min_degree <= max_degree")

    def pmf(self) -> Dict[int, float]:
        """The normalized probability mass function."""
        weights = {
            k: k ** -self.alpha
            for k in range(self.min_degree, self.max_degree + 1)
        }
        total = sum(weights.values())
        return {k: w / total for k, w in weights.items()}

    def sample(self, n: int, rng: random.Random) -> List[int]:
        """Draw ``n`` degrees i.i.d. from the capped power law."""
        if n < 2:
            raise ValueError("need at least 2 nodes")
        ks = list(range(self.min_degree, self.max_degree + 1))
        weights = [k ** -self.alpha for k in ks]
        return rng.choices(ks, weights=weights, k=n)

    def expected_average_degree(self) -> float:
        return sum(k * p for k, p in self.pmf().items())


# ---------------------------------------------------------------------------
# Graphicality
# ---------------------------------------------------------------------------
def is_graphical(sequence: Sequence[int]) -> bool:
    """Erdos-Gallai test: can ``sequence`` be realized as a simple graph?"""
    degrees = sorted(sequence, reverse=True)
    n = len(degrees)
    if n == 0:
        return True
    if any(d < 0 for d in degrees) or degrees[0] >= n:
        return False
    if sum(degrees) % 2:
        return False
    prefix = list(itertools.accumulate(degrees))
    for k in range(1, n + 1):
        lhs = prefix[k - 1]
        rhs = k * (k - 1) + sum(min(d, k) for d in degrees[k:])
        if lhs > rhs:
            return False
    return True


def make_graphical(sequence: Sequence[int], n_max: int | None = None) -> List[int]:
    """Minimally repair ``sequence`` into a graphical one.

    Repairs applied, in order: clip degrees into [1, n-1]; fix odd total by
    bumping the smallest degree by one (or shaving a largest degree when
    bumping is impossible); then, while the Erdos-Gallai condition fails,
    shave the largest degree.  The result preserves the *shape* of the input
    — which is all the paper's synthetic distributions require.
    """
    degrees = list(sequence)
    n = len(degrees)
    if n_max is None:
        n_max = n - 1
    if n < 2:
        raise DegreeSequenceError("need at least 2 nodes")
    degrees = [min(max(d, 1), n_max) for d in degrees]
    if sum(degrees) % 2:
        # Prefer raising a low degree: it keeps the high class intact.
        idx = min(range(n), key=lambda i: (degrees[i], i))
        if degrees[idx] < n_max:
            degrees[idx] += 1
        else:
            idx = max(range(n), key=lambda i: (degrees[i], -i))
            degrees[idx] -= 1
    guard = 0
    while not is_graphical(degrees):
        guard += 1
        if guard > sum(degrees):
            raise DegreeSequenceError(
                f"could not repair degree sequence: {sorted(degrees, reverse=True)[:10]}..."
            )
        hi = max(range(n), key=lambda i: (degrees[i], -i))
        lo = min(range(n), key=lambda i: (degrees[i], i))
        if degrees[hi] - degrees[lo] >= 2:
            degrees[hi] -= 1
            degrees[lo] += 1
        else:
            # All degrees nearly equal yet non-graphical: drop a pair.
            degrees[hi] -= 1
            second = max(
                (i for i in range(n) if i != hi),
                key=lambda i: (degrees[i], -i),
            )
            degrees[second] -= 1
    return degrees


# ---------------------------------------------------------------------------
# Realization
# ---------------------------------------------------------------------------
def havel_hakimi_graph(sequence: Sequence[int]) -> List[Tuple[int, int]]:
    """Realize a graphical sequence as an edge list (Havel-Hakimi).

    Node ``i`` gets degree ``sequence[i]``.  Deterministic; follow with
    :func:`rewire_for_randomness` to sample a (approximately) uniform member
    of the degree-sequence family.
    """
    if not is_graphical(sequence):
        raise DegreeSequenceError("sequence is not graphical")
    remaining = [[d, i] for i, d in enumerate(sequence)]
    edges: List[Tuple[int, int]] = []
    while True:
        remaining.sort(key=lambda pair: (-pair[0], pair[1]))
        d, v = remaining[0]
        if d == 0:
            break
        if d >= len(remaining):
            raise DegreeSequenceError("sequence is not graphical (internal)")
        remaining[0][0] = 0
        for k in range(1, d + 1):
            remaining[k][0] -= 1
            if remaining[k][0] < 0:
                raise DegreeSequenceError("sequence is not graphical (internal)")
            u = remaining[k][1]
            edges.append((min(v, u), max(v, u)))
    return edges


def rewire_for_randomness(
    edges: List[Tuple[int, int]],
    rng: random.Random,
    swaps_per_edge: float = 4.0,
) -> List[Tuple[int, int]]:
    """Randomize a simple graph with degree-preserving double edge swaps.

    Picks two edges (a,b), (c,d) and rewires them to (a,d), (c,b) when that
    neither duplicates an edge nor creates a self-loop.  ``swaps_per_edge``
    successful-or-not attempts per edge is plenty to decorrelate from the
    Havel-Hakimi starting point.
    """
    edge_list = [tuple(sorted(e)) for e in edges]
    edge_set: Set[Tuple[int, int]] = set(edge_list)
    if len(edge_set) != len(edge_list):
        raise DegreeSequenceError("input edge list has duplicates")
    m = len(edge_list)
    if m < 2:
        return edge_list
    attempts = int(m * swaps_per_edge)
    for __ in range(attempts):
        i = rng.randrange(m)
        j = rng.randrange(m)
        if i == j:
            continue
        a, b = edge_list[i]
        c, d = edge_list[j]
        # Randomly orient the second edge for unbiased swaps.
        if rng.random() < 0.5:
            c, d = d, c
        if len({a, b, c, d}) < 4:
            continue
        new1 = (min(a, d), max(a, d))
        new2 = (min(c, b), max(c, b))
        if new1 in edge_set or new2 in edge_set:
            continue
        edge_set.discard((a, b))
        edge_set.discard((min(c, d), max(c, d)))
        edge_set.add(new1)
        edge_set.add(new2)
        edge_list[i] = new1
        edge_list[j] = new2
    return edge_list


def find_bridges(
    adj: Dict[int, Set[int]], nodes: Set[int]
) -> Set[Tuple[int, int]]:
    """Bridges (cut edges) within ``nodes``, as sorted tuples.

    Iterative Tarjan lowlink computation, safe for deep/path-like graphs.
    """
    disc: Dict[int, int] = {}
    low: Dict[int, int] = {}
    bridges: Set[Tuple[int, int]] = set()
    counter = 0
    for root in nodes:
        if root in disc:
            continue
        # Stack entries: (node, parent, iterator over neighbors).
        disc[root] = low[root] = counter
        counter += 1
        stack = [(root, -1, iter(adj[root]))]
        while stack:
            v, parent, it = stack[-1]
            advanced = False
            for u in it:
                if u == parent:
                    continue
                if u in disc:
                    low[v] = min(low[v], disc[u])
                else:
                    disc[u] = low[u] = counter
                    counter += 1
                    stack.append((u, v, iter(adj[u])))
                    advanced = True
                    break
            if not advanced:
                stack.pop()
                if parent != -1:
                    low[parent] = min(low[parent], low[v])
                    if low[v] > disc[parent]:
                        bridges.add((min(parent, v), max(parent, v)))
    return bridges


def connect_graph(
    edges: List[Tuple[int, int]],
    n: int,
    rng: random.Random,
    max_iterations: int = 10000,
) -> List[Tuple[int, int]]:
    """Make the graph connected via degree-preserving double edge swaps.

    While more than one component exists, take a *non-bridge* edge (a, b)
    from a component that contains a cycle and any edge (c, d) from another
    component, and rewire to (a, c), (b, d): the cyclic component stays
    connected (the removed edge was on a cycle) and the other component is
    grafted on, so the component count strictly drops.  A component with a
    cycle always exists while the graph is disconnected and has at least
    n - 1 edges; sparser inputs cannot be connected degree-preservingly and
    raise :class:`DegreeSequenceError`.
    """
    edge_list = [tuple(sorted(e)) for e in edges]
    edge_set = set(edge_list)
    if len(edge_list) < n - 1:
        raise DegreeSequenceError(
            f"{len(edge_list)} edges cannot connect {n} nodes"
        )

    def analyze():
        adj: Dict[int, Set[int]] = {i: set() for i in range(n)}
        for a, b in edge_list:
            adj[a].add(b)
            adj[b].add(a)
        seen: Set[int] = set()
        comps: List[Set[int]] = []
        for start in range(n):
            if start in seen:
                continue
            comp = {start}
            stack = [start]
            seen.add(start)
            while stack:
                v = stack.pop()
                for u in adj[v]:
                    if u not in seen:
                        seen.add(u)
                        comp.add(u)
                        stack.append(u)
            comps.append(comp)
        return adj, comps

    for __ in range(max_iterations):
        adj, comps = analyze()
        if len(comps) == 1:
            return edge_list
        comp_of: Dict[int, int] = {}
        for idx, comp in enumerate(comps):
            for v in comp:
                comp_of[v] = idx
        edges_by_comp: Dict[int, List[int]] = {}
        for i, (a, __b) in enumerate(edge_list):
            edges_by_comp.setdefault(comp_of[a], []).append(i)
        # A cyclic component has at least as many edges as nodes.
        cyclic = [
            idx
            for idx, comp in enumerate(comps)
            if len(edges_by_comp.get(idx, [])) >= len(comp)
        ]
        if not cyclic:
            raise DegreeSequenceError(
                "no component contains a cycle; sequence cannot be "
                "connected degree-preservingly"
            )
        cyc = rng.choice(cyclic)
        bridges = find_bridges(adj, comps[cyc])
        non_bridges = [
            i for i in edges_by_comp[cyc] if edge_list[i] not in bridges
        ]
        assert non_bridges, "cyclic component must contain a non-bridge edge"
        others = [idx for idx in edges_by_comp if idx != cyc]
        i = rng.choice(non_bridges)
        j = rng.choice(edges_by_comp[rng.choice(others)])
        a, b = edge_list[i]
        c, d = edge_list[j]
        if rng.random() < 0.5:
            c, d = d, c
        new1 = (min(a, c), max(a, c))
        new2 = (min(b, d), max(b, d))
        if new1 in edge_set or new2 in edge_set:
            new1 = (min(a, d), max(a, d))
            new2 = (min(b, c), max(b, c))
            if new1 in edge_set or new2 in edge_set:
                continue
        edge_set.discard(edge_list[i])
        edge_set.discard(edge_list[j])
        edge_set.add(new1)
        edge_set.add(new2)
        edge_list[i] = new1
        edge_list[j] = new2
    raise DegreeSequenceError("connectivity repair did not converge")


def ensure_connectable(sequence: Sequence[int]) -> List[int]:
    """Raise the smallest degrees until a connected realization can exist.

    A connected simple graph on n nodes needs at least n - 1 edges, i.e.
    degree sum >= 2(n - 1).  Sparse draws (possible for small n under
    heavy-tailed distributions) are minimally thickened by bumping the
    lowest degrees — the change the paper's own generator would have to
    make, since its networks are always connected.
    """
    degrees = list(sequence)
    n = len(degrees)
    needed = 2 * (n - 1)
    while sum(degrees) < needed:
        idx = min(range(n), key=lambda i: (degrees[i], i))
        degrees[idx] += 1
    return degrees


def realize_degree_sequence(
    sequence: Sequence[int],
    rng: random.Random,
    connected: bool = True,
) -> List[Tuple[int, int]]:
    """Full pipeline: thicken -> repair -> Havel-Hakimi -> randomize -> connect."""
    working = ensure_connectable(sequence) if connected else list(sequence)
    graphical = make_graphical(working)
    edges = havel_hakimi_graph(graphical)
    edges = rewire_for_randomness(edges, rng)
    if connected:
        edges = connect_graph(edges, len(graphical), rng)
    return edges
