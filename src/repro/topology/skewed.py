"""Skewed-degree flat topologies — the paper's workhorse networks.

``skewed_topology(120, SkewedDegreeSpec.paper_70_30(), seed)`` reproduces the
default configuration of Sec 4.1: 120 single-router ASes, 70% with degree
1-3 and 30% with degree 8 (average 3.8), placed uniformly on the 1000x1000
grid, every link with a 25 ms one-way delay.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.topology.degree import SkewedDegreeSpec, realize_degree_sequence
from repro.topology.graph import (
    DEFAULT_LINK_DELAY,
    GRID_SIZE,
    Router,
    Topology,
)
from repro.topology.placement import place_on_grid


def skewed_topology(
    n: int,
    spec: Optional[SkewedDegreeSpec] = None,
    seed: int = 0,
    link_delay: float = DEFAULT_LINK_DELAY,
    grid_size: float = GRID_SIZE,
    name: Optional[str] = None,
) -> Topology:
    """Generate a connected flat topology with a skewed degree distribution.

    Parameters
    ----------
    n:
        Number of ASes (= routers); the paper uses 120 with 60/240 checks.
    spec:
        The low/high degree split; defaults to the paper's 70-30.
    seed:
        Seeds both the degree draw and the placement.
    """
    if spec is None:
        spec = SkewedDegreeSpec.paper_70_30()
    rng = random.Random(seed)
    sequence = spec.sample(n, rng)
    edges = realize_degree_sequence(sequence, rng, connected=True)
    positions = place_on_grid(list(range(n)), rng, grid_size)
    topo = Topology(name=name or f"skewed-{spec.name}-{n}")
    for node_id in range(n):
        x, y = positions[node_id]
        topo.add_router(Router(node_id=node_id, asn=node_id, x=x, y=y))
    for a, b in sorted(set(edges)):
        topo.connect(a, b, delay=link_delay)
    topo.validate()
    return topo
