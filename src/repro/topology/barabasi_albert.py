"""Barabasi-Albert preferential-attachment topologies.

BRITE's BA model [Barabasi & Albert 1999]: nodes join one at a time and
attach ``m`` links to existing nodes with probability proportional to their
current degree.  Produces the heavy-tailed degree distributions that the
paper's skewed two-class distributions approximate in a controlled way.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.topology.graph import (
    DEFAULT_LINK_DELAY,
    GRID_SIZE,
    Router,
    Topology,
)
from repro.topology.placement import place_on_grid


def barabasi_albert_topology(
    n: int,
    m: int = 2,
    seed: int = 0,
    link_delay: float = DEFAULT_LINK_DELAY,
    grid_size: float = GRID_SIZE,
) -> Topology:
    """Generate a BA graph with ``m`` attachments per new node.

    The seed graph is a clique on ``m + 1`` nodes, so the result is always
    connected.  Grid positions are uniform, as in the paper's setup.
    """
    if n < 3:
        raise ValueError("need at least 3 nodes")
    if not (1 <= m < n):
        raise ValueError("need 1 <= m < n")
    rng = random.Random(seed)
    edges: List[Tuple[int, int]] = []
    # repeated_nodes holds one entry per incident edge end — sampling from it
    # is sampling proportionally to degree.
    repeated_nodes: List[int] = []
    seed_size = m + 1
    for a in range(seed_size):
        for b in range(a + 1, seed_size):
            edges.append((a, b))
            repeated_nodes.extend((a, b))
    for new_node in range(seed_size, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(rng.choice(repeated_nodes))
        for target in sorted(targets):
            edges.append((target, new_node))
            repeated_nodes.extend((target, new_node))
    positions = place_on_grid(list(range(n)), rng, grid_size)
    topo = Topology(name=f"barabasi-albert-{n}-m{m}")
    for node_id in range(n):
        x, y = positions[node_id]
        topo.add_router(Router(node_id=node_id, asn=node_id, x=x, y=y))
    for a, b in sorted(set(edges)):
        topo.connect(a, b, delay=link_delay)
    topo.validate()
    return topo
