"""Topology generation (the BRITE substitute).

The paper generates AS-level topologies with a modified BRITE: mostly flat
(one router per AS) graphs with *skewed* degree distributions ("70-30",
"50-50", "85-15"), plus verification topologies using Waxman,
Barabasi-Albert, GLP, an Internet-derived degree distribution, and
multi-router-per-AS hierarchies.  All of those are implemented here.

Every generator returns a :class:`~repro.topology.graph.Topology`: routers
with grid coordinates and AS numbers, undirected links with one-way delays,
and helpers for degrees, connectivity and geometric queries.
"""

from repro.topology.barabasi_albert import barabasi_albert_topology
from repro.topology.degree import (
    DegreeSequenceError,
    InternetDegreeDistribution,
    SkewedDegreeSpec,
    havel_hakimi_graph,
    is_graphical,
    make_graphical,
    rewire_for_randomness,
)
from repro.topology.glp import glp_topology
from repro.topology.graph import GRID_SIZE, Link, Router, Topology, TopologyError
from repro.topology.internet import internet_like_topology
from repro.topology.multirouter import MultiRouterSpec, multi_router_topology
from repro.topology.placement import place_on_grid, place_within_region
from repro.topology.serialize import (
    degree_sequence_from_file,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.skewed import skewed_topology
from repro.topology.waxman import waxman_topology

__all__ = [
    "DegreeSequenceError",
    "GRID_SIZE",
    "InternetDegreeDistribution",
    "Link",
    "MultiRouterSpec",
    "Router",
    "SkewedDegreeSpec",
    "Topology",
    "TopologyError",
    "barabasi_albert_topology",
    "degree_sequence_from_file",
    "glp_topology",
    "load_topology",
    "save_topology",
    "topology_from_dict",
    "topology_to_dict",
    "havel_hakimi_graph",
    "internet_like_topology",
    "is_graphical",
    "make_graphical",
    "multi_router_topology",
    "place_on_grid",
    "place_within_region",
    "rewire_for_randomness",
    "skewed_topology",
    "waxman_topology",
]
