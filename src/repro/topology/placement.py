"""Geometric placement of routers on the paper's 1000x1000 grid.

The paper places routers uniformly at random on the grid and then fails
contiguous regions (Sec 3.1).  For multi-router topologies, each AS owns a
square region whose area is proportional to its router count (the paper
assumes a perfect size/extent correlation, citing Lakhina et al. [19]) and
its routers are placed inside that region.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Tuple

from repro.topology.graph import GRID_SIZE


def place_on_grid(
    node_ids: List[int],
    rng: random.Random,
    grid_size: float = GRID_SIZE,
) -> Dict[int, Tuple[float, float]]:
    """Uniform random positions for ``node_ids`` on the square grid."""
    return {
        node_id: (rng.uniform(0.0, grid_size), rng.uniform(0.0, grid_size))
        for node_id in sorted(node_ids)
    }


def place_within_region(
    node_ids: List[int],
    center: Tuple[float, float],
    half_extent: float,
    rng: random.Random,
    grid_size: float = GRID_SIZE,
) -> Dict[int, Tuple[float, float]]:
    """Uniform positions within a square region clipped to the grid."""
    cx, cy = center
    lo_x = max(0.0, cx - half_extent)
    hi_x = min(grid_size, cx + half_extent)
    lo_y = max(0.0, cy - half_extent)
    hi_y = min(grid_size, cy + half_extent)
    return {
        node_id: (rng.uniform(lo_x, hi_x), rng.uniform(lo_y, hi_y))
        for node_id in sorted(node_ids)
    }


def region_extent_for_size(
    size: int,
    total_size: int,
    grid_size: float = GRID_SIZE,
    coverage: float = 0.5,
) -> float:
    """Half-extent of an AS region proportional to its router share.

    ``coverage`` is the fraction of the total grid area that all AS regions
    would jointly cover if disjoint; 0.5 leaves room for overlap, which real
    AS footprints certainly have.
    """
    if size < 1 or total_size < 1:
        raise ValueError("sizes must be positive")
    area = coverage * grid_size * grid_size * (size / total_size)
    return max(1.0, math.sqrt(area) / 2.0)
