"""Generalized Linear Preference (GLP) topologies.

GLP [Bu & Towsley 2002] extends Barabasi-Albert in two ways: the attachment
probability is proportional to ``degree - beta`` (beta < 1 tunes the power-law
exponent), and with probability ``p`` each step adds links between *existing*
nodes instead of adding a new node.  BRITE ships GLP as an AS-level model and
the paper lists it among the generators its modified BRITE supports.
"""

from __future__ import annotations

import random
from typing import List, Set, Tuple

from repro.topology.graph import (
    DEFAULT_LINK_DELAY,
    GRID_SIZE,
    Router,
    Topology,
)
from repro.topology.placement import place_on_grid


def glp_topology(
    n: int,
    m: int = 2,
    p: float = 0.45,
    beta: float = 0.64,
    seed: int = 0,
    link_delay: float = DEFAULT_LINK_DELAY,
    grid_size: float = GRID_SIZE,
) -> Topology:
    """Generate a GLP graph (defaults are the values from Bu & Towsley).

    Parameters
    ----------
    m:
        Links added per step.
    p:
        Probability that a step adds links between existing nodes rather
        than attaching a new node.
    beta:
        Preference shift; must be < 1.  Larger beta -> stronger preference
        for high-degree nodes.
    """
    if n < 3:
        raise ValueError("need at least 3 nodes")
    if not (1 <= m < n):
        raise ValueError("need 1 <= m < n")
    if not (0.0 <= p < 1.0):
        raise ValueError("need 0 <= p < 1")
    if beta >= 1.0:
        raise ValueError("need beta < 1")
    rng = random.Random(seed)
    degrees: List[float] = [0.0] * n
    edges: Set[Tuple[int, int]] = set()
    active: List[int] = []

    def add_edge(a: int, b: int) -> bool:
        if a == b:
            return False
        key = (min(a, b), max(a, b))
        if key in edges:
            return False
        edges.add(key)
        degrees[a] += 1
        degrees[b] += 1
        return True

    def pick_preferential(exclude: Set[int]) -> int:
        weights = [
            (node, degrees[node] - beta)
            for node in active
            if node not in exclude
        ]
        total = sum(max(w, 1e-9) for __, w in weights)
        r = rng.uniform(0.0, total)
        acc = 0.0
        for node, w in weights:
            acc += max(w, 1e-9)
            if r <= acc:
                return node
        return weights[-1][0]

    # Seed: a small clique so preferential choice is well-defined.
    seed_size = m + 1
    for a in range(seed_size):
        active.append(a)
        for b in range(a + 1, seed_size):
            add_edge(a, b)
    next_node = seed_size
    while next_node < n:
        if rng.random() < p and len(active) > m + 1:
            # Internal growth: m new links between existing nodes.
            for __ in range(m):
                for __attempt in range(20):
                    a = pick_preferential(set())
                    b = pick_preferential({a})
                    if add_edge(a, b):
                        break
        else:
            new_node = next_node
            next_node += 1
            chosen: Set[int] = set()
            while len(chosen) < m:
                chosen.add(pick_preferential(chosen))
            active.append(new_node)
            for target in sorted(chosen):
                add_edge(target, new_node)
    positions = place_on_grid(list(range(n)), rng, grid_size)
    topo = Topology(name=f"glp-{n}-m{m}")
    for node_id in range(n):
        x, y = positions[node_id]
        topo.add_router(Router(node_id=node_id, asn=node_id, x=x, y=y))
    for a, b in sorted(edges):
        topo.connect(a, b, delay=link_delay)
    topo.validate()
    return topo
