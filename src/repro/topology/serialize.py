"""Topology serialization.

BRITE's main interoperability feature was file export ("BRITE can export
topologies in the format used by SSFNet"); the equivalent here is a stable
JSON representation, so generated topologies can be stored, diffed, shared
between experiment runs, and — most importantly for reproduction work —
*measured* degree sequences or AS graphs can be imported from files instead
of synthesized.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.topology.graph import Link, Router, Topology

#: Format identifier stored in every file; bump on breaking changes.
FORMAT_VERSION = 1


def topology_to_dict(topology: Topology) -> Dict[str, Any]:
    """A JSON-ready dictionary capturing the full topology."""
    return {
        "format": "repro-topology",
        "version": FORMAT_VERSION,
        "name": topology.name,
        "routers": [
            {"id": r.node_id, "asn": r.asn, "x": r.x, "y": r.y}
            for r in sorted(topology.routers.values(), key=lambda r: r.node_id)
        ],
        "links": [
            {"a": l.a, "b": l.b, "delay": l.delay, "kind": l.kind}
            for l in topology.links
        ],
    }


def topology_from_dict(data: Dict[str, Any]) -> Topology:
    """Rebuild a topology from :func:`topology_to_dict` output.

    Validates the format marker and structural integrity (the Topology
    constructor enforces no duplicate routers/links, known endpoints...).
    """
    if data.get("format") != "repro-topology":
        raise ValueError("not a repro topology document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported topology format version {data.get('version')!r}"
        )
    topology = Topology(name=data.get("name", "topology"))
    for entry in data["routers"]:
        topology.add_router(
            Router(
                node_id=int(entry["id"]),
                asn=int(entry["asn"]),
                x=float(entry["x"]),
                y=float(entry["y"]),
            )
        )
    for entry in data["links"]:
        topology.add_link(
            Link(
                a=int(entry["a"]),
                b=int(entry["b"]),
                delay=float(entry["delay"]),
                kind=str(entry.get("kind", "inter_as")),
            )
        )
    return topology


def save_topology(topology: Topology, path: Union[str, Path]) -> None:
    """Write a topology to a JSON file."""
    Path(path).write_text(
        json.dumps(topology_to_dict(topology), indent=2) + "\n",
        encoding="utf-8",
    )


def load_topology(path: Union[str, Path]) -> Topology:
    """Read a topology from a JSON file and validate it."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    topology = topology_from_dict(data)
    topology.validate()
    return topology


def degree_sequence_from_file(path: Union[str, Path]) -> list[int]:
    """Load a measured degree sequence: one integer per line.

    Blank lines and ``#`` comments are ignored, so published AS-degree
    datasets can be used directly with
    :func:`repro.topology.degree.realize_degree_sequence`.
    """
    degrees = []
    for line_number, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            value = int(line)
        except ValueError:
            raise ValueError(
                f"{path}:{line_number}: not an integer: {line!r}"
            ) from None
        if value < 0:
            raise ValueError(f"{path}:{line_number}: negative degree")
        degrees.append(value)
    if len(degrees) < 2:
        raise ValueError(f"{path}: need at least 2 degrees")
    return degrees
