"""Internet-derived degree-distribution topologies.

The paper verifies its results on topologies whose inter-AS degree
distribution was "derived from Internet AS connectivity data" [18], with the
maximum degree capped at 40 (average degree ~3.4 at 120 ASes).  The raw
measurement snapshot is not available; per DESIGN.md we substitute a capped
discrete power law (:class:`InternetDegreeDistribution`) that matches the
statistics the paper reports — ~70% of ASes with degree below 4 and the same
cap and average.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.topology.degree import (
    InternetDegreeDistribution,
    realize_degree_sequence,
)
from repro.topology.graph import (
    DEFAULT_LINK_DELAY,
    GRID_SIZE,
    Router,
    Topology,
)
from repro.topology.placement import place_on_grid


def internet_like_topology(
    n: int,
    distribution: Optional[InternetDegreeDistribution] = None,
    seed: int = 0,
    link_delay: float = DEFAULT_LINK_DELAY,
    grid_size: float = GRID_SIZE,
    name: Optional[str] = None,
) -> Topology:
    """Generate a flat topology with an Internet-like degree distribution."""
    if distribution is None:
        distribution = InternetDegreeDistribution()
    rng = random.Random(seed)
    sequence = distribution.sample(n, rng)
    edges = realize_degree_sequence(sequence, rng, connected=True)
    positions = place_on_grid(list(range(n)), rng, grid_size)
    topo = Topology(name=name or f"internet-like-{n}")
    for node_id in range(n):
        x, y = positions[node_id]
        topo.add_router(Router(node_id=node_id, asn=node_id, x=x, y=y))
    for a, b in sorted(set(edges)):
        topo.connect(a, b, delay=link_delay)
    topo.validate()
    return topo
