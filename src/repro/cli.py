"""Command-line interface.

Main subcommands::

    repro-bgp run   --nodes 120 --distribution 70-30 --mrai 0.5 \\
                    --failure 0.05 --queue fifo --seed 1
    repro-bgp sweep --figure fig3 --scale quick --store results/store.db
    repro-bgp campaign run mycampaign.json --jobs 4
    repro-bgp campaign validate mycampaign.json
    repro-bgp trace analyze trace.jsonl
    repro-bgp serve --store results/store.db --jobs 4
    repro-bgp submit mycampaign.json --wait
    repro-bgp store stats results/store.db

``run`` executes one convergence experiment and prints the measurements;
``sweep`` regenerates one of the paper's figures (same harness the
benchmark suite uses) and prints its series table — with ``--store`` the
trials are cached content-addressed and never recomputed; ``campaign``
runs/resumes/validates/inspects/exports declarative sweep grids against
a store (see docs/STORAGE.md and docs/SPECS.md); ``trace analyze``
post-processes a ``--trace-out`` JSONL trace into the causal-chain and
path-exploration report; ``serve``/``submit``/``result``/``queue
status`` are the campaign service — a daemon serving cached results
over HTTP and scheduling cold trials on the warm worker pool (see
docs/SERVICE.md); ``store stats`` inspects a store file directly.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from repro.bgp.mrai import MRAIPolicy
from repro.core.experiment import ExperimentSpec, run_experiment

#: All scheme/topology vocabulary is registry data (repro.specs), so CLI
#: flag choices stay in lockstep with what campaign files accept.
from repro.specs import (
    DISTRIBUTIONS,
    MRAI_SCHEMES,
    QUEUE_DISCIPLINES,
    TOPOLOGY_KINDS,
    build_mrai,
    topology_factory,
)
from repro.topology.graph import Topology


def build_topology(args: argparse.Namespace) -> Topology:
    if getattr(args, "topology_file", None):
        from repro.topology.serialize import load_topology

        return load_topology(args.topology_file)
    block = {"kind": args.topology, "nodes": args.nodes}
    if args.topology == "skewed":
        block["distribution"] = args.distribution
    return topology_factory(block)(args.seed)


def _scheme_from_args(args: argparse.Namespace) -> dict:
    """The declarative scheme dict the run flags describe."""
    kind = args.mrai_scheme
    scheme = {"mrai_scheme": kind}
    if kind == "constant":
        scheme["mrai"] = args.mrai
    elif kind == "degree":
        scheme["mrai_low"] = args.mrai_low
        scheme["mrai_high"] = args.mrai_high
    elif kind in ("dynamic", "theory"):
        scheme["up_th"] = args.up_th
        scheme["down_th"] = args.down_th
    return scheme


def build_mrai_policy(
    args: argparse.Namespace, topology: Optional[Topology] = None
) -> MRAIPolicy:
    """Thin wrapper over the MRAI scheme registry (repro.specs)."""
    return build_mrai(_scheme_from_args(args), topology)


def _make_obs_session(
    args: argparse.Namespace, stack: contextlib.ExitStack
):
    """An ObsSession when any observability flag is set, else None.

    The trace sink (when ``--trace-out`` is given) is registered on
    ``stack`` so it is closed — and its final line flushed — before the
    command returns, no matter how the run ends; ``trace analyze`` must
    never see a truncated trailing record.
    """
    trace_out = getattr(args, "trace_out", None)
    spans_out = getattr(args, "spans_out", None)
    dataplane_out = getattr(args, "dataplane_out", None)
    dataplane = getattr(args, "dataplane", False) or bool(dataplane_out)
    wants_obs = (
        getattr(args, "metrics_out", None)
        or getattr(args, "profile", False)
        or getattr(args, "sample_interval", None) is not None
        or trace_out
        or spans_out
        or dataplane
    )
    if not wants_obs:
        return None
    from repro.obs.session import ObsSession

    trace_sink = None
    if trace_out:
        from repro.sim.trace import jsonl_sink

        trace_sink = stack.enter_context(jsonl_sink(trace_out))
    dataplane_sink = None
    if dataplane_out:
        from repro.obs.dataplane import dataplane_jsonl_sink

        dataplane_sink = stack.enter_context(
            dataplane_jsonl_sink(dataplane_out)
        )
    obs = ObsSession(
        sample_interval=args.sample_interval,
        profile=args.profile,
        trace_sink=trace_sink,
        spans=bool(spans_out),
        dataplane=dataplane,
        dataplane_sink=dataplane_sink,
    )
    if obs.span_recorder is not None:
        # Install the recorder for the rest of the command so parent-side
        # spans (seed derivation, store lookups, pool management) record
        # even on paths that never enter observe().
        from repro.obs.spans import record_spans

        stack.enter_context(record_spans(obs.span_recorder))
    return obs


def _finish_obs(obs, args: argparse.Namespace, command: str) -> None:
    """Export/print whatever the session collected (shared by run/sweep)."""
    if obs is None:
        return
    if args.metrics_out:
        for path in obs.export(args.metrics_out, command=command):
            print(f"wrote {path}", file=sys.stderr)
    if getattr(args, "trace_out", None):
        print(f"wrote {args.trace_out}", file=sys.stderr)
    if getattr(args, "dataplane_out", None):
        print(f"wrote {args.dataplane_out}", file=sys.stderr)
    spans_out = getattr(args, "spans_out", None)
    if spans_out and obs.span_recorder is not None:
        path = obs.span_recorder.write_chrome_trace(spans_out)
        print(f"wrote {path}", file=sys.stderr)
        print()
        print(obs.span_recorder.render_rollup())
    if args.profile and obs.profiler is not None:
        print()
        print(obs.profiler.render(top_k=10))


def _make_live_monitor(
    args: argparse.Namespace, stack: contextlib.ExitStack, obs, jobs: int
):
    """Install a LiveMonitor as the default progress hook when asked.

    ``--progress`` renders the status line; ``--heartbeat PATH`` streams
    one JSON line per tick (either flag alone activates the monitor —
    heartbeat-only runs stay silent on the terminal).
    """
    progress = getattr(args, "progress", False)
    heartbeat = getattr(args, "heartbeat", None)
    if not progress and not heartbeat:
        return None
    from repro.obs.live import LiveMonitor, live_progress

    monitor = LiveMonitor(
        jobs=jobs,
        session=obs,
        stream=sys.stderr if progress else None,
        heartbeat=heartbeat,
    )
    stack.enter_context(monitor)
    stack.enter_context(live_progress(monitor))
    return monitor


def cmd_run(args: argparse.Namespace) -> int:
    topology = build_topology(args)
    spec = ExperimentSpec(
        mrai=build_mrai_policy(args, topology),
        queue_discipline=args.queue,
        failure_fraction=args.failure,
        validate=args.validate,
    )
    print(topology.summary())
    with contextlib.ExitStack() as stack:
        obs = _make_obs_session(args, stack)
        result = run_experiment(topology, spec, seed=args.seed, obs=obs)
        print(f"failure size       : {result.failure_size} routers")
        print(f"warm-up time       : {result.warmup_time:.2f} s (sim)")
        print(f"convergence delay  : {result.convergence_delay:.2f} s (sim)")
        print(f"update messages    : {result.messages_sent}")
        print(f"  withdrawals      : {result.withdrawals_sent}")
        print(f"  stale dropped    : {result.stale_dropped}")
        print(f"route changes      : {result.route_changes}")
        print(f"events executed    : {result.events_executed}")
        print(
            f"wall clock         : {result.warmup_wall:.2f} s warm-up, "
            f"{result.convergence_wall:.2f} s convergence"
        )
        if obs is not None and obs.last_exploration is not None:
            exp = obs.last_exploration
            print(
                f"path exploration   : {exp['paths_explored_total']} distinct "
                f"paths over {exp['pairs_changed']} (node, dest) pairs "
                f"(max {exp['paths_explored_max']})"
            )
            print(
                f"settle times       : p50 {exp['settle']['p50']:.2f} s, "
                f"p95 {exp['settle']['p95']:.2f} s, "
                f"max {exp['settle']['max']:.2f} s"
            )
        if obs is not None and obs.last_dataplane is not None:
            dp = obs.last_dataplane
            print(
                f"data-plane impact  : "
                f"{dp['unreachable_seconds_total']:.2f} node-s unreachable "
                f"({dp['blackhole_episodes']} blackhole / "
                f"{dp['loop_episodes']} loop episodes)"
            )
            print(
                f"  per destination  : p50 "
                f"{dp['unreachable_dest_p50']:.2f} s, p95 "
                f"{dp['unreachable_dest_p95']:.2f} s, max "
                f"{dp['unreachable_dest_max']:.2f} s; "
                f"{dp['pairs_never_recovered']} pair(s) never recovered"
            )
        _finish_obs(obs, args, command="run")
    if result.truncated:
        print("WARNING: run truncated at max_convergence_time", file=sys.stderr)
        return 1
    return 0


def _print_pool_summary(jobs: int) -> None:
    """One stderr line on what the warm worker pool amortized.

    Printed after parallel sweeps/campaigns, mirroring the store's
    hit/miss line: how many workers the whole command actually booted
    vs reused, and how often trials found their topology already cached
    worker-side.
    """
    if jobs <= 1:
        return
    from repro.core.parallel import pool_stats

    totals = pool_stats()
    if not totals["runs"]:
        return
    hits = int(totals["cache_hits"])
    looked_up = hits + int(totals["cache_misses"])
    rate = hits / looked_up if looked_up else 1.0
    print(
        f"pool: {int(totals['workers_spawned'])} worker(s) spawned, "
        f"{int(totals['workers_reused'])} reuse(s) over "
        f"{int(totals['runs'])} run(s), topology cache {hits}/{looked_up} "
        f"hits ({rate:.0%}), spin-up {totals['spinup_seconds']:.2f}s",
        file=sys.stderr,
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    # Imported lazily: the figure registry lives with the benchmarks.
    from repro.figures import FIGURES, compute_figure

    if args.figure not in FIGURES:
        print(
            f"unknown figure {args.figure!r}; choose from "
            f"{', '.join(sorted(FIGURES))}",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print("--jobs must be a positive integer", file=sys.stderr)
        return 2
    if args.resume and not args.store:
        print("--resume requires --store PATH", file=sys.stderr)
        return 2
    with contextlib.ExitStack() as stack:
        from repro.core.parallel import parallel_jobs

        stack.enter_context(parallel_jobs(args.jobs))
        store = None
        if args.store:
            from pathlib import Path

            from repro.store.result_store import use_store

            if args.resume and not Path(args.store).exists():
                print(
                    f"--resume: store {args.store} does not exist "
                    f"(nothing to resume; run without --resume first)",
                    file=sys.stderr,
                )
                return 2
            store = stack.enter_context(use_store(args.store))
        obs = _make_obs_session(args, stack)
        monitor = _make_live_monitor(args, stack, obs, jobs=args.jobs)
        if obs is not None:
            from repro.obs.session import observe
            from repro.obs.spans import span

            with observe(obs):
                with span(
                    "sweep.figure", figure=args.figure, scale=args.scale
                ):
                    output = compute_figure(args.figure, scale=args.scale)
            obs.finalize(
                kind="repro-sweep",
                command=f"sweep --figure {args.figure} --scale {args.scale}",
                extra={"figure": args.figure, "scale": args.scale},
            )
        else:
            output = compute_figure(args.figure, scale=args.scale)
        if monitor is not None:
            monitor.finish()
        print(output.render())
        if args.export:
            from repro.analysis.export import figure_to_files

            for path in figure_to_files(output, args.export):
                print(f"wrote {path}", file=sys.stderr)
        if store is not None:
            looked_up = store.hits + store.misses
            rate = store.hits / looked_up if looked_up else 1.0
            print(
                f"store {args.store}: {store.hits} hits / "
                f"{store.misses} misses ({rate:.0%} cached, "
                f"{len(store)} trials banked)",
                file=sys.stderr,
            )
        _print_pool_summary(args.jobs)
        _finish_obs(obs, args, command=f"sweep --figure {args.figure}")
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from repro.figures import FIGURES

    for figure_id in sorted(FIGURES):
        print(f"{figure_id:22s} {FIGURES[figure_id].CAPTION}")
    return 0


def cmd_trace_analyze(args: argparse.Namespace) -> int:
    """Offline causal + convergence analysis of a JSONL trace."""
    import json
    from pathlib import Path

    from repro.analysis.convergence import analyze_trace_file, render_report

    try:
        report = analyze_trace_file(args.path, t0=args.t0, top=args.top)
    except (OSError, ValueError) as exc:
        print(f"cannot analyze {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_report(report))
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def cmd_dataplane_report(args: argparse.Namespace) -> int:
    """Offline unavailability/loop/blackhole report of a dataplane JSONL."""
    import json
    from pathlib import Path

    from repro.analysis.dataplane import (
        analyze_dataplane_file,
        render_dataplane_report,
    )

    try:
        report = analyze_dataplane_file(args.path, t0=args.t0, top=args.top)
    except (OSError, ValueError) as exc:
        print(f"cannot analyze {args.path}: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_dataplane_report(report))
    if args.out:
        Path(args.out).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def _campaign_store_path(args: argparse.Namespace, campaign) -> Optional[str]:
    """CLI --store overrides the campaign file's own store path."""
    return args.store or campaign.store_path


def _export_campaign_series(series, directory, name):
    """Write <dir>/<name>.csv and .json; returns the paths."""
    from pathlib import Path

    from repro.analysis.export import save_series

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = [directory / f"{name}.csv", directory / f"{name}.json"]
    for path in paths:
        save_series(series, path)
    return paths


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """Run (or resume) a campaign: execute missing trials, fold, report."""
    from pathlib import Path

    from repro.analysis.report import format_series_table
    from repro.store.campaign import Campaign, CampaignError, run_campaign
    from repro.store.result_store import ResultStore

    campaign = Campaign.from_file(args.file)
    store_path = _campaign_store_path(args, campaign)
    if store_path is None:
        print(
            "no store: pass --store PATH or set 'store' in the campaign "
            "file",
            file=sys.stderr,
        )
        return 2
    resuming = args.campaign_command == "resume"
    if resuming and not Path(store_path).exists():
        print(
            f"resume: store {store_path} does not exist (nothing to "
            f"resume; use `campaign run` first)",
            file=sys.stderr,
        )
        return 2
    if args.jobs < 1:
        print("--jobs must be a positive integer", file=sys.stderr)
        return 2
    with contextlib.ExitStack() as stack:
        obs = _make_obs_session(args, stack)
        monitor = _make_live_monitor(args, stack, obs, jobs=args.jobs)
        store = stack.enter_context(ResultStore(store_path))
        try:
            result = run_campaign(
                campaign, store, jobs=args.jobs, obs=obs
            )
        except CampaignError as exc:
            print(f"campaign failed: {exc}", file=sys.stderr)
            return 1
        except KeyboardInterrupt:
            print(
                f"interrupted — {len(store)} trial(s) already stored in "
                f"{store_path}; continue with `campaign resume {args.file}`",
                file=sys.stderr,
            )
            return 130
        if monitor is not None:
            monitor.finish()
        print(result.summary())
        for metric in ("delay", "messages"):
            unit = (
                "convergence delay (s)"
                if metric == "delay"
                else "update messages"
            )
            print()
            print(
                format_series_table(
                    result.series, metric, title=f"[{unit}]"
                )
            )
        if args.export:
            for path in _export_campaign_series(
                result.series, args.export, campaign.name
            ):
                print(f"wrote {path}", file=sys.stderr)
        if obs is not None:
            obs.finalize(
                kind="repro-campaign",
                command=f"campaign {args.campaign_command} {args.file}",
                extra={"campaign": campaign.name, "store": store_path},
            )
        _print_pool_summary(args.jobs)
        _finish_obs(obs, args, command=f"campaign run {args.file}")
    return 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    """Report grid completeness and recorded campaign runs."""
    from pathlib import Path

    from repro.store.campaign import Campaign, campaign_status
    from repro.store.result_store import ResultStore

    campaign = Campaign.from_file(args.file)
    store_path = _campaign_store_path(args, campaign)
    if store_path is None:
        print("no store: pass --store PATH or set 'store'", file=sys.stderr)
        return 2
    if not Path(store_path).exists():
        print(
            f"campaign {campaign.name}: 0/{campaign.total_trials} trials "
            f"cached (store {store_path} does not exist yet)"
        )
        return 1 if args.check else 0
    with ResultStore(store_path) as store:
        status = campaign_status(campaign, store)
        print(status.render())
    return 0 if status.complete or not args.check else 1


def cmd_campaign_watch(args: argparse.Namespace) -> int:
    """Live view of a campaign: per-cell state + latest heartbeat.

    One render by default; ``--follow`` re-renders every ``--interval``
    seconds until the grid completes.  Exit status mirrors completeness
    (0 complete, 1 in flight) so scripts can poll it.
    """
    import time as _time
    from pathlib import Path

    from repro.obs.live import watch_campaign
    from repro.store.campaign import Campaign
    from repro.store.result_store import ResultStore

    campaign = Campaign.from_file(args.file)
    store_path = _campaign_store_path(args, campaign)
    if store_path is None:
        print("no store: pass --store PATH or set 'store'", file=sys.stderr)
        return 2
    if not Path(store_path).exists():
        print(
            f"campaign {campaign.name}: store {store_path} does not exist "
            f"yet (0/{campaign.total_trials} trials); start it with "
            f"`campaign run`"
        )
        return 1
    while True:
        with ResultStore(store_path) as store:
            output = watch_campaign(
                campaign, store, heartbeat=args.heartbeat
            )
        print(output)
        complete = output.splitlines()[-1] == "status: complete"
        if complete:
            return 0
        if not args.follow:
            return 1
        _time.sleep(args.interval)
        print()


def cmd_campaign_export(args: argparse.Namespace) -> int:
    """Fold a fully-cached campaign from its store; no simulation."""
    from repro.store.campaign import (
        Campaign,
        CampaignError,
        load_campaign_results,
    )
    from repro.store.result_store import ResultStore

    campaign = Campaign.from_file(args.file)
    store_path = _campaign_store_path(args, campaign)
    if store_path is None:
        print("no store: pass --store PATH or set 'store'", file=sys.stderr)
        return 2
    with ResultStore(store_path) as store:
        try:
            series, _results = load_campaign_results(campaign, store)
        except CampaignError as exc:
            print(f"cannot export: {exc}", file=sys.stderr)
            return 1
    for path in _export_campaign_series(series, args.out, campaign.name):
        print(f"wrote {path}", file=sys.stderr)
    return 0


def cmd_campaign_validate(args: argparse.Namespace) -> int:
    """Fast-path check of campaign files: parse, validate, resolve.

    Everything except simulation runs: JSON syntax, the grid shape,
    every scheme dict (per-field registry messages), the topology block,
    and — because topology-dependent schemes are resolved against the
    first seed's topology — that adaptive/theory/inferred-policy schemes
    actually build.  Exit 2 if any file fails.
    """
    import json

    from repro.store.campaign import Campaign

    failures = 0
    for path in args.files:
        try:
            campaign = Campaign.from_file(path)
            for label in campaign.schemes:
                campaign.base_spec(label)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"{path}: INVALID — {exc}", file=sys.stderr)
            failures += 1
            continue
        print(
            f"{path}: ok — campaign {campaign.name!r}: "
            f"{len(campaign.schemes)} scheme(s) x {len(campaign.values)} "
            f"value(s) x {len(campaign.seeds)} seed(s) = "
            f"{campaign.total_trials} trials"
        )
    return 2 if failures else 0


def _service_url(args: argparse.Namespace) -> str:
    """The daemon URL: --url, a --ready-file's contents, or the default."""
    if getattr(args, "url", None):
        return args.url
    ready = getattr(args, "ready_file", None)
    if ready:
        import json

        info = json.loads(open(ready, encoding="utf-8").read())
        return f"http://{info['host']}:{info['port']}"
    return "http://127.0.0.1:8351"


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the campaign service daemon until SIGTERM/SIGINT."""
    from repro.service import CampaignService, ServiceConfig

    config = ServiceConfig(
        store=args.store,
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        batch_size=args.batch_size,
        lease_seconds=args.lease,
        drain_timeout=args.drain_timeout,
        ready_file=args.ready_file,
        heartbeat=args.heartbeat,
        quiet=args.quiet,
    )
    return CampaignService(config).run()


def _receipt_line(receipt: dict) -> str:
    total = receipt["total"]
    pct = round(100.0 * receipt["cached"] / total) if total else 100
    return (
        f"ticket {receipt['ticket']}: campaign {receipt['name']} — "
        f"{total} trials, {receipt['cached']} cached ({pct}%), "
        f"{receipt['enqueued']} enqueued, "
        f"{receipt['deduplicated']} deduplicated"
    )


def cmd_submit(args: argparse.Namespace) -> int:
    """Submit a campaign grid (or single spec) to a running daemon."""
    import json

    from repro.service import ServiceClient, ServiceError

    if args.file == "-":
        body = json.load(sys.stdin)
    else:
        with open(args.file, encoding="utf-8") as handle:
            body = json.load(handle)
    client = ServiceClient(_service_url(args))
    try:
        receipt = client.submit(body)
        print(_receipt_line(receipt))
        if args.wait and not receipt["complete"]:
            status = client.wait(receipt["ticket"], timeout=args.timeout)
            print(
                f"ticket {receipt['ticket']} done: "
                f"{status['done']}/{status['total']} trials banked"
            )
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 0


def cmd_result(args: argparse.Namespace) -> int:
    """Fetch and print a completed ticket's folded series."""
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(_service_url(args))
    try:
        result = client.result(args.ticket)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0
    print(
        f"campaign {result['name']} (axis {result['axis']}, "
        f"{len(result['seeds'])} seed(s))"
    )
    for series in result["series"]:
        for point in series["points"]:
            print(
                f"  {series['label']}: {series['x_name']}={point['x']:g} "
                f"delay={point['delay']:.3f}s "
                f"messages={point['messages']:.1f}"
            )
    return 0


def cmd_queue_status(args: argparse.Namespace) -> int:
    """Queue depth + drain counters of a running daemon."""
    import json

    from repro.service import ServiceClient, ServiceError

    client = ServiceClient(_service_url(args))
    try:
        status = client.queue_status()
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    queue = status["queue"]
    executor = status["executor"]
    print(
        f"queue: {queue['pending']} pending, {queue['running']} running, "
        f"{queue['done']} done, {queue['failed']} failed"
    )
    eta = status.get("eta_seconds")
    print(
        f"executor {executor['owner']}: {executor['executed']} executed, "
        f"{executor['retried']} retried, "
        f"{executor['failed_terminal']} failed "
        f"(jobs {executor['jobs']}, "
        f"eta {'?' if eta is None else f'{eta:.0f}s'})"
    )
    return 0


def cmd_store_stats(args: argparse.Namespace) -> int:
    """Inspect a store file without opening SQLite by hand."""
    import json

    from repro.store.result_store import ResultStore

    with ResultStore(args.store) as store:
        stats = store.stats()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    queue = stats["queue"]
    size = stats["db_bytes"]
    for unit in ("B", "KiB", "MiB", "GiB"):
        if size < 1024 or unit == "GiB":
            break
        size /= 1024
    print(f"store {stats['path']} (schema v{stats['schema_version']})")
    print(
        f"  trials: {stats['trials']} "
        f"({stats['banked_wall_seconds']:.1f} banked simulation seconds)"
    )
    print(
        f"  campaigns: {stats['campaigns']} manifest(s), "
        f"tickets: {stats['tickets']}"
    )
    print(
        f"  queue: {queue['pending']} pending, {queue['running']} running, "
        f"{queue['done']} done, {queue['failed']} failed"
    )
    print(f"  size: {size:.1f} {unit}")
    return 0


def cmd_topo(args: argparse.Namespace) -> int:
    """Generate a topology, print its summary, optionally save it."""
    topology = build_topology(args)
    print(topology.summary())
    histogram = sorted(topology.degree_histogram().items())
    print("degree histogram:", ", ".join(f"{d}:{c}" for d, c in histogram))
    if args.save:
        from repro.topology.serialize import save_topology

        save_topology(topology, args.save)
        print(f"wrote {args.save}", file=sys.stderr)
    return 0


def make_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bgp",
        description=(
            "BGP convergence-under-large-failure experiments "
            "(DSN 2006 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def positive_float(text):
        value = float(text)
        if value <= 0:
            raise argparse.ArgumentTypeError(
                f"must be a positive number, got {text!r}"
            )
        return value

    def add_obs_args(parser_):
        parser_.add_argument(
            "--metrics-out",
            metavar="DIR",
            help=(
                "write manifest.json, metrics.jsonl, timeseries.csv and "
                "aggregates.csv into DIR"
            ),
        )
        parser_.add_argument(
            "--sample-interval",
            type=positive_float,
            metavar="S",
            help="sample per-node time series every S simulated seconds",
        )
        parser_.add_argument(
            "--profile",
            action="store_true",
            help="profile the event loop and print a top-10 hotspot table",
        )
        parser_.add_argument(
            "--trace-out",
            metavar="PATH",
            help=(
                "write a causal trace (causality + route_change records) "
                "as JSONL to PATH, for `repro-bgp trace analyze`"
            ),
        )
        parser_.add_argument(
            "--spans-out",
            metavar="PATH",
            help=(
                "record hierarchical runtime spans; write a Chrome "
                "trace-event JSON to PATH (load in Perfetto) and print "
                "the rollup table (see docs/OBSERVABILITY.md)"
            ),
        )
        parser_.add_argument(
            "--dataplane",
            action="store_true",
            help=(
                "monitor the data plane during convergence: forwarding "
                "loops, blackholes, per-destination unreachability "
                "(trajectory-neutral; summary lands on each trial)"
            ),
        )
        parser_.add_argument(
            "--dataplane-out",
            metavar="PATH",
            help=(
                "write per-(node, dest) reachability transitions as "
                "JSONL to PATH, for `repro-bgp dataplane report` "
                "(implies --dataplane)"
            ),
        )

    def add_topology_args(parser_):
        parser_.add_argument("--nodes", type=int, default=120)
        parser_.add_argument(
            "--topology",
            choices=TOPOLOGY_KINDS.names(),
            default="skewed",
        )
        parser_.add_argument(
            "--distribution", choices=sorted(DISTRIBUTIONS), default="70-30"
        )
        parser_.add_argument(
            "--topology-file",
            metavar="PATH",
            help="load a saved topology JSON instead of generating one",
        )

    run_p = sub.add_parser("run", help="run one convergence experiment")
    add_topology_args(run_p)
    run_p.add_argument(
        "--mrai-scheme",
        choices=MRAI_SCHEMES.names(),
        default="constant",
    )
    run_p.add_argument("--mrai", type=float, default=0.5)
    run_p.add_argument("--mrai-low", type=float, default=0.5)
    run_p.add_argument("--mrai-high", type=float, default=2.25)
    run_p.add_argument("--up-th", type=float, default=0.65)
    run_p.add_argument("--down-th", type=float, default=0.05)
    run_p.add_argument(
        "--queue",
        choices=QUEUE_DISCIPLINES.names(),
        default="fifo",
    )
    run_p.add_argument("--failure", type=float, default=0.05)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--validate", action="store_true")
    add_obs_args(run_p)
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="regenerate one paper figure")
    sweep_p.add_argument("--figure", required=True)
    sweep_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for trial execution (default 1 = serial; "
        "results are bit-identical across any N)",
    )
    sweep_p.add_argument(
        "--scale", choices=("quick", "full"), default="quick"
    )
    sweep_p.add_argument(
        "--export",
        metavar="DIR",
        help="also write CSV/JSON/text exports into DIR",
    )
    sweep_p.add_argument(
        "--store",
        metavar="PATH",
        help=(
            "content-addressed trial cache (SQLite): stored trials are "
            "folded without re-running, fresh trials are written back"
        ),
    )
    sweep_p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "require --store to already exist (resuming an interrupted "
            "sweep); behavior is otherwise identical — caching is always "
            "incremental"
        ),
    )
    sweep_p.add_argument(
        "--progress",
        action="store_true",
        help="render a live status line (done/cached/failed, hit rate, "
        "worker utilization, ETA) on stderr",
    )
    sweep_p.add_argument(
        "--heartbeat",
        metavar="PATH",
        help="append one JSON telemetry line per completed trial to PATH "
        "(tail it, or point `campaign watch --heartbeat` at it)",
    )
    add_obs_args(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    campaign_p = sub.add_parser(
        "campaign",
        help="persistent, resumable experiment campaigns over a store",
    )
    campaign_sub = campaign_p.add_subparsers(
        dest="campaign_command", required=True
    )

    def add_campaign_common(parser_):
        parser_.add_argument(
            "file", help="campaign definition JSON (see docs/STORAGE.md)"
        )
        parser_.add_argument(
            "--store",
            metavar="PATH",
            help="override the campaign file's store path",
        )

    for name, help_text in (
        ("run", "execute every trial not already in the store"),
        ("resume", "like run, but requires the store to already exist"),
    ):
        runner_p = campaign_sub.add_parser(name, help=help_text)
        add_campaign_common(runner_p)
        runner_p.add_argument(
            "--jobs",
            type=int,
            default=1,
            metavar="N",
            help="worker processes for missing trials (default 1)",
        )
        runner_p.add_argument(
            "--export",
            metavar="DIR",
            help="also write the folded series as CSV/JSON into DIR",
        )
        runner_p.add_argument(
            "--progress",
            action="store_true",
            help="render a live status line on stderr",
        )
        runner_p.add_argument(
            "--heartbeat",
            metavar="PATH",
            help="append one JSON telemetry line per completed trial to "
            "PATH (`campaign watch --heartbeat PATH` reads it live)",
        )
        add_obs_args(runner_p)
        runner_p.set_defaults(func=cmd_campaign_run)

    validate_p = campaign_sub.add_parser(
        "validate",
        help="check campaign files (schemes, topology, grid) without "
        "running anything",
    )
    validate_p.add_argument(
        "files",
        nargs="+",
        help="campaign definition JSON file(s) to check",
    )
    validate_p.set_defaults(func=cmd_campaign_validate)

    status_p = campaign_sub.add_parser(
        "status", help="grid completeness + recorded runs"
    )
    add_campaign_common(status_p)
    status_p.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless every trial is cached",
    )
    status_p.set_defaults(func=cmd_campaign_status)

    watch_p = campaign_sub.add_parser(
        "watch",
        help="live per-cell progress view (optionally following a "
        "heartbeat file written by `campaign run --heartbeat`)",
    )
    add_campaign_common(watch_p)
    watch_p.add_argument(
        "--heartbeat",
        metavar="PATH",
        help="heartbeat JSONL written by a concurrent run --heartbeat; "
        "shows its live utilization/ETA line",
    )
    watch_p.add_argument(
        "--follow",
        action="store_true",
        help="re-render every --interval seconds until the grid completes",
    )
    watch_p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="refresh period for --follow (default 2s)",
    )
    watch_p.set_defaults(func=cmd_campaign_watch)

    export_p = campaign_sub.add_parser(
        "export",
        help="fold a fully-cached campaign from the store (no simulation)",
    )
    add_campaign_common(export_p)
    export_p.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="directory for <name>.csv and <name>.json",
    )
    export_p.set_defaults(func=cmd_campaign_export)

    def add_client_args(parser_):
        parser_.add_argument(
            "--url",
            metavar="URL",
            help="service base URL (default http://127.0.0.1:8351)",
        )
        parser_.add_argument(
            "--ready-file",
            metavar="PATH",
            help="read host/port from a `serve --ready-file` JSON instead "
            "of --url",
        )

    serve_p = sub.add_parser(
        "serve",
        help="run the campaign service daemon (HTTP API + queue executor)",
    )
    serve_p.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="store to serve from and bank results into (backend URL or "
        "SQLite path)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument(
        "--port",
        type=int,
        default=8351,
        help="TCP port (0 = pick a free one; see --ready-file)",
    )
    serve_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="warm-pool workers for cold trials (prewarmed at boot)",
    )
    serve_p.add_argument(
        "--batch-size",
        type=int,
        default=16,
        metavar="N",
        help="max queue tasks leased per executor batch (default 16)",
    )
    serve_p.add_argument(
        "--lease",
        type=positive_float,
        default=120.0,
        metavar="S",
        help="queue lease duration in seconds (default 120; crashed "
        "executors' tasks re-dispatch after this)",
    )
    serve_p.add_argument(
        "--drain-timeout",
        type=positive_float,
        default=15.0,
        metavar="S",
        help="shutdown budget for finishing the in-flight batch "
        "(default 15s)",
    )
    serve_p.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write {host, port, pid, store} JSON once accepting "
        "(lets scripts use --port 0 without racing the boot)",
    )
    serve_p.add_argument(
        "--heartbeat",
        metavar="PATH",
        help="append one JSON telemetry line per completed trial to PATH",
    )
    serve_p.add_argument(
        "--quiet", action="store_true", help="no stderr logging"
    )
    serve_p.set_defaults(func=cmd_serve)

    submit_p = sub.add_parser(
        "submit",
        help="submit a campaign grid or single spec to a running daemon",
    )
    submit_p.add_argument(
        "file",
        help="campaign JSON, single-spec JSON ({topology, scheme, seed}), "
        "or '-' for stdin",
    )
    add_client_args(submit_p)
    submit_p.add_argument(
        "--wait",
        action="store_true",
        help="poll until the ticket completes (exit 1 on failure/timeout)",
    )
    submit_p.add_argument(
        "--timeout",
        type=positive_float,
        default=600.0,
        metavar="S",
        help="--wait deadline in seconds (default 600)",
    )
    submit_p.set_defaults(func=cmd_submit)

    result_p = sub.add_parser(
        "result", help="fetch a completed ticket's folded series"
    )
    result_p.add_argument("ticket", help="ticket id from `submit`")
    add_client_args(result_p)
    result_p.add_argument(
        "--json", action="store_true", help="print the full JSON payload"
    )
    result_p.set_defaults(func=cmd_result)

    queue_p = sub.add_parser(
        "queue", help="inspect the service work queue"
    )
    queue_sub = queue_p.add_subparsers(dest="queue_command", required=True)
    queue_status_p = queue_sub.add_parser(
        "status", help="queue depth per state + executor counters + ETA"
    )
    add_client_args(queue_status_p)
    queue_status_p.add_argument(
        "--json", action="store_true", help="print the full JSON payload"
    )
    queue_status_p.set_defaults(func=cmd_queue_status)

    store_p = sub.add_parser(
        "store", help="inspect a trial store file directly"
    )
    store_sub = store_p.add_subparsers(dest="store_command", required=True)
    store_stats_p = store_sub.add_parser(
        "stats",
        help="trial count, banked wall-seconds, manifests, queue, DB size",
    )
    store_stats_p.add_argument("store", help="store path (SQLite file)")
    store_stats_p.add_argument(
        "--json", action="store_true", help="print the full JSON payload"
    )
    store_stats_p.set_defaults(func=cmd_store_stats)

    list_p = sub.add_parser(
        "list", help="list reproducible figures and ablations"
    )
    list_p.set_defaults(func=cmd_list)

    trace_p = sub.add_parser(
        "trace", help="offline analysis of recorded traces"
    )
    trace_sub = trace_p.add_subparsers(dest="trace_command", required=True)
    analyze_p = trace_sub.add_parser(
        "analyze",
        help="causal-chain + path-exploration report from a JSONL trace",
    )
    analyze_p.add_argument("path", help="trace file written by --trace-out")
    analyze_p.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of text",
    )
    analyze_p.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many amplifiers/chains/destinations to list (default 5)",
    )
    analyze_p.add_argument(
        "--t0",
        type=float,
        default=None,
        help=(
            "failure time to measure settling from (default: the first "
            "failure-injection record in the trace)"
        ),
    )
    analyze_p.add_argument(
        "--out", metavar="PATH", help="also write the JSON report to PATH"
    )
    analyze_p.set_defaults(func=cmd_trace_analyze)

    dataplane_p = sub.add_parser(
        "dataplane", help="offline analysis of data-plane impact records"
    )
    dataplane_sub = dataplane_p.add_subparsers(
        dest="dataplane_command", required=True
    )
    report_p = dataplane_sub.add_parser(
        "report",
        help=(
            "unavailability / loop / blackhole report from a JSONL file "
            "written by --dataplane-out"
        ),
    )
    report_p.add_argument(
        "path", help="data-plane file written by --dataplane-out"
    )
    report_p.add_argument(
        "--json",
        action="store_true",
        help="print the report as JSON instead of text",
    )
    report_p.add_argument(
        "--top",
        type=int,
        default=5,
        help="how many worst destinations to list per trial (default 5)",
    )
    report_p.add_argument(
        "--t0",
        type=float,
        default=None,
        help=(
            "observation-window start override (default: each trial's "
            "recorded failure time)"
        ),
    )
    report_p.add_argument(
        "--out", metavar="PATH", help="also write the JSON report to PATH"
    )
    report_p.set_defaults(func=cmd_dataplane_report)

    topo_p = sub.add_parser(
        "topo", help="generate (and optionally save) a topology"
    )
    add_topology_args(topo_p)
    topo_p.add_argument("--seed", type=int, default=0)
    topo_p.add_argument(
        "--save", metavar="PATH", help="write the topology as JSON"
    )
    topo_p.set_defaults(func=cmd_topo)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = make_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
