"""Failure scenario construction.

A :class:`FailureScenario` is a pure description — the set of routers to
kill plus metadata — derived from a topology.  Injection happens in
:meth:`repro.bgp.network.BGPNetwork.fail_nodes`; keeping scenarios as data
lets one scenario be replayed under many protocol configurations, which is
how every figure in the paper is produced.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Tuple

from repro.topology.graph import GRID_SIZE, Topology


@dataclass(frozen=True)
class FailureScenario:
    """A set of routers that fail simultaneously."""

    nodes: FrozenSet[int]
    kind: str
    description: str = ""
    center: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("a failure scenario must fail at least one node")

    @property
    def size(self) -> int:
        return len(self.nodes)

    def fraction_of(self, topology: Topology) -> float:
        if topology.num_routers == 0:
            raise ValueError(
                "cannot compute a failure fraction of an empty topology"
            )
        return self.size / topology.num_routers


def geographic_failure(
    topology: Topology,
    fraction: float,
    center: Optional[Tuple[float, float]] = None,
) -> FailureScenario:
    """Fail the ``fraction`` of routers closest to ``center``.

    This realizes the paper's contiguous-area failures: conceptually a disc
    around the center grows until it swallows the requested share of the
    network; every router inside fails.  The default center is the middle
    of the grid, the paper's choice "to avoid edge effects".  Distance ties
    break by node id, so scenarios are deterministic.
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if topology.num_routers == 0:
        raise ValueError(
            "cannot derive a geographic failure from an empty topology"
        )
    if center is None:
        center = (GRID_SIZE / 2.0, GRID_SIZE / 2.0)
    count = max(1, round(topology.num_routers * fraction))
    ordered = topology.nodes_by_distance(*center)
    victims = frozenset(ordered[:count])
    return FailureScenario(
        nodes=victims,
        kind="geographic",
        description=(
            f"{count} routers ({fraction:.1%}) around "
            f"({center[0]:.0f},{center[1]:.0f})"
        ),
        center=center,
    )


def random_failure(
    topology: Topology,
    fraction: float,
    rng: random.Random,
) -> FailureScenario:
    """Fail a uniformly random ``fraction`` of routers (scattered failure)."""
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if topology.num_routers == 0:
        raise ValueError(
            "cannot derive a random failure from an empty topology"
        )
    count = max(1, round(topology.num_routers * fraction))
    if count > topology.num_routers:
        raise ValueError(
            f"cannot fail {count} routers: topology only has "
            f"{topology.num_routers}"
        )
    victims = frozenset(rng.sample(topology.node_ids(), count))
    return FailureScenario(
        nodes=victims,
        kind="random",
        description=f"{count} routers ({fraction:.1%}) scattered",
    )


def single_node_failure(topology: Topology, node_id: int) -> FailureScenario:
    """The classic isolated-withdrawal experiment (Labovitz et al.)."""
    if node_id not in topology.routers:
        raise ValueError(f"unknown node {node_id}")
    return FailureScenario(
        nodes=frozenset({node_id}),
        kind="single",
        description=f"single router {node_id}",
    )


def link_cut_failure(
    topology: Topology,
    fraction: float,
    center: Optional[Tuple[float, float]] = None,
) -> List[Tuple[int, int]]:
    """Links whose *both* endpoints lie in the contiguous failure area.

    The paper argues link-only failures are unrealistic at large scale and
    does not evaluate them; this helper exists for the ablation bench that
    demonstrates the difference.
    """
    scenario = geographic_failure(topology, fraction, center)
    return [
        (link.a, link.b)
        for link in topology.links
        if link.a in scenario.nodes and link.b in scenario.nodes
    ]
