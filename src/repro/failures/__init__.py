"""Failure models.

The paper's large-scale failures are geographically concentrated: routers
are placed on a 1000x1000 grid and "failures in contiguous areas of the grid
(usually the center of the grid to avoid edge effects)" take down *all*
routers and links in the area (Sec 3.1/3.2).  :func:`geographic_failure`
implements exactly that; scattered and single-node scenarios are provided
for comparison experiments.
"""

from repro.failures.scenarios import (
    FailureScenario,
    geographic_failure,
    link_cut_failure,
    random_failure,
    single_node_failure,
)

__all__ = [
    "FailureScenario",
    "geographic_failure",
    "link_cut_failure",
    "random_failure",
    "single_node_failure",
]
