"""The campaign daemon: HTTP API + executor thread + graceful drain.

:class:`CampaignService` wires the pieces into one long-running process:

* one :class:`StoreBackend` handle, shared (it is internally locked)
  between the HTTP handler threads and the executor thread;
* the process-wide warm :class:`~repro.core.parallel.WorkerPool`,
  prewarmed *before* any server thread starts — under the ``fork``
  start method children must not be forked from a multi-threaded
  parent — so the first cold trial pays no spin-up;
* a :class:`~repro.service.executor.QueueExecutor` on a daemon thread,
  feeding a :class:`~repro.obs.live.LiveMonitor` whose busy-seconds ETA
  backs the ``/status`` and ``/queue`` endpoints;
* an :class:`http.server.ThreadingHTTPServer` running
  :mod:`repro.service.api`.

Shutdown (SIGTERM/SIGINT, or :meth:`request_shutdown`) is a *drain*:
new submissions start returning 503, the executor finishes its
in-flight batch and hands leased-but-unexecuted tasks back to the
queue, the worker pool is closed within a bounded join, and the HTTP
server stops last — so a supervisor's TERM never loses a banked result
or strands a lease.  Every queue mutation was already durable, so even
SIGKILL only costs in-flight trials (their leases expire and another
executor re-runs them).
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from dataclasses import dataclass
from http.server import ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.parallel import get_worker_pool, shutdown_worker_pool
from repro.obs.live import LiveMonitor
from repro.obs.session import ObsSession

from repro.service.api import make_handler
from repro.service.backend import StoreBackend, open_backend
from repro.service.executor import ExecutorConfig, QueueExecutor
from repro.service.submission import SubmissionReceipt


@dataclass
class ServiceConfig:
    """Everything ``repro-bgp serve`` can set."""

    store: str
    host: str = "127.0.0.1"
    #: 0 = let the OS pick (the bound port lands in the ready file).
    port: int = 8351
    jobs: int = 1
    batch_size: int = 16
    lease_seconds: float = 120.0
    poll_interval: float = 0.25
    max_attempts: int = 3
    backoff_seconds: float = 2.0
    #: Shutdown budget for the executor join + pool close.
    drain_timeout: float = 15.0
    #: Written (JSON: host/port/pid/store) once the server is accepting —
    #: how scripts and CI learn the bound port without racing the boot.
    ready_file: Optional[str] = None
    #: LiveMonitor heartbeat JSONL path (optional).
    heartbeat: Optional[str] = None
    #: Silence the status line (heartbeat/API telemetry still work).
    quiet: bool = False


class CampaignService:
    """One daemon instance: build with a config, ``run()`` until TERM.

    Tests drive the pieces directly (:meth:`start`, HTTP via a client,
    :meth:`shutdown`); the CLI calls :meth:`run`, which adds signal
    handlers around the same lifecycle.
    """

    def __init__(
        self,
        config: ServiceConfig,
        backend: Optional[StoreBackend] = None,
    ) -> None:
        self.config = config
        self.backend = backend if backend is not None else open_backend(
            config.store
        )
        self.stop_event = threading.Event()
        self.started_at = time.time()
        self.submissions = 0
        self.obs = ObsSession()
        self.monitor = LiveMonitor(
            jobs=max(1, config.jobs),
            session=self.obs,
            stream=None if config.quiet else sys.stderr,
            heartbeat=config.heartbeat,
            label="service",
        )
        self.executor = QueueExecutor(
            self.backend,
            ExecutorConfig(
                jobs=config.jobs,
                batch_size=config.batch_size,
                lease_seconds=config.lease_seconds,
                poll_interval=config.poll_interval,
                max_attempts=config.max_attempts,
                backoff_seconds=config.backoff_seconds,
            ),
            obs=self.obs,
            monitor=self.monitor,
        )
        self._server: Optional[ThreadingHTTPServer] = None
        self._server_thread: Optional[threading.Thread] = None
        self._executor_thread: Optional[threading.Thread] = None
        self._shutdown_done = False
        self._mutex = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def stopping(self) -> bool:
        return self.stop_event.is_set()

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("service not started")
        return self._server.server_address[1]

    def start(self) -> None:
        """Boot: prewarm pool, start executor thread, bind HTTP server."""
        # Fork the pool workers while this process is still effectively
        # single-threaded; everything after this line may thread freely.
        if self.config.jobs > 1:
            get_worker_pool().prewarm(self.config.jobs)
        self._server = ThreadingHTTPServer(
            (self.config.host, self.config.port), make_handler(self)
        )
        self._server.daemon_threads = True
        self._executor_thread = threading.Thread(
            target=self.executor.drain,
            kwargs={"stop": self.stop_event},
            name="repro-service-executor",
            daemon=True,
        )
        self._executor_thread.start()
        self._server_thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-service-http",
            daemon=True,
        )
        self._server_thread.start()
        self._write_ready_file()

    def _write_ready_file(self) -> None:
        if not self.config.ready_file:
            return
        import os

        path = Path(self.config.ready_file)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "host": self.config.host,
                    "port": self.port,
                    "pid": os.getpid(),
                    "store": self.config.store,
                },
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    def request_shutdown(self) -> None:
        """Flip to draining (idempotent, callable from signal context)."""
        self.stop_event.set()

    def shutdown(self) -> None:
        """Drain and stop everything; safe to call more than once."""
        with self._mutex:
            if self._shutdown_done:
                return
            self._shutdown_done = True
        self.stop_event.set()
        if self._executor_thread is not None:
            # The executor finishes (at most) its in-flight batch, then
            # its serial path / next poll sees the stop flag.
            self._executor_thread.join(self.config.drain_timeout)
        # Anything still leased by us but unexecuted goes straight back
        # to pending for the next executor (ours released its own in
        # the serial path; the pool path completes whole batches).
        try:
            self.backend.release_tasks(self.executor.config.owner)
        except Exception:  # noqa: BLE001 - shutdown must not throw
            pass
        shutdown_worker_pool(timeout=self.config.drain_timeout)
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        if self._server_thread is not None:
            self._server_thread.join(2.0)
        self.monitor.finish()
        try:
            self.backend.close()
        except Exception:  # noqa: BLE001 - shutdown must not throw
            pass

    def run(self) -> int:
        """CLI entry: start, serve until SIGTERM/SIGINT, drain, exit 0."""

        def handle(signum: int, _frame: Any) -> None:
            self.log(f"signal {signal.Signals(signum).name}: draining")
            self.request_shutdown()

        previous = {
            sig: signal.signal(sig, handle)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            self.start()
            self.log(
                f"serving on http://{self.config.host}:{self.port} "
                f"(store {self.config.store}, jobs {self.config.jobs})"
            )
            while not self.stop_event.wait(0.2):
                pass
        finally:
            self.shutdown()
            for sig, handler in previous.items():
                signal.signal(sig, handler)
        self.log("drained cleanly")
        return 0

    # ------------------------------------------------------------------
    # Telemetry for the API layer
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        from repro.core.parallel import pool_stats

        return {
            "status": "draining" if self.stopping else "ok",
            "uptime_seconds": round(time.time() - self.started_at, 1),
            "submissions": self.submissions,
            "store": self.backend.stats(),
            "executor": self.executor.telemetry(),
            "session": self.obs.counters_snapshot(),
            "pool": pool_stats(),
            "live": self.monitor.snapshot(),
        }

    def queue_status(self) -> Dict[str, Any]:
        status = {
            "queue": self.backend.queue_counts(),
            "executor": self.executor.telemetry(),
        }
        self.annotate_eta(status)
        return status

    def annotate_eta(self, payload: Dict[str, Any]) -> None:
        """Attach the LiveMonitor's busy-seconds ETA to a response."""
        eta = self.monitor.eta_seconds()
        payload["eta_seconds"] = (
            round(eta, 1) if eta != float("inf") else None
        )

    def note_submission(self, receipt: SubmissionReceipt) -> None:
        self.submissions += 1
        if self.obs is not None:
            # Cache-hit accounting mirrors run_campaign: one hit per
            # trial served from the store at submission time.
            for _ in range(receipt.cached):
                self.obs.note_cache(True)
        self.log(receipt.summary())

    # ------------------------------------------------------------------
    def log(self, message: str) -> None:
        if not self.config.quiet:
            print(f"[service] {message}", file=sys.stderr, flush=True)

    def log_request_line(self, line: str) -> None:
        if not self.config.quiet:
            print(f"[service] http {line}", file=sys.stderr, flush=True)
