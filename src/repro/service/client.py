"""A thin stdlib HTTP client mirroring the service API 1:1.

>>> client = ServiceClient("http://127.0.0.1:8351")
>>> receipt = client.submit(campaign_doc)
>>> status = client.wait(receipt["ticket"])
>>> series = client.result(receipt["ticket"])["series"]

No third-party dependencies: ``urllib.request`` underneath, JSON in
and out, API errors raised as :class:`ServiceError` carrying the HTTP
status and the server's ``error`` message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional


class ServiceError(RuntimeError):
    """The service answered with an error (or could not be reached)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(
            f"service error {status}: {message}" if status else message
        )
        self.status = status
        self.message = message


class ServiceClient:
    """Typed access to one campaign-service daemon."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServiceError(exc.code, message) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach service: {exc.reason}")

    # -- endpoints -----------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def queue_status(self) -> Dict[str, Any]:
        return self._request("GET", "/queue")

    def submit(self, submission: Dict[str, Any]) -> Dict[str, Any]:
        """Submit a campaign grid or single spec; returns the receipt."""
        return self._request("POST", "/submit", body=submission)

    def status(self, ticket: str) -> Dict[str, Any]:
        return self._request("GET", f"/status/{ticket}")

    def result(self, ticket: str) -> Dict[str, Any]:
        """Folded series of a completed ticket (409 -> ServiceError)."""
        return self._request("GET", f"/result/{ticket}")

    def trial(self, key: str) -> Dict[str, Any]:
        """One banked trial + provenance by content hash."""
        return self._request("GET", f"/trial/{key}")

    # -- conveniences --------------------------------------------------
    def wait(
        self,
        ticket: str,
        timeout: float = 600.0,
        poll_interval: float = 0.25,
    ) -> Dict[str, Any]:
        """Poll ``/status`` until the ticket is done (or failed).

        Returns the final status dict; raises :class:`ServiceError` on
        terminal failure or timeout, so callers can treat a clean return
        as "results are ready to fetch".
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(ticket)
            if status["state"] == "done":
                return status
            if status["state"] == "failed":
                raise ServiceError(
                    0,
                    f"ticket {ticket} failed: "
                    f"{status['failed']}/{status['total']} trials "
                    f"terminally failed "
                    f"({json.dumps(status['failures'][:3])})",
                )
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0,
                    f"timed out after {timeout:.0f}s waiting on ticket "
                    f"{ticket} ({status['done']}/{status['total']} done)",
                )
            time.sleep(poll_interval)
