"""The storage contract the campaign service is written against.

The service layers (submission planner, executor, HTTP API) never touch
SQL — every persistent effect goes through :class:`StoreBackend`, a
:class:`typing.Protocol` describing exactly the store surface the
service consumes: trial cache reads/writes, the durable work queue, and
tickets.  :class:`repro.store.ResultStore` satisfies it structurally
(no inheritance needed) and is the registered ``sqlite`` backend.

Alternative backends — an in-memory store for tests, a client/server
store, a different database — plug in via
:func:`register_store_backend`; :func:`open_backend` resolves a
``scheme://path`` URL (bare paths mean ``sqlite``) so daemon
configuration stays a single string.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Union,
    runtime_checkable,
)

from repro.store.queue import QueueTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.experiment import TrialResult


@runtime_checkable
class StoreBackend(Protocol):
    """Everything the campaign service needs from persistent storage.

    Implementations must be safe to share between threads of one
    process and between cooperating processes on the same backing
    store — the SQLite implementation documents how it achieves that in
    :mod:`repro.store.result_store`.
    """

    # -- trial cache ---------------------------------------------------
    def has(self, key: str) -> bool: ...

    def get(self, key: str) -> Optional["TrialResult"]: ...

    def put(
        self,
        key: str,
        trial: "TrialResult",
        fingerprint: Optional[Dict[str, Any]] = None,
    ) -> None: ...

    def provenance(self, key: str) -> Optional[Dict[str, Any]]: ...

    # -- work queue ----------------------------------------------------
    def enqueue(
        self, key: str, payload: Dict[str, Any], ticket: Optional[str] = None
    ) -> Tuple[int, bool]: ...

    def lease_tasks(
        self,
        owner: str,
        limit: int,
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> List[QueueTask]: ...

    def heartbeat_tasks(
        self,
        owner: str,
        task_ids: Iterable[int],
        lease_seconds: float,
        now: Optional[float] = None,
    ) -> int: ...

    def complete_task(self, task_id: int) -> None: ...

    def fail_task(
        self, task_id: int, error: str, retry_at: Optional[float] = None
    ) -> str: ...

    def release_tasks(
        self, owner: str, task_ids: Optional[Iterable[int]] = None
    ) -> int: ...

    def queue_counts(self) -> Dict[str, int]: ...

    def queue_entries(
        self, state: Optional[str] = None, limit: Optional[int] = None
    ) -> List[QueueTask]: ...

    def queue_states_for(
        self, keys: Sequence[str]
    ) -> Dict[str, Dict[str, Any]]: ...

    # -- tickets + manifests -------------------------------------------
    def record_ticket(
        self,
        ticket: str,
        name: str,
        keys: Sequence[str],
        campaign: Optional[Dict[str, Any]] = None,
    ) -> None: ...

    def ticket_info(self, ticket: str) -> Optional[Dict[str, Any]]: ...

    def record_campaign(
        self, name: str, manifest: Dict[str, Any]
    ) -> int: ...

    # -- operations ----------------------------------------------------
    def stats(self) -> Dict[str, Any]: ...

    def close(self) -> None: ...


BackendFactory = Callable[[str], StoreBackend]

_BACKENDS: Dict[str, BackendFactory] = {}


def register_store_backend(scheme: str, factory: BackendFactory) -> None:
    """Register ``factory`` for ``scheme://...`` backend URLs.

    The factory receives the URL remainder (everything after
    ``scheme://``) and returns an open :class:`StoreBackend`.
    Re-registering a scheme replaces it (tests swap in fakes).
    """
    _BACKENDS[scheme.lower()] = factory


def open_backend(url: Union[str, Path]) -> StoreBackend:
    """Open the backend a URL names; bare paths mean ``sqlite``.

    ``results/store.db`` and ``sqlite://results/store.db`` open the same
    SQLite store.  Unknown schemes raise ``ValueError`` listing what is
    registered.
    """
    text = str(url)
    if "://" in text:
        scheme, _, rest = text.partition("://")
        scheme = scheme.lower()
    else:
        scheme, rest = "sqlite", text
    factory = _BACKENDS.get(scheme)
    if factory is None:
        known = ", ".join(sorted(_BACKENDS)) or "none"
        raise ValueError(
            f"unknown store backend scheme {scheme!r} "
            f"(registered: {known})"
        )
    return factory(rest)


def _open_sqlite(path: str) -> StoreBackend:
    from repro.store.result_store import ResultStore

    return ResultStore(path)


register_store_backend("sqlite", _open_sqlite)
