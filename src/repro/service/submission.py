"""Turning submitted work into cache hits and queued cold trials.

A submission is either a full campaign grid (the same JSON document
``repro-bgp campaign run`` takes) or a single spec
(``{"topology": block, "scheme": {...}, "seed": N}``), which is
normalized into a one-cell campaign so every downstream path — content
keys, queueing, folding — is the campaign path.

Planning is where the serving economics happen: the grid is expanded to
``(task, content key)`` pairs via the same
:func:`repro.store.campaign.campaign_keys` expansion the batch runner
uses, each key is looked up in the backend, and only the misses are
enqueued.  A warm resubmission therefore touches zero simulation; a
cold one returns a ticket whose keys the executor fills in.

Queue payloads are *declarative*: the topology parameter block plus the
fully-explicit spec dict from :func:`repro.specs.spec_to_dict` (resolved
adaptive/theory schemes serialize with their levels made explicit), so
any executor process can rebuild the exact trial and arrive at the same
content hash — which it verifies before running.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.specs.serialize import spec_to_dict
from repro.store.campaign import Campaign, campaign_keys

from repro.service.backend import StoreBackend

#: ExperimentSpec's own default; a single-spec submission without an
#: explicit failure_fraction lands on the same spec a direct
#: ``build_spec(scheme)`` would.
_DEFAULT_FAILURE_FRACTION = 0.05


def submission_campaign(data: Dict[str, Any]) -> Campaign:
    """Normalize a submission body into a :class:`Campaign`.

    A body with ``schemes`` is a campaign document and parses exactly as
    ``campaign run`` would.  A body with ``scheme`` (singular) is a
    single spec and wraps into a one-cell grid whose only axis value is
    the scheme's own failure fraction — so its trial keys are identical
    to what a full campaign containing that cell would produce.
    """
    if "schemes" in data:
        return Campaign.from_dict(data)
    if "scheme" not in data:
        raise ValueError(
            "submission must carry either 'schemes' (campaign grid) "
            "or 'scheme' (single spec)"
        )
    scheme = dict(data["scheme"])
    if "topology" not in data:
        raise ValueError("single-spec submission requires 'topology'")
    if "seeds" in data:
        seeds = [int(s) for s in data["seeds"]]
    elif "seed" in data:
        seeds = [int(data["seed"])]
    else:
        raise ValueError(
            "single-spec submission requires 'seed' or 'seeds'"
        )
    x = float(scheme.get("failure_fraction", _DEFAULT_FAILURE_FRACTION))
    return Campaign(
        name=str(data.get("name", "adhoc")),
        topology=dict(data["topology"]),
        schemes={"spec": scheme},
        axis="failure_fraction",
        values=[x],
        seeds=seeds,
    )


@dataclass
class SubmissionReceipt:
    """What planning one submission decided, and the ticket to poll."""

    ticket: str
    name: str
    total: int
    cached: int
    enqueued: int
    deduplicated: int
    keys: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.cached == self.total

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ticket": self.ticket,
            "name": self.name,
            "total": self.total,
            "cached": self.cached,
            "enqueued": self.enqueued,
            "deduplicated": self.deduplicated,
            "complete": self.complete,
            "keys": list(self.keys),
        }

    def summary(self) -> str:
        pct = round(100.0 * self.cached / self.total) if self.total else 100
        return (
            f"ticket {self.ticket}: campaign {self.name} — "
            f"{self.total} trials, {self.cached} cached ({pct}%), "
            f"{self.enqueued} enqueued, {self.deduplicated} deduplicated"
        )


def plan_submission(
    campaign: Campaign,
    backend: StoreBackend,
    ticket: Optional[str] = None,
) -> SubmissionReceipt:
    """Split a grid into cache hits and enqueued cold trials.

    Every trial key is checked against the backend; misses are enqueued
    under a fresh ticket (an open task for the same key — e.g. from a
    concurrent identical submission — deduplicates instead of queueing
    twice).  The ticket's ordered key list is persisted so status and
    folding survive daemon restarts.
    """
    ticket = ticket or uuid.uuid4().hex[:12]
    keyed = campaign_keys(campaign)
    keys: List[str] = []
    cached = enqueued = deduplicated = 0
    for task, key, _topology in keyed:
        keys.append(key)
        if backend.has(key):
            cached += 1
            continue
        payload = {
            "topology": dict(campaign.topology),
            "scheme": spec_to_dict(task.spec),
            "seed": task.seed,
        }
        _task_id, created = backend.enqueue(key, payload, ticket=ticket)
        if created:
            enqueued += 1
        else:
            deduplicated += 1
    backend.record_ticket(
        ticket, campaign.name, keys, campaign=campaign.to_dict()
    )
    return SubmissionReceipt(
        ticket=ticket,
        name=campaign.name,
        total=len(keys),
        cached=cached,
        enqueued=enqueued,
        deduplicated=deduplicated,
        keys=keys,
    )


def ticket_status(ticket: str, backend: StoreBackend) -> Dict[str, Any]:
    """Progress of one ticket, derived purely from persistent state.

    ``state`` is ``done`` when every key is banked, ``failed`` when at
    least one missing key's queue task is terminally failed (nothing
    will fill it without a resubmit), else ``running``.  The daemon
    layers live executor telemetry (ETA, rates) on top of this.
    """
    info = backend.ticket_info(ticket)
    if info is None:
        raise KeyError(f"unknown ticket {ticket!r}")
    keys = info["keys"]
    queue_states = backend.queue_states_for(keys)
    done = failed = pending = running = 0
    failures: List[Dict[str, Any]] = []
    for key in keys:
        if backend.has(key):
            done += 1
            continue
        entry = queue_states.get(key)
        state = entry["state"] if entry else "missing"
        if state == "failed":
            failed += 1
            failures.append(
                {
                    "key": key,
                    "attempts": entry["attempts"],
                    "error": entry["error"],
                }
            )
        elif state == "running":
            running += 1
        else:  # pending, or missing = never queued (counts as pending)
            pending += 1
    if done == len(keys):
        state = "done"
    elif failed:
        state = "failed"
    else:
        state = "running" if running else "pending"
    return {
        "ticket": ticket,
        "name": info["name"],
        "created_utc": info["created_utc"],
        "state": state,
        "total": len(keys),
        "done": done,
        "running": running,
        "pending": pending,
        "failed": failed,
        "failures": failures,
    }


def ticket_results(ticket: str, backend: StoreBackend) -> Dict[str, Any]:
    """Fold a completed ticket's campaign into JSON-ready series.

    Uses the campaign document persisted with the ticket, so it works
    across daemon restarts and from any process sharing the store.
    Raises ``KeyError`` for unknown tickets and ``ValueError`` while
    trials are still missing (callers should poll status first).
    """
    from repro.store.campaign import CampaignError, load_campaign_results

    info = backend.ticket_info(ticket)
    if info is None:
        raise KeyError(f"unknown ticket {ticket!r}")
    if not info.get("campaign"):
        raise ValueError(
            f"ticket {ticket} predates campaign-document tickets; "
            f"resubmit to fold results"
        )
    campaign = Campaign.from_dict(info["campaign"])
    try:
        series_list, _points = load_campaign_results(campaign, backend)
    except CampaignError as exc:
        raise ValueError(str(exc)) from exc
    return {
        "ticket": ticket,
        "name": campaign.name,
        "axis": campaign.axis,
        "seeds": list(campaign.seeds),
        "series": [
            {
                "label": series.label,
                "x_name": series.x_name,
                "points": [
                    {
                        "x": point.x,
                        "delay": point.delay,
                        "messages": point.messages,
                        "unreachable": point.unreachable,
                    }
                    for point in series.points
                ],
            }
            for series in series_list
        ],
    }
