"""The drain loop: leased queue tasks -> warm pool -> banked results.

One :class:`QueueExecutor` repeatedly leases a batch of cold trials from
the backend, rebuilds each trial from its declarative payload (topology
parameter block + explicit spec dict + seed), runs the batch on the
process-wide warm :class:`~repro.core.parallel.WorkerPool` — which does
digest-affinity chunk scheduling, so a batch of same-topology trials
lands on workers already holding that topology — and banks every result
the moment it streams back, exactly the parent-side-write discipline
``run_campaign`` uses.  Folding banked trials therefore produces output
bit-identical to :func:`repro.core.experiment.run_trials`.

Any number of executor processes may drain one store: the lease
transaction hands each task to exactly one of them, heartbeats keep
long batches owned, and a crashed executor's leases expire so its tasks
re-dispatch (see :mod:`repro.store.queue`).

Before running, each task's content hash is recomputed from the
rebuilt (topology, spec, seed) and compared to its queue key; a
mismatch — wrong code version, corrupted payload — fails the task
permanently rather than banking a result under a key it doesn't match.
Trial failures retry with exponential backoff up to
``max_attempts``, then park as ``failed`` for operators.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.experiment import Progress
from repro.core.parallel import TrialTask, get_worker_pool
from repro.specs.serialize import build_spec
from repro.specs.topology import topology_factory
from repro.store.hashing import spec_fingerprint, spec_hash
from repro.store.queue import QueueTask

from repro.service.backend import StoreBackend


def default_owner() -> str:
    """A lease-owner id unique per executor process."""
    return (
        f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:6]}"
    )


@dataclass
class ExecutorConfig:
    """Knobs of one drain loop (defaults suit the CI smoke scale)."""

    #: Lease owner id; None -> a fresh :func:`default_owner`.
    owner: Optional[str] = None
    #: Worker-pool fan-out per batch (1 = run trials in-process).
    jobs: int = 1
    #: Max tasks leased per batch — also the graceful-drain bound: a
    #: shutdown waits for at most one batch to finish.
    batch_size: int = 16
    #: How long a lease protects a claimed task.  Must comfortably
    #: exceed one trial's wall time; heartbeats extend it while the
    #: batch runs.
    lease_seconds: float = 120.0
    #: Idle sleep between polls that found an empty queue.
    poll_interval: float = 0.25
    #: Attempts before a task parks as terminally failed.
    max_attempts: int = 3
    #: First retry delay; doubles per subsequent attempt.
    backoff_seconds: float = 2.0


class QueueExecutor:
    """Drains the durable queue through the warm worker pool.

    ``obs`` (an :class:`~repro.obs.session.ObsSession`) rides along to
    workers exactly as in ``run_campaign``; ``monitor`` (a
    :class:`~repro.obs.live.LiveMonitor`) receives one progress tick per
    completed/failed trial, which is what feeds the service's ETA
    endpoint.
    """

    def __init__(
        self,
        backend: StoreBackend,
        config: Optional[ExecutorConfig] = None,
        obs: Optional[Any] = None,
        monitor: Optional[Any] = None,
    ) -> None:
        self.backend = backend
        self.config = config or ExecutorConfig()
        if self.config.owner is None:
            self.config.owner = default_owner()
        self.obs = obs
        self.monitor = monitor
        self.started = time.perf_counter()
        #: Lifetime counters (exposed via :meth:`telemetry`).
        self.executed = 0
        self.failed_attempts = 0
        self.failed_terminal = 0
        self.retried = 0
        self.busy_seconds = 0.0
        self.batches = 0

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def _materialize(
        self,
        task: QueueTask,
        topo_cache: Dict[Tuple[str, int], Any],
    ) -> Tuple[Any, Any, Dict[str, Any]]:
        """Rebuild (topology, spec, fingerprint) from a queue payload.

        Raises ``ValueError`` when the recomputed content hash differs
        from the queued key — the one failure the retry loop must treat
        as permanent.
        """
        payload = task.payload
        block = payload["topology"]
        seed = int(payload["seed"])
        cache_key = (json.dumps(block, sort_keys=True), seed)
        topology = topo_cache.get(cache_key)
        if topology is None:
            topology = topology_factory(block)(seed)
            topo_cache[cache_key] = topology
        spec = build_spec(payload["scheme"], topology=topology)
        key = spec_hash(spec, topology, seed)
        if key != task.key:
            raise ValueError(
                f"payload rebuilds to hash {key[:12]}..., queued as "
                f"{task.key[:12]}... (code/schema drift?)"
            )
        return topology, spec, spec_fingerprint(spec, topology, seed)

    # ------------------------------------------------------------------
    # Drain
    # ------------------------------------------------------------------
    def drain_once(
        self, stop: Optional[threading.Event] = None
    ) -> int:
        """Lease and process one batch; returns how many tasks it took.

        Zero means the queue had nothing runnable.  Results are banked
        (and tasks completed/failed) one by one as they stream back, so
        a crash mid-batch loses only in-flight trials — and even those
        only until the lease expires.
        """
        cfg = self.config
        batch = self.backend.lease_tasks(
            cfg.owner, cfg.batch_size, cfg.lease_seconds
        )
        if not batch:
            return 0
        self.batches += 1
        topo_cache: Dict[Tuple[str, int], Any] = {}
        by_id: Dict[int, Tuple[QueueTask, Any, Any, Dict[str, Any]]] = {}
        trial_tasks: List[TrialTask] = []
        obs_config = (
            self.obs.worker_args() if self.obs is not None else None
        )
        for task in batch:
            try:
                topology, spec, fingerprint = self._materialize(
                    task, topo_cache
                )
            except Exception as exc:  # noqa: BLE001 - permanent failure
                self.backend.fail_task(
                    task.id, f"materialize: {type(exc).__name__}: {exc}"
                )
                self.failed_terminal += 1
                continue
            by_id[task.id] = (task, topology, spec, fingerprint)
            trial_tasks.append(
                TrialTask(
                    index=task.id,
                    topology=topology,
                    spec=spec,
                    seed=int(task.payload["seed"]),
                    obs_config=obs_config,
                )
            )
        if not trial_tasks:
            return len(batch)

        total_hint = self._total_hint(len(trial_tasks))
        outstanding = set(by_id)
        last_beat = time.monotonic()
        beat_every = max(1.0, cfg.lease_seconds / 3.0)

        def beat() -> None:
            nonlocal last_beat
            now = time.monotonic()
            if outstanding and now - last_beat >= beat_every:
                self.backend.heartbeat_tasks(
                    cfg.owner, outstanding, cfg.lease_seconds
                )
                last_beat = now

        if cfg.jobs > 1 and len(trial_tasks) > 1:
            outcomes = get_worker_pool().run_guarded(
                trial_tasks, jobs=cfg.jobs
            )
            for index, trial, payload, error in outcomes:
                self._settle(
                    by_id[index], trial, payload, error, total_hint
                )
                outstanding.discard(index)
                beat()
        else:
            for trial_task in trial_tasks:
                if stop is not None and stop.is_set():
                    # Graceful drain: hand unexecuted tasks straight
                    # back instead of making the next claimant wait out
                    # our lease.
                    released = self.backend.release_tasks(
                        cfg.owner, outstanding
                    )
                    return len(batch) - released
                index, trial, payload, error = _guarded(trial_task)
                self._settle(
                    by_id[index], trial, payload, error, total_hint
                )
                outstanding.discard(index)
                beat()
        return len(batch)

    def drain(
        self,
        stop: Optional[threading.Event] = None,
        idle_timeout: Optional[float] = None,
    ) -> None:
        """Poll/drain until ``stop`` is set (or the queue stays empty
        for ``idle_timeout`` seconds, when one is given)."""
        idle_since: Optional[float] = None
        while stop is None or not stop.is_set():
            took = self.drain_once(stop=stop)
            if took:
                idle_since = None
                continue
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif (
                idle_timeout is not None
                and now - idle_since >= idle_timeout
            ):
                return
            if stop is not None:
                stop.wait(self.config.poll_interval)
            else:
                time.sleep(self.config.poll_interval)

    # ------------------------------------------------------------------
    def _total_hint(self, batch_len: int) -> int:
        """A moving 'total' for progress ticks: work done + work known."""
        counts = self.backend.queue_counts()
        done_so_far = self.executed + self.failed_terminal
        return done_so_far + batch_len + counts.get("pending", 0)

    def _settle(
        self,
        entry: Tuple[QueueTask, Any, Any, Dict[str, Any]],
        trial: Optional[Any],
        payload: Optional[Dict[str, Any]],
        error: Optional[str],
        total_hint: int,
    ) -> None:
        """Bank one streamed outcome and advance the queue row."""
        task, _topology, _spec, fingerprint = entry
        cfg = self.config
        if error is not None:
            attempts_after = task.attempts + 1
            if attempts_after >= cfg.max_attempts:
                self.backend.fail_task(task.id, error)
                self.failed_terminal += 1
            else:
                delay = cfg.backoff_seconds * (2 ** task.attempts)
                self.backend.fail_task(
                    task.id, error, retry_at=time.time() + delay
                )
                self.retried += 1
            self.failed_attempts += 1
        else:
            # Parent-side write, durable the moment the trial lands —
            # then the queue row flips, so a crash between the two
            # re-runs a banked trial (idempotent) rather than losing one.
            self.backend.put(task.key, trial, fingerprint=fingerprint)
            self.backend.complete_task(task.id)
            if payload is not None and self.obs is not None:
                try:
                    self.obs.absorb(payload)
                except Exception:  # noqa: BLE001 - telemetry only
                    pass
            if self.obs is not None:
                self.obs.note_cache(False)
            self.executed += 1
            self.busy_seconds += (
                trial.warmup_wall + trial.convergence_wall
            )
        if self.monitor is not None:
            self.monitor(
                Progress(
                    done=self.executed,
                    total=max(total_hint, self.executed),
                    elapsed=time.perf_counter() - self.started,
                    label="service",
                    busy_seconds=self.busy_seconds,
                    failed=self.failed_terminal,
                )
            )

    def telemetry(self) -> Dict[str, Any]:
        """Lifetime drain counters for ``/health`` and ``queue status``."""
        return {
            "owner": self.config.owner,
            "jobs": self.config.jobs,
            "executed": self.executed,
            "failed_attempts": self.failed_attempts,
            "failed_terminal": self.failed_terminal,
            "retried": self.retried,
            "busy_seconds": round(self.busy_seconds, 3),
            "batches": self.batches,
        }


def _guarded(
    task: TrialTask,
) -> Tuple[int, Optional[Any], Optional[Dict[str, Any]], Optional[str]]:
    """Serial one-task execution with the pool's guarded contract."""
    from repro.core.parallel import execute_trial

    try:
        index, trial, payload = execute_trial(task)
        return index, trial, payload, None
    except Exception as exc:  # noqa: BLE001 - reported to the retry loop
        return task.index, None, None, f"{type(exc).__name__}: {exc}"
